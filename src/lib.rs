//! # entity-tracing
//!
//! A from-scratch Rust reproduction of *"A Scalable Approach for the
//! Secure and Authorized Tracking of the Availability of Entities in
//! Distributed Systems"* (Pallickara, Ekanayake & Fox, IPPS 2007),
//! including every substrate the scheme depends on: a
//! NaradaBrokering-style publish/subscribe broker network, Topic
//! Discovery Nodes, transport abstraction (simulated / TCP / UDP) and
//! a complete cryptography stack (RSA, SHA-1/SHA-256, HMAC, AES,
//! certificates).
//!
//! ## Quick start
//!
//! ```no_run
//! use entity_tracing::prelude::*;
//! use std::time::Duration;
//!
//! // A 2-broker deployment over simulated ~1.5 ms links.
//! let deployment = Deployment::new(
//!     Topology::Chain(2),
//!     LinkConfig::default(),
//!     system_clock(),
//!     TracingConfig::default(),
//! )
//! .unwrap();
//!
//! // An entity asks to be traced…
//! let entity = deployment
//!     .traced_entity(
//!         0,
//!         "web-service",
//!         DiscoveryRestrictions::Open,
//!         SigningMode::RsaSign,
//!         false,
//!     )
//!     .unwrap();
//!
//! // …and a tracker on the other broker watches it.
//! let tracker = deployment
//!     .tracker(
//!         1,
//!         "ops-console",
//!         "web-service",
//!         vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
//!     )
//!     .unwrap();
//!
//! std::thread::sleep(Duration::from_millis(500));
//! println!("status: {:?}", tracker.view().status("web-service"));
//! # let _ = entity;
//! ```
//!
//! ## Observability
//!
//! Every layer is instrumented with the zero-dependency [`metrics`]
//! crate. A running [`prelude::Deployment`] merges all of it into one
//! snapshot (see `docs/OBSERVABILITY.md` for the metric catalogue):
//!
//! ```
//! use entity_tracing::metrics::Registry;
//!
//! let registry = Registry::new();
//! registry.counter("demo.events").add(3);
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("demo.events"), Some(3));
//! println!("{}", snapshot.to_table());
//! ```
//!
//! Beyond aggregate metrics, the [`telemetry`] crate traces individual
//! messages causally: an optional wire-level
//! [`TraceContext`](telemetry::TraceContext) propagates hop to hop,
//! every component records per-stage spans into a lock-free flight
//! recorder, and `Deployment::telemetry_spans()` collects them for the
//! JSON-lines / Chrome `trace_event` exporters (see the "Causal
//! tracing" section of `docs/OBSERVABILITY.md`).
//!
//! ## Fault tolerance
//!
//! Setting [`prelude::TracingConfig`]'s `link_supervision` (or
//! `BrokerConfig::link_supervision` directly) runs every broker link
//! under a [`prelude::LinkSupervisor`]: send/receive failures are
//! detected, outbound frames are buffered through the outage (bounded,
//! shedding oldest first), and the link reconnects with capped,
//! jittered exponential backoff before replaying the buffer in order.
//! The simulated network can inject the faults to test against —
//! `drop_link`, `flaky`, `partition`, `restore` (see the "Fault
//! tolerance" section of `docs/ARCHITECTURE.md`).
//!
//! See the crate-level documentation of the member crates for each
//! subsystem: [`nb_crypto`], [`nb_wire`], [`nb_transport`],
//! [`nb_broker`], [`nb_tdn`], [`nb_tracing`], [`nb_baseline`],
//! [`nb_metrics`], [`nb_telemetry`], [`nb_obs`], [`nb_store`].

pub use nb_baseline as baseline;
pub use nb_broker as broker;
pub use nb_crypto as crypto;
pub use nb_metrics as metrics;
pub use nb_obs as obs;
pub use nb_store as store;
pub use nb_tdn as tdn;
pub use nb_telemetry as telemetry;
pub use nb_tracing as tracing;
pub use nb_transport as transport;
pub use nb_wire as wire;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use nb_broker::{Broker, BrokerClient, BrokerConfig};
    pub use nb_crypto::cert::{CertificateAuthority, Credential, Validity};
    pub use nb_crypto::Uuid;
    pub use nb_metrics::{Registry, Snapshot};
    pub use nb_obs::{ClusterAggregator, PublisherConfig, TelemetryPublisher};
    pub use nb_store::{Durable, DurableState, FsyncPolicy, Recovery, StoreConfig, TempDir};
    pub use nb_tdn::TdnCluster;
    pub use nb_telemetry::{TelemetryConfig, TraceContext};
    pub use nb_tracing::config::{SigningMode, TracingConfig};
    pub use nb_tracing::harness::{ClusterObs, Deployment, Topology};
    pub use nb_tracing::view::{AvailabilityView, EntityStatus};
    pub use nb_tracing::{TracedEntity, Tracker, TracingEngine};
    pub use nb_transport::clock::{system_clock, Clock, MockClock, SystemClock};
    pub use nb_transport::sim::{LinkConfig, LinkId, SimNetwork};
    pub use nb_transport::supervisor::{
        BackoffPolicy, LinkState, LinkStats, LinkSupervisor, SupervisorConfig,
    };
    pub use nb_wire::payload::DiscoveryRestrictions;
    pub use nb_wire::trace::{EntityState, LoadInformation, TraceCategory};
    pub use nb_wire::{Message, Payload, Topic};
}
