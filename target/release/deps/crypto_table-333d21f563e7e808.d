/root/repo/target/release/deps/crypto_table-333d21f563e7e808.d: crates/bench/src/bin/crypto_table.rs

/root/repo/target/release/deps/crypto_table-333d21f563e7e808: crates/bench/src/bin/crypto_table.rs

crates/bench/src/bin/crypto_table.rs:
