/root/repo/target/release/deps/keydist_table-2799475cc35f4f0c.d: crates/bench/src/bin/keydist_table.rs

/root/repo/target/release/deps/keydist_table-2799475cc35f4f0c: crates/bench/src/bin/keydist_table.rs

crates/bench/src/bin/keydist_table.rs:
