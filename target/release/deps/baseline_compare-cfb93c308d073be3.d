/root/repo/target/release/deps/baseline_compare-cfb93c308d073be3.d: crates/bench/src/bin/baseline_compare.rs

/root/repo/target/release/deps/baseline_compare-cfb93c308d073be3: crates/bench/src/bin/baseline_compare.rs

crates/bench/src/bin/baseline_compare.rs:
