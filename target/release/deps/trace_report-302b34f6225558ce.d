/root/repo/target/release/deps/trace_report-302b34f6225558ce.d: crates/bench/src/bin/trace_report.rs

/root/repo/target/release/deps/trace_report-302b34f6225558ce: crates/bench/src/bin/trace_report.rs

crates/bench/src/bin/trace_report.rs:
