/root/repo/target/release/deps/nb_bench-7d59d4e6b5b6bfe5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnb_bench-7d59d4e6b5b6bfe5.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnb_bench-7d59d4e6b5b6bfe5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
