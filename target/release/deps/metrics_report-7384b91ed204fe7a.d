/root/repo/target/release/deps/metrics_report-7384b91ed204fe7a.d: crates/bench/src/bin/metrics_report.rs

/root/repo/target/release/deps/metrics_report-7384b91ed204fe7a: crates/bench/src/bin/metrics_report.rs

crates/bench/src/bin/metrics_report.rs:
