/root/repo/target/release/deps/entities_table-9cc55a53b2165e9f.d: crates/bench/src/bin/entities_table.rs

/root/repo/target/release/deps/entities_table-9cc55a53b2165e9f: crates/bench/src/bin/entities_table.rs

crates/bench/src/bin/entities_table.rs:
