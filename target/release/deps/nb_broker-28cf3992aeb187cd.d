/root/repo/target/release/deps/nb_broker-28cf3992aeb187cd.d: crates/broker/src/lib.rs crates/broker/src/client.rs crates/broker/src/discovery.rs crates/broker/src/error.rs crates/broker/src/network.rs crates/broker/src/node.rs crates/broker/src/subscription.rs

/root/repo/target/release/deps/libnb_broker-28cf3992aeb187cd.rlib: crates/broker/src/lib.rs crates/broker/src/client.rs crates/broker/src/discovery.rs crates/broker/src/error.rs crates/broker/src/network.rs crates/broker/src/node.rs crates/broker/src/subscription.rs

/root/repo/target/release/deps/libnb_broker-28cf3992aeb187cd.rmeta: crates/broker/src/lib.rs crates/broker/src/client.rs crates/broker/src/discovery.rs crates/broker/src/error.rs crates/broker/src/network.rs crates/broker/src/node.rs crates/broker/src/subscription.rs

crates/broker/src/lib.rs:
crates/broker/src/client.rs:
crates/broker/src/discovery.rs:
crates/broker/src/error.rs:
crates/broker/src/network.rs:
crates/broker/src/node.rs:
crates/broker/src/subscription.rs:
