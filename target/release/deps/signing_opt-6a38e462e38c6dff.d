/root/repo/target/release/deps/signing_opt-6a38e462e38c6dff.d: crates/bench/src/bin/signing_opt.rs

/root/repo/target/release/deps/signing_opt-6a38e462e38c6dff: crates/bench/src/bin/signing_opt.rs

crates/bench/src/bin/signing_opt.rs:
