/root/repo/target/release/deps/nb_baseline-442e30486fa3f952.d: crates/baseline/src/lib.rs crates/baseline/src/gossip.rs crates/baseline/src/naive.rs

/root/repo/target/release/deps/libnb_baseline-442e30486fa3f952.rlib: crates/baseline/src/lib.rs crates/baseline/src/gossip.rs crates/baseline/src/naive.rs

/root/repo/target/release/deps/libnb_baseline-442e30486fa3f952.rmeta: crates/baseline/src/lib.rs crates/baseline/src/gossip.rs crates/baseline/src/naive.rs

crates/baseline/src/lib.rs:
crates/baseline/src/gossip.rs:
crates/baseline/src/naive.rs:
