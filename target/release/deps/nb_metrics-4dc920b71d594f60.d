/root/repo/target/release/deps/nb_metrics-4dc920b71d594f60.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs crates/metrics/src/timer.rs

/root/repo/target/release/deps/libnb_metrics-4dc920b71d594f60.rlib: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs crates/metrics/src/timer.rs

/root/repo/target/release/deps/libnb_metrics-4dc920b71d594f60.rmeta: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs crates/metrics/src/timer.rs

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/snapshot.rs:
crates/metrics/src/timer.rs:
