/root/repo/target/release/deps/nb_tdn-6bde3470d8397f6b.d: crates/tdn/src/lib.rs crates/tdn/src/cluster.rs crates/tdn/src/node.rs crates/tdn/src/query.rs

/root/repo/target/release/deps/libnb_tdn-6bde3470d8397f6b.rlib: crates/tdn/src/lib.rs crates/tdn/src/cluster.rs crates/tdn/src/node.rs crates/tdn/src/query.rs

/root/repo/target/release/deps/libnb_tdn-6bde3470d8397f6b.rmeta: crates/tdn/src/lib.rs crates/tdn/src/cluster.rs crates/tdn/src/node.rs crates/tdn/src/query.rs

crates/tdn/src/lib.rs:
crates/tdn/src/cluster.rs:
crates/tdn/src/node.rs:
crates/tdn/src/query.rs:
