/root/repo/target/release/deps/trackers_sweep-59a23a76c0c19ca5.d: crates/bench/src/bin/trackers_sweep.rs

/root/repo/target/release/deps/trackers_sweep-59a23a76c0c19ca5: crates/bench/src/bin/trackers_sweep.rs

crates/bench/src/bin/trackers_sweep.rs:
