/root/repo/target/release/deps/criterion-710c519c2f01d8ad.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-710c519c2f01d8ad.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-710c519c2f01d8ad.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
