/root/repo/target/release/deps/hops_table-f4e31c38ccb984c4.d: crates/bench/src/bin/hops_table.rs

/root/repo/target/release/deps/hops_table-f4e31c38ccb984c4: crates/bench/src/bin/hops_table.rs

crates/bench/src/bin/hops_table.rs:
