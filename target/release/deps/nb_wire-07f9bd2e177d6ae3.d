/root/repo/target/release/deps/nb_wire-07f9bd2e177d6ae3.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/constrained.rs crates/wire/src/error.rs crates/wire/src/instrument.rs crates/wire/src/message.rs crates/wire/src/payload.rs crates/wire/src/token.rs crates/wire/src/topic.rs crates/wire/src/trace.rs

/root/repo/target/release/deps/libnb_wire-07f9bd2e177d6ae3.rlib: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/constrained.rs crates/wire/src/error.rs crates/wire/src/instrument.rs crates/wire/src/message.rs crates/wire/src/payload.rs crates/wire/src/token.rs crates/wire/src/topic.rs crates/wire/src/trace.rs

/root/repo/target/release/deps/libnb_wire-07f9bd2e177d6ae3.rmeta: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/constrained.rs crates/wire/src/error.rs crates/wire/src/instrument.rs crates/wire/src/message.rs crates/wire/src/payload.rs crates/wire/src/token.rs crates/wire/src/topic.rs crates/wire/src/trace.rs

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/constrained.rs:
crates/wire/src/error.rs:
crates/wire/src/instrument.rs:
crates/wire/src/message.rs:
crates/wire/src/payload.rs:
crates/wire/src/token.rs:
crates/wire/src/topic.rs:
crates/wire/src/trace.rs:
