/root/repo/target/release/deps/chaos_report-a79ba11de60cc603.d: crates/bench/src/bin/chaos_report.rs

/root/repo/target/release/deps/chaos_report-a79ba11de60cc603: crates/bench/src/bin/chaos_report.rs

crates/bench/src/bin/chaos_report.rs:
