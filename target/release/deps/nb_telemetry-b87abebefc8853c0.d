/root/repo/target/release/deps/nb_telemetry-b87abebefc8853c0.d: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs

/root/repo/target/release/deps/libnb_telemetry-b87abebefc8853c0.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs

/root/repo/target/release/deps/libnb_telemetry-b87abebefc8853c0.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/context.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/sampler.rs:
