/root/repo/target/release/deps/rand-1fb57ee0cd8b0c31.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-1fb57ee0cd8b0c31.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-1fb57ee0cd8b0c31.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
