/root/repo/target/release/deps/nb_transport-b2a276f4f294e6eb.d: crates/transport/src/lib.rs crates/transport/src/clock.rs crates/transport/src/endpoint.rs crates/transport/src/error.rs crates/transport/src/instrument.rs crates/transport/src/metrics.rs crates/transport/src/sim.rs crates/transport/src/supervisor.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/release/deps/libnb_transport-b2a276f4f294e6eb.rlib: crates/transport/src/lib.rs crates/transport/src/clock.rs crates/transport/src/endpoint.rs crates/transport/src/error.rs crates/transport/src/instrument.rs crates/transport/src/metrics.rs crates/transport/src/sim.rs crates/transport/src/supervisor.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/release/deps/libnb_transport-b2a276f4f294e6eb.rmeta: crates/transport/src/lib.rs crates/transport/src/clock.rs crates/transport/src/endpoint.rs crates/transport/src/error.rs crates/transport/src/instrument.rs crates/transport/src/metrics.rs crates/transport/src/sim.rs crates/transport/src/supervisor.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/clock.rs:
crates/transport/src/endpoint.rs:
crates/transport/src/error.rs:
crates/transport/src/instrument.rs:
crates/transport/src/metrics.rs:
crates/transport/src/sim.rs:
crates/transport/src/supervisor.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
