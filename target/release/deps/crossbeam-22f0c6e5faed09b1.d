/root/repo/target/release/deps/crossbeam-22f0c6e5faed09b1.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-22f0c6e5faed09b1.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-22f0c6e5faed09b1.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
