/root/repo/target/release/deps/parking_lot-7ba00dac57f9eb03.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-7ba00dac57f9eb03.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-7ba00dac57f9eb03.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
