/root/repo/target/release/deps/entity_tracing-0373c2481d84475a.d: src/lib.rs

/root/repo/target/release/deps/libentity_tracing-0373c2481d84475a.rlib: src/lib.rs

/root/repo/target/release/deps/libentity_tracing-0373c2481d84475a.rmeta: src/lib.rs

src/lib.rs:
