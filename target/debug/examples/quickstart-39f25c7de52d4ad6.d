/root/repo/target/debug/examples/quickstart-39f25c7de52d4ad6.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-39f25c7de52d4ad6.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
