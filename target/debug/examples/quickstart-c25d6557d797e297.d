/root/repo/target/debug/examples/quickstart-c25d6557d797e297.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c25d6557d797e297: examples/quickstart.rs

examples/quickstart.rs:
