/root/repo/target/debug/examples/failover_controller-779c6d83dd361911.d: examples/failover_controller.rs

/root/repo/target/debug/examples/failover_controller-779c6d83dd361911: examples/failover_controller.rs

examples/failover_controller.rs:
