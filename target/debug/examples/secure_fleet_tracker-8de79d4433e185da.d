/root/repo/target/debug/examples/secure_fleet_tracker-8de79d4433e185da.d: examples/secure_fleet_tracker.rs

/root/repo/target/debug/examples/secure_fleet_tracker-8de79d4433e185da: examples/secure_fleet_tracker.rs

examples/secure_fleet_tracker.rs:
