/root/repo/target/debug/examples/grid_service_monitor-295c6e7633af750d.d: examples/grid_service_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libgrid_service_monitor-295c6e7633af750d.rmeta: examples/grid_service_monitor.rs Cargo.toml

examples/grid_service_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
