/root/repo/target/debug/examples/failover_controller-cc50b7a8bc7cd565.d: examples/failover_controller.rs Cargo.toml

/root/repo/target/debug/examples/libfailover_controller-cc50b7a8bc7cd565.rmeta: examples/failover_controller.rs Cargo.toml

examples/failover_controller.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
