/root/repo/target/debug/examples/grid_service_monitor-22b32a1c94946f7b.d: examples/grid_service_monitor.rs

/root/repo/target/debug/examples/grid_service_monitor-22b32a1c94946f7b: examples/grid_service_monitor.rs

examples/grid_service_monitor.rs:
