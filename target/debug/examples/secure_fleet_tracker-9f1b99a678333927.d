/root/repo/target/debug/examples/secure_fleet_tracker-9f1b99a678333927.d: examples/secure_fleet_tracker.rs Cargo.toml

/root/repo/target/debug/examples/libsecure_fleet_tracker-9f1b99a678333927.rmeta: examples/secure_fleet_tracker.rs Cargo.toml

examples/secure_fleet_tracker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
