/root/repo/target/debug/deps/entities_table-102f5d5f4c18e0dd.d: crates/bench/src/bin/entities_table.rs Cargo.toml

/root/repo/target/debug/deps/libentities_table-102f5d5f4c18e0dd.rmeta: crates/bench/src/bin/entities_table.rs Cargo.toml

crates/bench/src/bin/entities_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
