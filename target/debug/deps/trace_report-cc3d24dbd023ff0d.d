/root/repo/target/debug/deps/trace_report-cc3d24dbd023ff0d.d: crates/bench/src/bin/trace_report.rs

/root/repo/target/debug/deps/trace_report-cc3d24dbd023ff0d: crates/bench/src/bin/trace_report.rs

crates/bench/src/bin/trace_report.rs:
