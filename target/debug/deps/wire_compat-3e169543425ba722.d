/root/repo/target/debug/deps/wire_compat-3e169543425ba722.d: crates/wire/tests/wire_compat.rs

/root/repo/target/debug/deps/wire_compat-3e169543425ba722: crates/wire/tests/wire_compat.rs

crates/wire/tests/wire_compat.rs:
