/root/repo/target/debug/deps/trace_report-d7956d243a1736a2.d: crates/bench/src/bin/trace_report.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_report-d7956d243a1736a2.rmeta: crates/bench/src/bin/trace_report.rs Cargo.toml

crates/bench/src/bin/trace_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
