/root/repo/target/debug/deps/hops_table-5bd736a3f89ae93f.d: crates/bench/src/bin/hops_table.rs Cargo.toml

/root/repo/target/debug/deps/libhops_table-5bd736a3f89ae93f.rmeta: crates/bench/src/bin/hops_table.rs Cargo.toml

crates/bench/src/bin/hops_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
