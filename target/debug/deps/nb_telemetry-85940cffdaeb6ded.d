/root/repo/target/debug/deps/nb_telemetry-85940cffdaeb6ded.d: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs Cargo.toml

/root/repo/target/debug/deps/libnb_telemetry-85940cffdaeb6ded.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/context.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
