/root/repo/target/debug/deps/broker_network-283cfca4eed1214e.d: crates/broker/tests/broker_network.rs

/root/repo/target/debug/deps/broker_network-283cfca4eed1214e: crates/broker/tests/broker_network.rs

crates/broker/tests/broker_network.rs:
