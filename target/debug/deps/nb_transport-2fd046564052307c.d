/root/repo/target/debug/deps/nb_transport-2fd046564052307c.d: crates/transport/src/lib.rs crates/transport/src/clock.rs crates/transport/src/endpoint.rs crates/transport/src/error.rs crates/transport/src/instrument.rs crates/transport/src/metrics.rs crates/transport/src/sim.rs crates/transport/src/supervisor.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs Cargo.toml

/root/repo/target/debug/deps/libnb_transport-2fd046564052307c.rmeta: crates/transport/src/lib.rs crates/transport/src/clock.rs crates/transport/src/endpoint.rs crates/transport/src/error.rs crates/transport/src/instrument.rs crates/transport/src/metrics.rs crates/transport/src/sim.rs crates/transport/src/supervisor.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/clock.rs:
crates/transport/src/endpoint.rs:
crates/transport/src/error.rs:
crates/transport/src/instrument.rs:
crates/transport/src/metrics.rs:
crates/transport/src/sim.rs:
crates/transport/src/supervisor.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
