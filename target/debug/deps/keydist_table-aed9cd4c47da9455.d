/root/repo/target/debug/deps/keydist_table-aed9cd4c47da9455.d: crates/bench/src/bin/keydist_table.rs Cargo.toml

/root/repo/target/debug/deps/libkeydist_table-aed9cd4c47da9455.rmeta: crates/bench/src/bin/keydist_table.rs Cargo.toml

crates/bench/src/bin/keydist_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
