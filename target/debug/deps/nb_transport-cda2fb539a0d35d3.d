/root/repo/target/debug/deps/nb_transport-cda2fb539a0d35d3.d: crates/transport/src/lib.rs crates/transport/src/clock.rs crates/transport/src/endpoint.rs crates/transport/src/error.rs crates/transport/src/instrument.rs crates/transport/src/metrics.rs crates/transport/src/sim.rs crates/transport/src/supervisor.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/libnb_transport-cda2fb539a0d35d3.rlib: crates/transport/src/lib.rs crates/transport/src/clock.rs crates/transport/src/endpoint.rs crates/transport/src/error.rs crates/transport/src/instrument.rs crates/transport/src/metrics.rs crates/transport/src/sim.rs crates/transport/src/supervisor.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/libnb_transport-cda2fb539a0d35d3.rmeta: crates/transport/src/lib.rs crates/transport/src/clock.rs crates/transport/src/endpoint.rs crates/transport/src/error.rs crates/transport/src/instrument.rs crates/transport/src/metrics.rs crates/transport/src/sim.rs crates/transport/src/supervisor.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/clock.rs:
crates/transport/src/endpoint.rs:
crates/transport/src/error.rs:
crates/transport/src/instrument.rs:
crates/transport/src/metrics.rs:
crates/transport/src/sim.rs:
crates/transport/src/supervisor.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
