/root/repo/target/debug/deps/crypto_table-85cbdb295b279d0b.d: crates/bench/src/bin/crypto_table.rs Cargo.toml

/root/repo/target/debug/deps/libcrypto_table-85cbdb295b279d0b.rmeta: crates/bench/src/bin/crypto_table.rs Cargo.toml

crates/bench/src/bin/crypto_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
