/root/repo/target/debug/deps/keydist_table-514b91faaf7dccd1.d: crates/bench/src/bin/keydist_table.rs

/root/repo/target/debug/deps/keydist_table-514b91faaf7dccd1: crates/bench/src/bin/keydist_table.rs

crates/bench/src/bin/keydist_table.rs:
