/root/repo/target/debug/deps/nb_broker-5e50fa923ed40d7c.d: crates/broker/src/lib.rs crates/broker/src/client.rs crates/broker/src/discovery.rs crates/broker/src/error.rs crates/broker/src/network.rs crates/broker/src/node.rs crates/broker/src/subscription.rs Cargo.toml

/root/repo/target/debug/deps/libnb_broker-5e50fa923ed40d7c.rmeta: crates/broker/src/lib.rs crates/broker/src/client.rs crates/broker/src/discovery.rs crates/broker/src/error.rs crates/broker/src/network.rs crates/broker/src/node.rs crates/broker/src/subscription.rs Cargo.toml

crates/broker/src/lib.rs:
crates/broker/src/client.rs:
crates/broker/src/discovery.rs:
crates/broker/src/error.rs:
crates/broker/src/network.rs:
crates/broker/src/node.rs:
crates/broker/src/subscription.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
