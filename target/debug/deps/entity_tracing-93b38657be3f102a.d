/root/repo/target/debug/deps/entity_tracing-93b38657be3f102a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libentity_tracing-93b38657be3f102a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
