/root/repo/target/debug/deps/nb_broker-2abf7467f11570af.d: crates/broker/src/lib.rs crates/broker/src/client.rs crates/broker/src/discovery.rs crates/broker/src/error.rs crates/broker/src/network.rs crates/broker/src/node.rs crates/broker/src/subscription.rs

/root/repo/target/debug/deps/nb_broker-2abf7467f11570af: crates/broker/src/lib.rs crates/broker/src/client.rs crates/broker/src/discovery.rs crates/broker/src/error.rs crates/broker/src/network.rs crates/broker/src/node.rs crates/broker/src/subscription.rs

crates/broker/src/lib.rs:
crates/broker/src/client.rs:
crates/broker/src/discovery.rs:
crates/broker/src/error.rs:
crates/broker/src/network.rs:
crates/broker/src/node.rs:
crates/broker/src/subscription.rs:
