/root/repo/target/debug/deps/chaos-db529974008a7f56.d: crates/tracing/tests/chaos.rs

/root/repo/target/debug/deps/chaos-db529974008a7f56: crates/tracing/tests/chaos.rs

crates/tracing/tests/chaos.rs:
