/root/repo/target/debug/deps/proptests-55dc3211045f24a1.d: crates/tracing/tests/proptests.rs

/root/repo/target/debug/deps/proptests-55dc3211045f24a1: crates/tracing/tests/proptests.rs

crates/tracing/tests/proptests.rs:
