/root/repo/target/debug/deps/criterion-ab8b08373800e043.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-ab8b08373800e043.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-ab8b08373800e043.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
