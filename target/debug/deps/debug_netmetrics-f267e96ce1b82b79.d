/root/repo/target/debug/deps/debug_netmetrics-f267e96ce1b82b79.d: tests/debug_netmetrics.rs

/root/repo/target/debug/deps/debug_netmetrics-f267e96ce1b82b79: tests/debug_netmetrics.rs

tests/debug_netmetrics.rs:
