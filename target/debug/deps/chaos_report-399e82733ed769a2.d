/root/repo/target/debug/deps/chaos_report-399e82733ed769a2.d: crates/bench/src/bin/chaos_report.rs

/root/repo/target/debug/deps/chaos_report-399e82733ed769a2: crates/bench/src/bin/chaos_report.rs

crates/bench/src/bin/chaos_report.rs:
