/root/repo/target/debug/deps/nb_wire-64b7417f9076134d.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/constrained.rs crates/wire/src/error.rs crates/wire/src/instrument.rs crates/wire/src/message.rs crates/wire/src/payload.rs crates/wire/src/token.rs crates/wire/src/topic.rs crates/wire/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnb_wire-64b7417f9076134d.rmeta: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/constrained.rs crates/wire/src/error.rs crates/wire/src/instrument.rs crates/wire/src/message.rs crates/wire/src/payload.rs crates/wire/src/token.rs crates/wire/src/topic.rs crates/wire/src/trace.rs Cargo.toml

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/constrained.rs:
crates/wire/src/error.rs:
crates/wire/src/instrument.rs:
crates/wire/src/message.rs:
crates/wire/src/payload.rs:
crates/wire/src/token.rs:
crates/wire/src/topic.rs:
crates/wire/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
