/root/repo/target/debug/deps/nb_tdn-8757e69f6d271d8a.d: crates/tdn/src/lib.rs crates/tdn/src/cluster.rs crates/tdn/src/node.rs crates/tdn/src/query.rs

/root/repo/target/debug/deps/libnb_tdn-8757e69f6d271d8a.rlib: crates/tdn/src/lib.rs crates/tdn/src/cluster.rs crates/tdn/src/node.rs crates/tdn/src/query.rs

/root/repo/target/debug/deps/libnb_tdn-8757e69f6d271d8a.rmeta: crates/tdn/src/lib.rs crates/tdn/src/cluster.rs crates/tdn/src/node.rs crates/tdn/src/query.rs

crates/tdn/src/lib.rs:
crates/tdn/src/cluster.rs:
crates/tdn/src/node.rs:
crates/tdn/src/query.rs:
