/root/repo/target/debug/deps/trackers_sweep-70165295db5b5265.d: crates/bench/src/bin/trackers_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libtrackers_sweep-70165295db5b5265.rmeta: crates/bench/src/bin/trackers_sweep.rs Cargo.toml

crates/bench/src/bin/trackers_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
