/root/repo/target/debug/deps/no_alloc-fe61d77ae3bb372b.d: crates/telemetry/tests/no_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libno_alloc-fe61d77ae3bb372b.rmeta: crates/telemetry/tests/no_alloc.rs Cargo.toml

crates/telemetry/tests/no_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
