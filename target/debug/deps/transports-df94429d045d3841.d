/root/repo/target/debug/deps/transports-df94429d045d3841.d: crates/tracing/tests/transports.rs Cargo.toml

/root/repo/target/debug/deps/libtransports-df94429d045d3841.rmeta: crates/tracing/tests/transports.rs Cargo.toml

crates/tracing/tests/transports.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
