/root/repo/target/debug/deps/criterion-6d795e9c7d6a4efc.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6d795e9c7d6a4efc.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
