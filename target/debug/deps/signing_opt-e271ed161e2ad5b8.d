/root/repo/target/debug/deps/signing_opt-e271ed161e2ad5b8.d: crates/bench/src/bin/signing_opt.rs Cargo.toml

/root/repo/target/debug/deps/libsigning_opt-e271ed161e2ad5b8.rmeta: crates/bench/src/bin/signing_opt.rs Cargo.toml

crates/bench/src/bin/signing_opt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
