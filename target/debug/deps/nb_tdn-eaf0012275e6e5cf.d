/root/repo/target/debug/deps/nb_tdn-eaf0012275e6e5cf.d: crates/tdn/src/lib.rs crates/tdn/src/cluster.rs crates/tdn/src/node.rs crates/tdn/src/query.rs Cargo.toml

/root/repo/target/debug/deps/libnb_tdn-eaf0012275e6e5cf.rmeta: crates/tdn/src/lib.rs crates/tdn/src/cluster.rs crates/tdn/src/node.rs crates/tdn/src/query.rs Cargo.toml

crates/tdn/src/lib.rs:
crates/tdn/src/cluster.rs:
crates/tdn/src/node.rs:
crates/tdn/src/query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
