/root/repo/target/debug/deps/signing_opt-c239601320e6f252.d: crates/bench/src/bin/signing_opt.rs

/root/repo/target/debug/deps/signing_opt-c239601320e6f252: crates/bench/src/bin/signing_opt.rs

crates/bench/src/bin/signing_opt.rs:
