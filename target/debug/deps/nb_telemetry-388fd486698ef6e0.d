/root/repo/target/debug/deps/nb_telemetry-388fd486698ef6e0.d: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs Cargo.toml

/root/repo/target/debug/deps/libnb_telemetry-388fd486698ef6e0.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/context.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
