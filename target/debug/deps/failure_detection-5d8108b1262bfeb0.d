/root/repo/target/debug/deps/failure_detection-5d8108b1262bfeb0.d: crates/bench/benches/failure_detection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_detection-5d8108b1262bfeb0.rmeta: crates/bench/benches/failure_detection.rs Cargo.toml

crates/bench/benches/failure_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
