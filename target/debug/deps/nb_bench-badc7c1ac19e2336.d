/root/repo/target/debug/deps/nb_bench-badc7c1ac19e2336.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/nb_bench-badc7c1ac19e2336: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
