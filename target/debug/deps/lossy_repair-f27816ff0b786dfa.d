/root/repo/target/debug/deps/lossy_repair-f27816ff0b786dfa.d: crates/broker/tests/lossy_repair.rs Cargo.toml

/root/repo/target/debug/deps/liblossy_repair-f27816ff0b786dfa.rmeta: crates/broker/tests/lossy_repair.rs Cargo.toml

crates/broker/tests/lossy_repair.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
