/root/repo/target/debug/deps/proptest-413ded38edae7840.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-413ded38edae7840.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
