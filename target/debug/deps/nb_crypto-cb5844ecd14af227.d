/root/repo/target/debug/deps/nb_crypto-cb5844ecd14af227.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/bigint/mod.rs crates/crypto/src/bigint/div.rs crates/crypto/src/bigint/modular.rs crates/crypto/src/instrument.rs crates/crypto/src/cert.rs crates/crypto/src/digest.rs crates/crypto/src/error.rs crates/crypto/src/hmac.rs crates/crypto/src/hybrid.rs crates/crypto/src/modes.rs crates/crypto/src/padding.rs crates/crypto/src/prime.rs crates/crypto/src/rsa.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/uuid.rs Cargo.toml

/root/repo/target/debug/deps/libnb_crypto-cb5844ecd14af227.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/bigint/mod.rs crates/crypto/src/bigint/div.rs crates/crypto/src/bigint/modular.rs crates/crypto/src/instrument.rs crates/crypto/src/cert.rs crates/crypto/src/digest.rs crates/crypto/src/error.rs crates/crypto/src/hmac.rs crates/crypto/src/hybrid.rs crates/crypto/src/modes.rs crates/crypto/src/padding.rs crates/crypto/src/prime.rs crates/crypto/src/rsa.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/uuid.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/bigint/mod.rs:
crates/crypto/src/bigint/div.rs:
crates/crypto/src/bigint/modular.rs:
crates/crypto/src/instrument.rs:
crates/crypto/src/cert.rs:
crates/crypto/src/digest.rs:
crates/crypto/src/error.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/hybrid.rs:
crates/crypto/src/modes.rs:
crates/crypto/src/padding.rs:
crates/crypto/src/prime.rs:
crates/crypto/src/rsa.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/uuid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
