/root/repo/target/debug/deps/entity_tracing-50b1f7ec2021af06.d: src/lib.rs

/root/repo/target/debug/deps/libentity_tracing-50b1f7ec2021af06.rlib: src/lib.rs

/root/repo/target/debug/deps/libentity_tracing-50b1f7ec2021af06.rmeta: src/lib.rs

src/lib.rs:
