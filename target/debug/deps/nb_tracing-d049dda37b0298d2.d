/root/repo/target/debug/deps/nb_tracing-d049dda37b0298d2.d: crates/tracing/src/lib.rs crates/tracing/src/channels.rs crates/tracing/src/config.rs crates/tracing/src/engine.rs crates/tracing/src/entity.rs crates/tracing/src/error.rs crates/tracing/src/failure.rs crates/tracing/src/harness.rs crates/tracing/src/interest.rs crates/tracing/src/tracker.rs crates/tracing/src/view.rs

/root/repo/target/debug/deps/nb_tracing-d049dda37b0298d2: crates/tracing/src/lib.rs crates/tracing/src/channels.rs crates/tracing/src/config.rs crates/tracing/src/engine.rs crates/tracing/src/entity.rs crates/tracing/src/error.rs crates/tracing/src/failure.rs crates/tracing/src/harness.rs crates/tracing/src/interest.rs crates/tracing/src/tracker.rs crates/tracing/src/view.rs

crates/tracing/src/lib.rs:
crates/tracing/src/channels.rs:
crates/tracing/src/config.rs:
crates/tracing/src/engine.rs:
crates/tracing/src/entity.rs:
crates/tracing/src/error.rs:
crates/tracing/src/failure.rs:
crates/tracing/src/harness.rs:
crates/tracing/src/interest.rs:
crates/tracing/src/tracker.rs:
crates/tracing/src/view.rs:
