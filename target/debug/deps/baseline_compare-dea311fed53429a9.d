/root/repo/target/debug/deps/baseline_compare-dea311fed53429a9.d: crates/bench/src/bin/baseline_compare.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_compare-dea311fed53429a9.rmeta: crates/bench/src/bin/baseline_compare.rs Cargo.toml

crates/bench/src/bin/baseline_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
