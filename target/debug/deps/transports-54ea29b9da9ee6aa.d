/root/repo/target/debug/deps/transports-54ea29b9da9ee6aa.d: crates/tracing/tests/transports.rs

/root/repo/target/debug/deps/transports-54ea29b9da9ee6aa: crates/tracing/tests/transports.rs

crates/tracing/tests/transports.rs:
