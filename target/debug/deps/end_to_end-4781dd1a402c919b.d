/root/repo/target/debug/deps/end_to_end-4781dd1a402c919b.d: crates/tracing/tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-4781dd1a402c919b.rmeta: crates/tracing/tests/end_to_end.rs Cargo.toml

crates/tracing/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
