/root/repo/target/debug/deps/crossbeam-1089b8536e57d3e5.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-1089b8536e57d3e5.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
