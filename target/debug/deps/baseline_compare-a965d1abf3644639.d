/root/repo/target/debug/deps/baseline_compare-a965d1abf3644639.d: crates/bench/src/bin/baseline_compare.rs

/root/repo/target/debug/deps/baseline_compare-a965d1abf3644639: crates/bench/src/bin/baseline_compare.rs

crates/bench/src/bin/baseline_compare.rs:
