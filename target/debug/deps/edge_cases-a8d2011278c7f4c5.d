/root/repo/target/debug/deps/edge_cases-a8d2011278c7f4c5.d: crates/broker/tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-a8d2011278c7f4c5: crates/broker/tests/edge_cases.rs

crates/broker/tests/edge_cases.rs:
