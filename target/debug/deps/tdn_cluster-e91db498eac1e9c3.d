/root/repo/target/debug/deps/tdn_cluster-e91db498eac1e9c3.d: crates/tdn/tests/tdn_cluster.rs

/root/repo/target/debug/deps/tdn_cluster-e91db498eac1e9c3: crates/tdn/tests/tdn_cluster.rs

crates/tdn/tests/tdn_cluster.rs:
