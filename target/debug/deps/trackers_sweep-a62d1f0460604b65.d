/root/repo/target/debug/deps/trackers_sweep-a62d1f0460604b65.d: crates/bench/src/bin/trackers_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libtrackers_sweep-a62d1f0460604b65.rmeta: crates/bench/src/bin/trackers_sweep.rs Cargo.toml

crates/bench/src/bin/trackers_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
