/root/repo/target/debug/deps/full_stack-7e1e04eab169132a.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-7e1e04eab169132a: tests/full_stack.rs

tests/full_stack.rs:
