/root/repo/target/debug/deps/broker_network-1b4354b9e2b39208.d: crates/broker/tests/broker_network.rs Cargo.toml

/root/repo/target/debug/deps/libbroker_network-1b4354b9e2b39208.rmeta: crates/broker/tests/broker_network.rs Cargo.toml

crates/broker/tests/broker_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
