/root/repo/target/debug/deps/hops_table-99914016c13825d9.d: crates/bench/src/bin/hops_table.rs

/root/repo/target/debug/deps/hops_table-99914016c13825d9: crates/bench/src/bin/hops_table.rs

crates/bench/src/bin/hops_table.rs:
