/root/repo/target/debug/deps/proptests-d9f322a17128e552.d: crates/tracing/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d9f322a17128e552.rmeta: crates/tracing/tests/proptests.rs Cargo.toml

crates/tracing/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
