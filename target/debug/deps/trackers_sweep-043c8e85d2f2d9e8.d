/root/repo/target/debug/deps/trackers_sweep-043c8e85d2f2d9e8.d: crates/bench/src/bin/trackers_sweep.rs

/root/repo/target/debug/deps/trackers_sweep-043c8e85d2f2d9e8: crates/bench/src/bin/trackers_sweep.rs

crates/bench/src/bin/trackers_sweep.rs:
