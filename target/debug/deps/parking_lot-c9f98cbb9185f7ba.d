/root/repo/target/debug/deps/parking_lot-c9f98cbb9185f7ba.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c9f98cbb9185f7ba.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c9f98cbb9185f7ba.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
