/root/repo/target/debug/deps/rand-32f1226e546a10b7.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-32f1226e546a10b7.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-32f1226e546a10b7.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
