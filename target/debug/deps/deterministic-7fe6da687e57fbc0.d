/root/repo/target/debug/deps/deterministic-7fe6da687e57fbc0.d: crates/tracing/tests/deterministic.rs Cargo.toml

/root/repo/target/debug/deps/libdeterministic-7fe6da687e57fbc0.rmeta: crates/tracing/tests/deterministic.rs Cargo.toml

crates/tracing/tests/deterministic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
