/root/repo/target/debug/deps/baseline_compare-d404e42933a767ff.d: crates/bench/src/bin/baseline_compare.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_compare-d404e42933a767ff.rmeta: crates/bench/src/bin/baseline_compare.rs Cargo.toml

crates/bench/src/bin/baseline_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
