/root/repo/target/debug/deps/entities_table-179de59649e6b6dc.d: crates/bench/src/bin/entities_table.rs

/root/repo/target/debug/deps/entities_table-179de59649e6b6dc: crates/bench/src/bin/entities_table.rs

crates/bench/src/bin/entities_table.rs:
