/root/repo/target/debug/deps/rand-71d9ba4ec5b37e35.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-71d9ba4ec5b37e35.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
