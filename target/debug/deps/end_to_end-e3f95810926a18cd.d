/root/repo/target/debug/deps/end_to_end-e3f95810926a18cd.d: crates/tracing/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e3f95810926a18cd: crates/tracing/tests/end_to_end.rs

crates/tracing/tests/end_to_end.rs:
