/root/repo/target/debug/deps/hops_table-8a18d4b829af4284.d: crates/bench/src/bin/hops_table.rs Cargo.toml

/root/repo/target/debug/deps/libhops_table-8a18d4b829af4284.rmeta: crates/bench/src/bin/hops_table.rs Cargo.toml

crates/bench/src/bin/hops_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
