/root/repo/target/debug/deps/crypto_table-f9632cf8fcc758d3.d: crates/bench/src/bin/crypto_table.rs

/root/repo/target/debug/deps/crypto_table-f9632cf8fcc758d3: crates/bench/src/bin/crypto_table.rs

crates/bench/src/bin/crypto_table.rs:
