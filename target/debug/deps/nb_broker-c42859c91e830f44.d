/root/repo/target/debug/deps/nb_broker-c42859c91e830f44.d: crates/broker/src/lib.rs crates/broker/src/client.rs crates/broker/src/discovery.rs crates/broker/src/error.rs crates/broker/src/network.rs crates/broker/src/node.rs crates/broker/src/subscription.rs

/root/repo/target/debug/deps/libnb_broker-c42859c91e830f44.rlib: crates/broker/src/lib.rs crates/broker/src/client.rs crates/broker/src/discovery.rs crates/broker/src/error.rs crates/broker/src/network.rs crates/broker/src/node.rs crates/broker/src/subscription.rs

/root/repo/target/debug/deps/libnb_broker-c42859c91e830f44.rmeta: crates/broker/src/lib.rs crates/broker/src/client.rs crates/broker/src/discovery.rs crates/broker/src/error.rs crates/broker/src/network.rs crates/broker/src/node.rs crates/broker/src/subscription.rs

crates/broker/src/lib.rs:
crates/broker/src/client.rs:
crates/broker/src/discovery.rs:
crates/broker/src/error.rs:
crates/broker/src/network.rs:
crates/broker/src/node.rs:
crates/broker/src/subscription.rs:
