/root/repo/target/debug/deps/trace_report-1938d2ca49e0d886.d: crates/bench/src/bin/trace_report.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_report-1938d2ca49e0d886.rmeta: crates/bench/src/bin/trace_report.rs Cargo.toml

crates/bench/src/bin/trace_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
