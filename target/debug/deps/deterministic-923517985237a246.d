/root/repo/target/debug/deps/deterministic-923517985237a246.d: crates/tracing/tests/deterministic.rs

/root/repo/target/debug/deps/deterministic-923517985237a246: crates/tracing/tests/deterministic.rs

crates/tracing/tests/deterministic.rs:
