/root/repo/target/debug/deps/parking_lot-75608aaf435a6bd5.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-75608aaf435a6bd5.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
