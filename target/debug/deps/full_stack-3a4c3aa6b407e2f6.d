/root/repo/target/debug/deps/full_stack-3a4c3aa6b407e2f6.d: tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-3a4c3aa6b407e2f6.rmeta: tests/full_stack.rs Cargo.toml

tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
