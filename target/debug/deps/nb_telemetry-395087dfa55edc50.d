/root/repo/target/debug/deps/nb_telemetry-395087dfa55edc50.d: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs

/root/repo/target/debug/deps/nb_telemetry-395087dfa55edc50: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/context.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/sampler.rs:
