/root/repo/target/debug/deps/keydist_table-d2c30e804679309d.d: crates/bench/src/bin/keydist_table.rs Cargo.toml

/root/repo/target/debug/deps/libkeydist_table-d2c30e804679309d.rmeta: crates/bench/src/bin/keydist_table.rs Cargo.toml

crates/bench/src/bin/keydist_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
