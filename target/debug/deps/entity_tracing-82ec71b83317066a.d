/root/repo/target/debug/deps/entity_tracing-82ec71b83317066a.d: src/lib.rs

/root/repo/target/debug/deps/entity_tracing-82ec71b83317066a: src/lib.rs

src/lib.rs:
