/root/repo/target/debug/deps/nb_metrics-f2f90421815f9375.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs crates/metrics/src/timer.rs

/root/repo/target/debug/deps/libnb_metrics-f2f90421815f9375.rlib: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs crates/metrics/src/timer.rs

/root/repo/target/debug/deps/libnb_metrics-f2f90421815f9375.rmeta: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs crates/metrics/src/timer.rs

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/snapshot.rs:
crates/metrics/src/timer.rs:
