/root/repo/target/debug/deps/nb_telemetry-80c398a32f70e0f2.d: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs

/root/repo/target/debug/deps/libnb_telemetry-80c398a32f70e0f2.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs

/root/repo/target/debug/deps/libnb_telemetry-80c398a32f70e0f2.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/context.rs crates/telemetry/src/export.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sampler.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/context.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/sampler.rs:
