/root/repo/target/debug/deps/signing_opt-a023accf3eb4b2fb.d: crates/bench/src/bin/signing_opt.rs Cargo.toml

/root/repo/target/debug/deps/libsigning_opt-a023accf3eb4b2fb.rmeta: crates/bench/src/bin/signing_opt.rs Cargo.toml

crates/bench/src/bin/signing_opt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
