/root/repo/target/debug/deps/nb_baseline-d43dcc2847a1a5d9.d: crates/baseline/src/lib.rs crates/baseline/src/gossip.rs crates/baseline/src/naive.rs

/root/repo/target/debug/deps/nb_baseline-d43dcc2847a1a5d9: crates/baseline/src/lib.rs crates/baseline/src/gossip.rs crates/baseline/src/naive.rs

crates/baseline/src/lib.rs:
crates/baseline/src/gossip.rs:
crates/baseline/src/naive.rs:
