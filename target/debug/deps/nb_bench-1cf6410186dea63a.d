/root/repo/target/debug/deps/nb_bench-1cf6410186dea63a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnb_bench-1cf6410186dea63a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
