/root/repo/target/debug/deps/chaos_report-e5e77a38ac74901b.d: crates/bench/src/bin/chaos_report.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_report-e5e77a38ac74901b.rmeta: crates/bench/src/bin/chaos_report.rs Cargo.toml

crates/bench/src/bin/chaos_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
