/root/repo/target/debug/deps/paper_tables-ab65e0afc84173d6.d: crates/bench/benches/paper_tables.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_tables-ab65e0afc84173d6.rmeta: crates/bench/benches/paper_tables.rs Cargo.toml

crates/bench/benches/paper_tables.rs:
Cargo.toml:

# env-dep:CARGO=/root/.rustup/toolchains/stable-x86_64-unknown-linux-gnu/bin/cargo
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
