/root/repo/target/debug/deps/nb_transport-abfc4f8172bfb3f9.d: crates/transport/src/lib.rs crates/transport/src/clock.rs crates/transport/src/endpoint.rs crates/transport/src/error.rs crates/transport/src/instrument.rs crates/transport/src/metrics.rs crates/transport/src/sim.rs crates/transport/src/supervisor.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/nb_transport-abfc4f8172bfb3f9: crates/transport/src/lib.rs crates/transport/src/clock.rs crates/transport/src/endpoint.rs crates/transport/src/error.rs crates/transport/src/instrument.rs crates/transport/src/metrics.rs crates/transport/src/sim.rs crates/transport/src/supervisor.rs crates/transport/src/tcp.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/clock.rs:
crates/transport/src/endpoint.rs:
crates/transport/src/error.rs:
crates/transport/src/instrument.rs:
crates/transport/src/metrics.rs:
crates/transport/src/sim.rs:
crates/transport/src/supervisor.rs:
crates/transport/src/tcp.rs:
crates/transport/src/udp.rs:
