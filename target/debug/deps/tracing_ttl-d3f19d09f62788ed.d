/root/repo/target/debug/deps/tracing_ttl-d3f19d09f62788ed.d: crates/broker/tests/tracing_ttl.rs

/root/repo/target/debug/deps/tracing_ttl-d3f19d09f62788ed: crates/broker/tests/tracing_ttl.rs

crates/broker/tests/tracing_ttl.rs:
