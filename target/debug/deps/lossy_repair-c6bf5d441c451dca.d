/root/repo/target/debug/deps/lossy_repair-c6bf5d441c451dca.d: crates/broker/tests/lossy_repair.rs

/root/repo/target/debug/deps/lossy_repair-c6bf5d441c451dca: crates/broker/tests/lossy_repair.rs

crates/broker/tests/lossy_repair.rs:
