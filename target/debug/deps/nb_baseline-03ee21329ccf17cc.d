/root/repo/target/debug/deps/nb_baseline-03ee21329ccf17cc.d: crates/baseline/src/lib.rs crates/baseline/src/gossip.rs crates/baseline/src/naive.rs Cargo.toml

/root/repo/target/debug/deps/libnb_baseline-03ee21329ccf17cc.rmeta: crates/baseline/src/lib.rs crates/baseline/src/gossip.rs crates/baseline/src/naive.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/gossip.rs:
crates/baseline/src/naive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
