/root/repo/target/debug/deps/nb_baseline-32e9f0918ea0a961.d: crates/baseline/src/lib.rs crates/baseline/src/gossip.rs crates/baseline/src/naive.rs

/root/repo/target/debug/deps/libnb_baseline-32e9f0918ea0a961.rlib: crates/baseline/src/lib.rs crates/baseline/src/gossip.rs crates/baseline/src/naive.rs

/root/repo/target/debug/deps/libnb_baseline-32e9f0918ea0a961.rmeta: crates/baseline/src/lib.rs crates/baseline/src/gossip.rs crates/baseline/src/naive.rs

crates/baseline/src/lib.rs:
crates/baseline/src/gossip.rs:
crates/baseline/src/naive.rs:
