/root/repo/target/debug/deps/nb_tdn-a2b330122fdd2f21.d: crates/tdn/src/lib.rs crates/tdn/src/cluster.rs crates/tdn/src/node.rs crates/tdn/src/query.rs

/root/repo/target/debug/deps/nb_tdn-a2b330122fdd2f21: crates/tdn/src/lib.rs crates/tdn/src/cluster.rs crates/tdn/src/node.rs crates/tdn/src/query.rs

crates/tdn/src/lib.rs:
crates/tdn/src/cluster.rs:
crates/tdn/src/node.rs:
crates/tdn/src/query.rs:
