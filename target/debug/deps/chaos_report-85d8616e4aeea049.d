/root/repo/target/debug/deps/chaos_report-85d8616e4aeea049.d: crates/bench/src/bin/chaos_report.rs

/root/repo/target/debug/deps/chaos_report-85d8616e4aeea049: crates/bench/src/bin/chaos_report.rs

crates/bench/src/bin/chaos_report.rs:
