/root/repo/target/debug/deps/edge_cases-c65f610fde536329.d: crates/broker/tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-c65f610fde536329.rmeta: crates/broker/tests/edge_cases.rs Cargo.toml

crates/broker/tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
