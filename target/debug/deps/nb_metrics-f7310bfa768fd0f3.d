/root/repo/target/debug/deps/nb_metrics-f7310bfa768fd0f3.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs crates/metrics/src/timer.rs Cargo.toml

/root/repo/target/debug/deps/libnb_metrics-f7310bfa768fd0f3.rmeta: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs crates/metrics/src/timer.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/snapshot.rs:
crates/metrics/src/timer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
