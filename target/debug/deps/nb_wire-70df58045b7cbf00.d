/root/repo/target/debug/deps/nb_wire-70df58045b7cbf00.d: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/constrained.rs crates/wire/src/error.rs crates/wire/src/instrument.rs crates/wire/src/message.rs crates/wire/src/payload.rs crates/wire/src/token.rs crates/wire/src/topic.rs crates/wire/src/trace.rs

/root/repo/target/debug/deps/nb_wire-70df58045b7cbf00: crates/wire/src/lib.rs crates/wire/src/codec.rs crates/wire/src/constrained.rs crates/wire/src/error.rs crates/wire/src/instrument.rs crates/wire/src/message.rs crates/wire/src/payload.rs crates/wire/src/token.rs crates/wire/src/topic.rs crates/wire/src/trace.rs

crates/wire/src/lib.rs:
crates/wire/src/codec.rs:
crates/wire/src/constrained.rs:
crates/wire/src/error.rs:
crates/wire/src/instrument.rs:
crates/wire/src/message.rs:
crates/wire/src/payload.rs:
crates/wire/src/token.rs:
crates/wire/src/topic.rs:
crates/wire/src/trace.rs:
