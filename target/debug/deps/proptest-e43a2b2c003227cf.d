/root/repo/target/debug/deps/proptest-e43a2b2c003227cf.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e43a2b2c003227cf.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e43a2b2c003227cf.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
