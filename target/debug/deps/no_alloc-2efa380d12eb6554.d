/root/repo/target/debug/deps/no_alloc-2efa380d12eb6554.d: crates/telemetry/tests/no_alloc.rs

/root/repo/target/debug/deps/no_alloc-2efa380d12eb6554: crates/telemetry/tests/no_alloc.rs

crates/telemetry/tests/no_alloc.rs:
