/root/repo/target/debug/deps/nb_metrics-ddc4ce644f588d29.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs crates/metrics/src/timer.rs

/root/repo/target/debug/deps/nb_metrics-ddc4ce644f588d29: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs crates/metrics/src/timer.rs

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/snapshot.rs:
crates/metrics/src/timer.rs:
