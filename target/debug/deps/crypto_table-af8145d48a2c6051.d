/root/repo/target/debug/deps/crypto_table-af8145d48a2c6051.d: crates/bench/src/bin/crypto_table.rs Cargo.toml

/root/repo/target/debug/deps/libcrypto_table-af8145d48a2c6051.rmeta: crates/bench/src/bin/crypto_table.rs Cargo.toml

crates/bench/src/bin/crypto_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
