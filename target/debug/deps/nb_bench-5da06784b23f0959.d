/root/repo/target/debug/deps/nb_bench-5da06784b23f0959.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnb_bench-5da06784b23f0959.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnb_bench-5da06784b23f0959.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
