/root/repo/target/debug/deps/entities_table-338c54f4c1d64073.d: crates/bench/src/bin/entities_table.rs Cargo.toml

/root/repo/target/debug/deps/libentities_table-338c54f4c1d64073.rmeta: crates/bench/src/bin/entities_table.rs Cargo.toml

crates/bench/src/bin/entities_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
