/root/repo/target/debug/deps/metrics_report-db9b8be3252dec3c.d: crates/bench/src/bin/metrics_report.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_report-db9b8be3252dec3c.rmeta: crates/bench/src/bin/metrics_report.rs Cargo.toml

crates/bench/src/bin/metrics_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
