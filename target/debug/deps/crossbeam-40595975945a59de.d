/root/repo/target/debug/deps/crossbeam-40595975945a59de.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-40595975945a59de.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-40595975945a59de.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
