/root/repo/target/debug/deps/proptests-27395433f8546654.d: crates/broker/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-27395433f8546654.rmeta: crates/broker/tests/proptests.rs Cargo.toml

crates/broker/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
