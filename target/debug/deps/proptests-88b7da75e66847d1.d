/root/repo/target/debug/deps/proptests-88b7da75e66847d1.d: crates/broker/tests/proptests.rs

/root/repo/target/debug/deps/proptests-88b7da75e66847d1: crates/broker/tests/proptests.rs

crates/broker/tests/proptests.rs:
