/root/repo/target/debug/deps/chaos-b1e471fb75a53717.d: crates/tracing/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-b1e471fb75a53717.rmeta: crates/tracing/tests/chaos.rs Cargo.toml

crates/tracing/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
