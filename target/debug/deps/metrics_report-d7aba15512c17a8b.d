/root/repo/target/debug/deps/metrics_report-d7aba15512c17a8b.d: crates/bench/src/bin/metrics_report.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_report-d7aba15512c17a8b.rmeta: crates/bench/src/bin/metrics_report.rs Cargo.toml

crates/bench/src/bin/metrics_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
