/root/repo/target/debug/deps/nb_bench-b709e36d77e5c379.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnb_bench-b709e36d77e5c379.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
