/root/repo/target/debug/deps/metrics_report-057087be67f0fd67.d: crates/bench/src/bin/metrics_report.rs

/root/repo/target/debug/deps/metrics_report-057087be67f0fd67: crates/bench/src/bin/metrics_report.rs

crates/bench/src/bin/metrics_report.rs:
