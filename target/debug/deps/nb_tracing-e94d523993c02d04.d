/root/repo/target/debug/deps/nb_tracing-e94d523993c02d04.d: crates/tracing/src/lib.rs crates/tracing/src/channels.rs crates/tracing/src/config.rs crates/tracing/src/engine.rs crates/tracing/src/entity.rs crates/tracing/src/error.rs crates/tracing/src/failure.rs crates/tracing/src/harness.rs crates/tracing/src/interest.rs crates/tracing/src/tracker.rs crates/tracing/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libnb_tracing-e94d523993c02d04.rmeta: crates/tracing/src/lib.rs crates/tracing/src/channels.rs crates/tracing/src/config.rs crates/tracing/src/engine.rs crates/tracing/src/entity.rs crates/tracing/src/error.rs crates/tracing/src/failure.rs crates/tracing/src/harness.rs crates/tracing/src/interest.rs crates/tracing/src/tracker.rs crates/tracing/src/view.rs Cargo.toml

crates/tracing/src/lib.rs:
crates/tracing/src/channels.rs:
crates/tracing/src/config.rs:
crates/tracing/src/engine.rs:
crates/tracing/src/entity.rs:
crates/tracing/src/error.rs:
crates/tracing/src/failure.rs:
crates/tracing/src/harness.rs:
crates/tracing/src/interest.rs:
crates/tracing/src/tracker.rs:
crates/tracing/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
