/root/repo/target/debug/deps/tracing_ttl-ecae591c955bd7e4.d: crates/broker/tests/tracing_ttl.rs Cargo.toml

/root/repo/target/debug/deps/libtracing_ttl-ecae591c955bd7e4.rmeta: crates/broker/tests/tracing_ttl.rs Cargo.toml

crates/broker/tests/tracing_ttl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
