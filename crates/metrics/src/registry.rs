//! Named metric handles and the [`Registry`] that owns them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::Histogram;
use crate::snapshot::{Snapshot, SnapshotEntry, SnapshotValue};

/// A monotonically increasing event counter.
///
/// Cloning is cheap and every clone refers to the same underlying
/// atomic, so a handle can be registered once and cached on the hot
/// path.
///
/// ```
/// let r = nb_metrics::Registry::new();
/// let c = r.counter("requests");
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, table sizes).
///
/// ```
/// let r = nb_metrics::Registry::new();
/// let g = r.gauge("depth");
/// g.set(7);
/// g.dec();
/// assert_eq!(g.get(), 6);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a detached gauge (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements by one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics.
///
/// Registration is get-or-create: asking twice for the same name
/// returns handles to the same metric. Asking for an existing name
/// with a different metric kind panics — names are a flat global
/// namespace per registry and a kind clash is a programming error.
///
/// The registry itself is `Clone + Send + Sync` (shared interior), so
/// a component can hand out its registry for snapshotting while its
/// workers keep cached handles.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Returns the counter named `name`, creating it if absent.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Returns the gauge named `name`, creating it if absent.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Returns the histogram named `name`, creating it if absent.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Captures the current value of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let entries = map
            .iter()
            .map(|(name, metric)| SnapshotEntry {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Metric::Histogram(h) => SnapshotValue::Histogram(h.summary()),
                },
            })
            .collect();
        Snapshot::from_entries(entries)
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("Registry").field("len", &map.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn gauge_set_inc_dec() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(10);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 9);
        assert_eq!(r.snapshot().gauge("depth"), Some(9));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        r.counter("b");
        r.counter("a");
        let names: Vec<_> = r.snapshot().entries().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let r = Registry::new();
        let c = r.counter("n");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
