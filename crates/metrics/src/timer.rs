//! Scoped latency timing.

use std::time::Instant;

use crate::histogram::Histogram;

/// A drop guard that records elapsed wall-clock **microseconds** into
/// a [`Histogram`].
///
/// Created by [`Histogram::start_timer`]; recording happens when the
/// guard is dropped (or immediately via [`Timer::observe`]).
///
/// ```
/// let r = nb_metrics::Registry::new();
/// let h = r.histogram("op_us");
/// {
///     let _t = h.start_timer();
///     // ... timed work ...
/// } // recorded here
/// assert_eq!(h.summary().count, 1);
/// ```
#[derive(Debug)]
pub struct Timer {
    histogram: Histogram,
    start: Instant,
    done: bool,
}

impl Timer {
    pub(crate) fn new(histogram: Histogram) -> Self {
        Timer {
            histogram,
            start: Instant::now(),
            done: false,
        }
    }

    /// Records the elapsed time now and returns it in microseconds.
    /// The drop handler will not record a second observation.
    pub fn observe(mut self) -> u64 {
        let us = self.start.elapsed().as_micros() as u64;
        self.histogram.record(us);
        self.done = true;
        us
    }

    /// Discards the measurement without recording.
    pub fn cancel(mut self) {
        self.done = true;
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if !self.done {
            self.histogram.record(self.start.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn drop_records_once() {
        let r = Registry::new();
        let h = r.histogram("t");
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.summary().count, 1);
    }

    #[test]
    fn observe_records_once_and_returns_elapsed() {
        let r = Registry::new();
        let h = r.histogram("t");
        let t = h.start_timer();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let us = t.observe();
        assert!(us >= 1_000, "expected >=1ms elapsed, got {us}us");
        assert_eq!(h.summary().count, 1);
    }

    #[test]
    fn cancel_discards() {
        let r = Registry::new();
        let h = r.histogram("t");
        h.start_timer().cancel();
        assert_eq!(h.summary().count, 0);
    }
}
