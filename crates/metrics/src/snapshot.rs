//! Point-in-time registry snapshots and their text renderings.

use crate::histogram::HistogramSummary;

/// The captured value of one metric.
///
/// The histogram variant is much larger than the scalar ones
/// (65 log₂ buckets), but snapshots are cold-path value types built
/// once per capture — indirection would cost more in ergonomics than
/// the padding costs in memory.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotValue {
    /// A counter's cumulative value.
    Counter(u64),
    /// A gauge's instantaneous value.
    Gauge(i64),
    /// A histogram's distribution summary.
    Histogram(HistogramSummary),
}

/// One named metric captured by [`Registry::snapshot`][crate::Registry::snapshot].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Fully qualified metric name (including any prefixes).
    pub name: String,
    /// Captured value.
    pub value: SnapshotValue,
}

/// An ordered, owned capture of a registry's metrics.
///
/// Snapshots compose: [`prefixed`][Snapshot::prefixed] namespaces all
/// entries under a component id and [`merge`][Snapshot::merge] combines
/// captures from several components into one report.
///
/// ```
/// use nb_metrics::Registry;
///
/// let broker = Registry::new();
/// broker.counter("publish.accepted").add(3);
/// let engine = Registry::new();
/// engine.counter("pings.sent").add(9);
///
/// let report = broker
///     .snapshot()
///     .prefixed("broker-0")
///     .merge(engine.snapshot().prefixed("engine-0"));
/// assert_eq!(report.counter("broker-0.publish.accepted"), Some(3));
/// assert_eq!(report.counter("engine-0.pings.sent"), Some(9));
///
/// // Line-oriented dump: one `key value` pair per line.
/// let dump = report.to_dump();
/// assert!(dump.contains("broker-0.publish.accepted 3"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Builds a snapshot from explicit entries (sorted by name).
    ///
    /// Public so decoders can reconstruct a snapshot received off the
    /// wire (see `nb-obs`); registries use it internally.
    pub fn from_entries(mut entries: Vec<SnapshotEntry>) -> Self {
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { entries }
    }

    /// All captured entries, sorted by name.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of captured entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns a copy with every metric name prefixed by `prefix` and
    /// a dot separator.
    #[must_use]
    pub fn prefixed(mut self, prefix: &str) -> Self {
        for e in &mut self.entries {
            e.name = format!("{prefix}.{}", e.name);
        }
        self
    }

    /// Combines two snapshots, re-sorting by name. Duplicate names are
    /// kept verbatim (callers namespace with [`prefixed`][Self::prefixed]).
    #[must_use]
    pub fn merge(mut self, other: Snapshot) -> Self {
        self.entries.extend(other.entries);
        self.entries.sort_by(|a, b| a.name.cmp(&b.name));
        self
    }

    /// Looks up a counter's value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| match &e.value {
            SnapshotValue::Counter(v) if e.name == name => Some(*v),
            _ => None,
        })
    }

    /// Looks up a gauge's value by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find_map(|e| match &e.value {
            SnapshotValue::Gauge(v) if e.name == name => Some(*v),
            _ => None,
        })
    }

    /// Looks up a histogram's summary by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.entries.iter().find_map(|e| match &e.value {
            SnapshotValue::Histogram(h) if e.name == name => Some(h),
            _ => None,
        })
    }

    /// Sums every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .filter_map(|e| match &e.value {
                SnapshotValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// The change between this (later) snapshot and an `earlier` one
    /// of the same source.
    ///
    /// Counters subtract (saturating, so a restarted source reports
    /// its full value instead of wrapping); gauges keep this snapshot's
    /// instantaneous reading (a gauge difference is rarely meaningful);
    /// histograms subtract bucket-wise via
    /// [`HistogramSummary::delta`]. Entries absent from `earlier` are
    /// taken verbatim; entries only in `earlier` (or whose kind
    /// changed) are dropped.
    ///
    /// Together with [`accumulate`][Self::accumulate] this round-trips
    /// exactly for counters and histogram buckets/count/sum:
    /// `earlier.accumulate(&later.delta(&earlier)) == later` in those
    /// fields.
    #[must_use]
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let value = match &e.value {
                    SnapshotValue::Counter(v) => {
                        let prev = earlier.counter(&e.name).unwrap_or(0);
                        SnapshotValue::Counter(v.saturating_sub(prev))
                    }
                    SnapshotValue::Gauge(v) => SnapshotValue::Gauge(*v),
                    SnapshotValue::Histogram(h) => {
                        let prev = earlier.histogram(&e.name);
                        SnapshotValue::Histogram(match prev {
                            Some(p) => h.delta(p),
                            None => h.clone(),
                        })
                    }
                };
                SnapshotEntry { name: e.name.clone(), value }
            })
            .collect();
        Snapshot::from_entries(entries)
    }

    /// Re-applies a [`delta`][Self::delta] on top of this snapshot.
    ///
    /// Counters add, gauges take the delta's (newer) reading,
    /// histograms add via [`HistogramSummary::accumulate`]; entries
    /// only present in the delta are inserted.
    #[must_use]
    pub fn accumulate(&self, delta: &Snapshot) -> Snapshot {
        let mut entries: Vec<SnapshotEntry> = self.entries.clone();
        for d in &delta.entries {
            match entries.iter_mut().find(|e| e.name == d.name) {
                Some(e) => {
                    e.value = match (&e.value, &d.value) {
                        (SnapshotValue::Counter(a), SnapshotValue::Counter(b)) => {
                            SnapshotValue::Counter(a.wrapping_add(*b))
                        }
                        (SnapshotValue::Histogram(a), SnapshotValue::Histogram(b)) => {
                            SnapshotValue::Histogram(a.accumulate(b))
                        }
                        // Gauges carry the newest reading; a kind
                        // clash resolves the same way (delta wins).
                        _ => d.value.clone(),
                    };
                }
                None => entries.push(d.clone()),
            }
        }
        Snapshot::from_entries(entries)
    }

    /// Per-second rate of the counter `name` over an observation
    /// `window`, for delta snapshots.
    ///
    /// Returns `None` when the counter is absent or the window is
    /// zero-length.
    pub fn rate(&self, name: &str, window: std::time::Duration) -> Option<f64> {
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        Some(self.counter(name)? as f64 / secs)
    }

    /// Renders an aligned, human-readable table.
    ///
    /// One row per metric: name, kind, then the value — counters and
    /// gauges print the number, histograms print
    /// `n=<count> sum=<sum> min=<min> p50=<..> p90=<..> p99=<..> max=<max>`.
    pub fn to_table(&self) -> String {
        let name_w = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .chain(std::iter::once("metric".len()))
            .max()
            .unwrap_or(6);
        let mut out = String::new();
        out.push_str(&format!("{:<name_w$}  {:<9}  value\n", "metric", "kind"));
        out.push_str(&format!("{:-<name_w$}  {:-<9}  {:-<5}\n", "", "", ""));
        for e in &self.entries {
            let (kind, value) = match &e.value {
                SnapshotValue::Counter(v) => ("counter", v.to_string()),
                SnapshotValue::Gauge(v) => ("gauge", v.to_string()),
                SnapshotValue::Histogram(h) => (
                    "histogram",
                    format!(
                        "n={} sum={} min={} p50={} p90={} p99={} max={}",
                        h.count,
                        h.sum,
                        render_min(h),
                        h.quantile(0.5),
                        h.quantile(0.9),
                        h.quantile(0.99),
                        h.max
                    ),
                ),
            };
            out.push_str(&format!("{:<name_w$}  {kind:<9}  {value}\n", e.name));
        }
        out
    }

    /// Renders a machine-parsable `key value` dump, one pair per line.
    ///
    /// Histograms expand into `<name>.count`, `<name>.sum`,
    /// `<name>.min`, `<name>.p50`, `<name>.p90`, `<name>.p99` and
    /// `<name>.max` lines.
    pub fn to_dump(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match &e.value {
                SnapshotValue::Counter(v) => out.push_str(&format!("{} {v}\n", e.name)),
                SnapshotValue::Gauge(v) => out.push_str(&format!("{} {v}\n", e.name)),
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!("{}.count {}\n", e.name, h.count));
                    out.push_str(&format!("{}.sum {}\n", e.name, h.sum));
                    out.push_str(&format!("{}.min {}\n", e.name, render_min(h)));
                    out.push_str(&format!("{}.p50 {}\n", e.name, h.quantile(0.5)));
                    out.push_str(&format!("{}.p90 {}\n", e.name, h.quantile(0.9)));
                    out.push_str(&format!("{}.p99 {}\n", e.name, h.quantile(0.99)));
                    out.push_str(&format!("{}.max {}\n", e.name, h.max));
                }
            }
        }
        out
    }
}

/// Displayable `min` of a histogram summary: an empty (or
/// sentinel-carrying) summary renders `0`, never `u64::MAX`.
fn render_min(h: &HistogramSummary) -> u64 {
    if h.count == 0 || h.min == u64::MAX {
        0
    } else {
        h.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn prefix_and_merge_namespace_entries() {
        let a = Registry::new();
        a.counter("hits").inc();
        let b = Registry::new();
        b.gauge("depth").set(-2);

        let merged = a
            .snapshot()
            .prefixed("a")
            .merge(b.snapshot().prefixed("b"));
        assert_eq!(merged.counter("a.hits"), Some(1));
        assert_eq!(merged.gauge("b.depth"), Some(-2));
        assert_eq!(merged.len(), 2);
        assert!(!merged.is_empty());
    }

    #[test]
    fn counter_sum_over_prefix() {
        let r = Registry::new();
        r.counter("topic.load.n").add(2);
        r.counter("topic.avail.n").add(3);
        r.counter("other").add(100);
        let s = r.snapshot();
        assert_eq!(s.counter_sum("topic."), 5);
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let r = Registry::new();
        r.counter("a.very.long.metric.name").add(1);
        r.gauge("g").set(5);
        r.histogram("h").record(7);
        let table = r.snapshot().to_table();
        let lines: Vec<&str> = table.lines().collect();
        // header + separator + 3 metrics
        assert_eq!(lines.len(), 5);
        assert!(table.contains("a.very.long.metric.name"));
        assert!(table.contains("histogram"));
        assert!(table.contains("n=1"));
    }

    #[test]
    fn dump_expands_histograms() {
        let r = Registry::new();
        r.histogram("lat").record(10);
        let dump = r.snapshot().to_dump();
        assert!(dump.contains("lat.count 1"));
        assert!(dump.contains("lat.sum 10"));
        assert!(dump.contains("lat.p50 10"));
        assert!(dump.contains("lat.max 10"));
    }

    #[test]
    fn empty_histogram_renders_sane() {
        // Regression: an empty histogram must never render its
        // internal u64::MAX min sentinel in either text form.
        let r = Registry::new();
        r.histogram("idle");
        let snap = r.snapshot();
        let dump = snap.to_dump();
        assert!(dump.contains("idle.count 0"));
        assert!(dump.contains("idle.min 0"));
        assert!(!dump.contains(&u64::MAX.to_string()));
        let table = snap.to_table();
        assert!(table.contains("n=0 sum=0 min=0"));
        assert!(!table.contains(&u64::MAX.to_string()));

        // Even a summary caught mid-first-record (count bumped, min
        // still the sentinel) renders min=0 and does not panic.
        let racy = Snapshot::from_entries(vec![SnapshotEntry {
            name: "racy".into(),
            value: SnapshotValue::Histogram(HistogramSummary {
                count: 1,
                sum: 7,
                min: u64::MAX,
                max: 7,
                ..HistogramSummary::empty()
            }),
        }]);
        assert!(racy.to_dump().contains("racy.min 0"));
        let _ = racy.to_table();
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let r = Registry::new();
        let c = r.counter("sent");
        let g = r.gauge("depth");
        c.add(5);
        g.set(2);
        let earlier = r.snapshot();
        c.add(3);
        g.set(9);
        let d = r.snapshot().delta(&earlier);
        assert_eq!(d.counter("sent"), Some(3));
        assert_eq!(d.gauge("depth"), Some(9));
    }

    #[test]
    fn delta_of_unchanged_histogram_is_empty_and_sane() {
        let r = Registry::new();
        r.histogram("lat").record(100);
        let earlier = r.snapshot();
        let d = r.snapshot().delta(&earlier);
        let h = d.histogram("lat").unwrap();
        assert_eq!(h.count, 0);
        assert_eq!((h.min, h.max, h.sum), (0, 0, 0));
        assert!(d.to_dump().contains("lat.min 0"));
    }

    #[test]
    fn delta_then_accumulate_round_trips() {
        let r = Registry::new();
        let c = r.counter("n");
        let h = r.histogram("lat");
        c.add(4);
        h.record(3);
        h.record(900);
        let earlier = r.snapshot();
        c.add(11);
        h.record(65_000);
        let later = r.snapshot();
        let rebuilt = earlier.accumulate(&later.delta(&earlier));
        assert_eq!(rebuilt.counter("n"), later.counter("n"));
        let (a, b) = (rebuilt.histogram("lat").unwrap(), later.histogram("lat").unwrap());
        assert_eq!(a.count, b.count);
        assert_eq!(a.sum, b.sum);
        assert_eq!(a.buckets, b.buckets);
    }

    #[test]
    fn delta_tolerates_new_and_vanished_entries() {
        let a = Registry::new();
        a.counter("old").add(2);
        let earlier = a.snapshot();
        let b = Registry::new();
        b.counter("new").add(7);
        let d = b.snapshot().delta(&earlier);
        assert_eq!(d.counter("new"), Some(7));
        assert_eq!(d.counter("old"), None);
    }

    #[test]
    fn rate_is_per_second() {
        use std::time::Duration;
        let r = Registry::new();
        r.counter("sent").add(500);
        let d = r.snapshot(); // pretend it is already a delta
        assert_eq!(d.rate("sent", Duration::from_secs(2)), Some(250.0));
        assert_eq!(d.rate("sent", Duration::ZERO), None);
        assert_eq!(d.rate("missing", Duration::from_secs(1)), None);
    }
}
