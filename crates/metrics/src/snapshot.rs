//! Point-in-time registry snapshots and their text renderings.

use crate::histogram::HistogramSummary;

/// The captured value of one metric.
///
/// The histogram variant is much larger than the scalar ones
/// (65 log₂ buckets), but snapshots are cold-path value types built
/// once per capture — indirection would cost more in ergonomics than
/// the padding costs in memory.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotValue {
    /// A counter's cumulative value.
    Counter(u64),
    /// A gauge's instantaneous value.
    Gauge(i64),
    /// A histogram's distribution summary.
    Histogram(HistogramSummary),
}

/// One named metric captured by [`Registry::snapshot`][crate::Registry::snapshot].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Fully qualified metric name (including any prefixes).
    pub name: String,
    /// Captured value.
    pub value: SnapshotValue,
}

/// An ordered, owned capture of a registry's metrics.
///
/// Snapshots compose: [`prefixed`][Snapshot::prefixed] namespaces all
/// entries under a component id and [`merge`][Snapshot::merge] combines
/// captures from several components into one report.
///
/// ```
/// use nb_metrics::Registry;
///
/// let broker = Registry::new();
/// broker.counter("publish.accepted").add(3);
/// let engine = Registry::new();
/// engine.counter("pings.sent").add(9);
///
/// let report = broker
///     .snapshot()
///     .prefixed("broker-0")
///     .merge(engine.snapshot().prefixed("engine-0"));
/// assert_eq!(report.counter("broker-0.publish.accepted"), Some(3));
/// assert_eq!(report.counter("engine-0.pings.sent"), Some(9));
///
/// // Line-oriented dump: one `key value` pair per line.
/// let dump = report.to_dump();
/// assert!(dump.contains("broker-0.publish.accepted 3"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Builds a snapshot from pre-sorted entries.
    pub(crate) fn from_entries(entries: Vec<SnapshotEntry>) -> Self {
        Snapshot { entries }
    }

    /// All captured entries, sorted by name.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of captured entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns a copy with every metric name prefixed by `prefix` and
    /// a dot separator.
    #[must_use]
    pub fn prefixed(mut self, prefix: &str) -> Self {
        for e in &mut self.entries {
            e.name = format!("{prefix}.{}", e.name);
        }
        self
    }

    /// Combines two snapshots, re-sorting by name. Duplicate names are
    /// kept verbatim (callers namespace with [`prefixed`][Self::prefixed]).
    #[must_use]
    pub fn merge(mut self, other: Snapshot) -> Self {
        self.entries.extend(other.entries);
        self.entries.sort_by(|a, b| a.name.cmp(&b.name));
        self
    }

    /// Looks up a counter's value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| match &e.value {
            SnapshotValue::Counter(v) if e.name == name => Some(*v),
            _ => None,
        })
    }

    /// Looks up a gauge's value by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find_map(|e| match &e.value {
            SnapshotValue::Gauge(v) if e.name == name => Some(*v),
            _ => None,
        })
    }

    /// Looks up a histogram's summary by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.entries.iter().find_map(|e| match &e.value {
            SnapshotValue::Histogram(h) if e.name == name => Some(h),
            _ => None,
        })
    }

    /// Sums every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .filter_map(|e| match &e.value {
                SnapshotValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Renders an aligned, human-readable table.
    ///
    /// One row per metric: name, kind, then the value — counters and
    /// gauges print the number, histograms print
    /// `n=<count> sum=<sum> min=<min> p50=<..> p90=<..> p99=<..> max=<max>`.
    pub fn to_table(&self) -> String {
        let name_w = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .chain(std::iter::once("metric".len()))
            .max()
            .unwrap_or(6);
        let mut out = String::new();
        out.push_str(&format!("{:<name_w$}  {:<9}  value\n", "metric", "kind"));
        out.push_str(&format!("{:-<name_w$}  {:-<9}  {:-<5}\n", "", "", ""));
        for e in &self.entries {
            let (kind, value) = match &e.value {
                SnapshotValue::Counter(v) => ("counter", v.to_string()),
                SnapshotValue::Gauge(v) => ("gauge", v.to_string()),
                SnapshotValue::Histogram(h) => (
                    "histogram",
                    format!(
                        "n={} sum={} min={} p50={} p90={} p99={} max={}",
                        h.count,
                        h.sum,
                        h.min,
                        h.quantile(0.5),
                        h.quantile(0.9),
                        h.quantile(0.99),
                        h.max
                    ),
                ),
            };
            out.push_str(&format!("{:<name_w$}  {kind:<9}  {value}\n", e.name));
        }
        out
    }

    /// Renders a machine-parsable `key value` dump, one pair per line.
    ///
    /// Histograms expand into `<name>.count`, `<name>.sum`,
    /// `<name>.min`, `<name>.p50`, `<name>.p90`, `<name>.p99` and
    /// `<name>.max` lines.
    pub fn to_dump(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match &e.value {
                SnapshotValue::Counter(v) => out.push_str(&format!("{} {v}\n", e.name)),
                SnapshotValue::Gauge(v) => out.push_str(&format!("{} {v}\n", e.name)),
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!("{}.count {}\n", e.name, h.count));
                    out.push_str(&format!("{}.sum {}\n", e.name, h.sum));
                    out.push_str(&format!("{}.min {}\n", e.name, h.min));
                    out.push_str(&format!("{}.p50 {}\n", e.name, h.quantile(0.5)));
                    out.push_str(&format!("{}.p90 {}\n", e.name, h.quantile(0.9)));
                    out.push_str(&format!("{}.p99 {}\n", e.name, h.quantile(0.99)));
                    out.push_str(&format!("{}.max {}\n", e.name, h.max));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn prefix_and_merge_namespace_entries() {
        let a = Registry::new();
        a.counter("hits").inc();
        let b = Registry::new();
        b.gauge("depth").set(-2);

        let merged = a
            .snapshot()
            .prefixed("a")
            .merge(b.snapshot().prefixed("b"));
        assert_eq!(merged.counter("a.hits"), Some(1));
        assert_eq!(merged.gauge("b.depth"), Some(-2));
        assert_eq!(merged.len(), 2);
        assert!(!merged.is_empty());
    }

    #[test]
    fn counter_sum_over_prefix() {
        let r = Registry::new();
        r.counter("topic.load.n").add(2);
        r.counter("topic.avail.n").add(3);
        r.counter("other").add(100);
        let s = r.snapshot();
        assert_eq!(s.counter_sum("topic."), 5);
    }

    #[test]
    fn table_is_aligned_and_complete() {
        let r = Registry::new();
        r.counter("a.very.long.metric.name").add(1);
        r.gauge("g").set(5);
        r.histogram("h").record(7);
        let table = r.snapshot().to_table();
        let lines: Vec<&str> = table.lines().collect();
        // header + separator + 3 metrics
        assert_eq!(lines.len(), 5);
        assert!(table.contains("a.very.long.metric.name"));
        assert!(table.contains("histogram"));
        assert!(table.contains("n=1"));
    }

    #[test]
    fn dump_expands_histograms() {
        let r = Registry::new();
        r.histogram("lat").record(10);
        let dump = r.snapshot().to_dump();
        assert!(dump.contains("lat.count 1"));
        assert!(dump.contains("lat.sum 10"));
        assert!(dump.contains("lat.p50 10"));
        assert!(dump.contains("lat.max 10"));
    }
}
