//! # nb-metrics — workspace-wide observability primitives
//!
//! Every runtime subsystem of the entity-tracing stack (brokers,
//! tracing engines, trackers, TDNs, transports, crypto hot paths)
//! reports into the types defined here, so that benchmarks and
//! operators can account for every message and cryptographic
//! operation behind a measurement. See `docs/OBSERVABILITY.md` for
//! the catalogue of metric names.
//!
//! The crate is dependency-free and entirely lock-free on the hot
//! path:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64`,
//! * [`Gauge`] — a signed instantaneous value (`AtomicI64`),
//! * [`Histogram`] — log2-bucketed value distribution with
//!   count/sum/min/max and quantile estimates,
//! * [`Registry`] — a named collection of the above, snapshotted into
//!   a [`Snapshot`] that renders as an aligned table or a
//!   line-oriented `key value` dump,
//! * [`Timer`] — a drop guard recording elapsed microseconds into a
//!   histogram,
//! * [`global()`] — the process-wide registry used by subsystems that
//!   have no natural owner (crypto primitives, transport aggregates).
//!
//! Handles are cheap to clone ([`Arc`][std::sync::Arc] inside) and
//! updating them never takes a lock; only registration
//! (`registry.counter(...)`) and snapshotting touch a mutex.
//!
//! ```
//! use nb_metrics::Registry;
//!
//! let registry = Registry::new();
//! let published = registry.counter("broker.publish.accepted");
//! let depth = registry.gauge("broker.queue.depth");
//! let latency = registry.histogram("broker.route_us");
//!
//! published.inc();
//! depth.set(3);
//! latency.record(120);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("broker.publish.accepted"), Some(1));
//! assert_eq!(snap.gauge("broker.queue.depth"), Some(3));
//! assert!(snap.to_table().contains("broker.route_us"));
//! ```

mod histogram;
mod registry;
mod snapshot;
mod timer;

pub use histogram::{Histogram, HistogramSummary};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::{Snapshot, SnapshotEntry, SnapshotValue};
pub use timer::Timer;

use std::sync::LazyLock;

static GLOBAL: LazyLock<Registry> = LazyLock::new(Registry::new);

/// The process-wide registry.
///
/// Used by subsystems without a natural per-instance owner: the
/// crypto primitives (`crypto.*`), transport aggregates
/// (`transport.*`) and authorization-token accounting (`token.*`).
/// Counters here are cumulative over the life of the process, so
/// tests should assert on deltas rather than absolute values.
///
/// ```
/// let ops = nb_metrics::global().counter("doc.example.ops");
/// let before = ops.get();
/// ops.inc();
/// assert_eq!(ops.get(), before + 1);
/// ```
pub fn global() -> &'static Registry {
    &GLOBAL
}
