//! Log2-bucketed value histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::timer::Timer;

/// Number of buckets: bucket 0 holds the value `0`, bucket `i`
/// (1..=64) holds values in `[2^(i-1), 2^i - 1]`.
const BUCKETS: usize = 65;

struct Inner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A lock-free value distribution with power-of-two buckets.
///
/// Designed for latency measurements (microseconds or milliseconds)
/// where an exact distribution is unnecessary but order-of-magnitude
/// quantiles matter. Recording is a handful of relaxed atomic ops.
///
/// ```
/// let r = nb_metrics::Registry::new();
/// let h = r.histogram("latency_us");
/// for v in [100, 200, 400, 800] {
///     h.record(v);
/// }
/// let s = h.summary();
/// assert_eq!(s.count, 4);
/// assert_eq!(s.sum, 1500);
/// assert_eq!(s.min, 100);
/// assert_eq!(s.max, 800);
/// assert!(s.quantile(0.5) >= 100);
/// ```
#[derive(Clone)]
pub struct Histogram(Arc<Inner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a detached histogram (not attached to any registry).
    pub fn new() -> Self {
        Histogram(Arc::new(Inner {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        let inner = &self.0;
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Starts a [`Timer`] that records elapsed **microseconds** into
    /// this histogram when dropped.
    pub fn start_timer(&self) -> Timer {
        Timer::new(self.clone())
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Captures the current distribution.
    pub fn summary(&self) -> HistogramSummary {
        let inner = &self.0;
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(inner.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        let count = inner.count.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                inner.min.load(Ordering::Relaxed)
            },
            max: inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).finish()
    }
}

/// An owned, point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts; bucket 0 holds the value `0`,
    /// bucket `i` holds values in `[2^(i-1), 2^i - 1]`.
    pub buckets: [u64; BUCKETS],
}

impl HistogramSummary {
    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the buckets.
    ///
    /// Returns the midpoint of the bucket in which the quantile
    /// falls, clamped to the observed `[min, max]` range; exact for
    /// the extremes, order-of-magnitude accurate in between.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = if i == 0 {
                    0
                } else {
                    let lo = 1u64 << (i - 1);
                    let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                    lo + (hi - lo) / 2
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        let h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(4); // bucket 3
        h.record(u64::MAX); // bucket 64
        let s = h.summary();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        let p50 = s.quantile(0.5);
        let p90 = s.quantile(0.9);
        let p99 = s.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p50 >= s.min && p99 <= s.max);
        assert_eq!(s.quantile(0.0), s.min);
        assert_eq!(s.quantile(1.0), s.max);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let h = Histogram::new();
        h.record(42);
        let s = h.summary();
        assert_eq!(s.quantile(0.5), 42);
        assert_eq!(s.quantile(0.99), 42);
        assert_eq!(s.mean(), 42.0);
    }
}
