//! Log2-bucketed value histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::timer::Timer;

/// Number of buckets: bucket 0 holds the value `0`, bucket `i`
/// (1..=64) holds values in `[2^(i-1), 2^i - 1]`.
const BUCKETS: usize = 65;

struct Inner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A lock-free value distribution with power-of-two buckets.
///
/// Designed for latency measurements (microseconds or milliseconds)
/// where an exact distribution is unnecessary but order-of-magnitude
/// quantiles matter. Recording is a handful of relaxed atomic ops.
///
/// ```
/// let r = nb_metrics::Registry::new();
/// let h = r.histogram("latency_us");
/// for v in [100, 200, 400, 800] {
///     h.record(v);
/// }
/// let s = h.summary();
/// assert_eq!(s.count, 4);
/// assert_eq!(s.sum, 1500);
/// assert_eq!(s.min, 100);
/// assert_eq!(s.max, 800);
/// assert!(s.quantile(0.5) >= 100);
/// ```
#[derive(Clone)]
pub struct Histogram(Arc<Inner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a detached histogram (not attached to any registry).
    pub fn new() -> Self {
        Histogram(Arc::new(Inner {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        let inner = &self.0;
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Starts a [`Timer`] that records elapsed **microseconds** into
    /// this histogram when dropped.
    pub fn start_timer(&self) -> Timer {
        Timer::new(self.clone())
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Captures the current distribution.
    pub fn summary(&self) -> HistogramSummary {
        let inner = &self.0;
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(inner.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        let count = inner.count.load(Ordering::Relaxed);
        let min = inner.min.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            // `record` bumps `count` before `fetch_min`, so a snapshot
            // racing the very first observation can see count > 0 with
            // `min` still at its u64::MAX sentinel; never leak it.
            min: if count == 0 || min == u64::MAX { 0 } else { min },
            max: inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).finish()
    }
}

/// An owned, point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts; bucket 0 holds the value `0`,
    /// bucket `i` holds values in `[2^(i-1), 2^i - 1]`.
    pub buckets: [u64; BUCKETS],
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl HistogramSummary {
    /// An all-zero summary (no observations).
    pub fn empty() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// The change between this (later) summary and an `earlier` one of
    /// the same histogram.
    ///
    /// `count`, `sum` and every bucket subtract exactly (saturating, so
    /// a restarted source degrades to "everything is new" instead of
    /// wrapping). `min`/`max` of the in-between window are not
    /// recoverable from two cumulative summaries, so they are estimated
    /// from the delta buckets' bounds — exact to bucket resolution —
    /// and zeroed when the delta is empty. When `earlier` is empty the
    /// delta is this summary verbatim (exact `min`/`max`).
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSummary) -> HistogramSummary {
        if earlier.count == 0 {
            return self.clone();
        }
        let mut buckets = [0u64; BUCKETS];
        let mut lo_bucket = None;
        let mut hi_bucket = None;
        for (i, slot) in buckets.iter_mut().enumerate() {
            let d = self.buckets[i].saturating_sub(earlier.buckets[i]);
            *slot = d;
            if d > 0 {
                lo_bucket.get_or_insert(i);
                hi_bucket = Some(i);
            }
        }
        let count = self.count.saturating_sub(earlier.count);
        if count == 0 {
            return HistogramSummary::empty();
        }
        let max = hi_bucket.map_or(0, |i| bucket_hi(i).min(self.max));
        let min = lo_bucket.map_or(0, |i| bucket_lo(i).max(self.min)).min(max);
        HistogramSummary {
            count,
            sum: self.sum.wrapping_sub(earlier.sum),
            min,
            max,
            buckets,
        }
    }

    /// Re-accumulates a [`delta`][Self::delta] on top of this summary.
    ///
    /// Inverse of `delta` for `count`, `sum` and the buckets:
    /// `earlier.accumulate(&later.delta(&earlier))` reproduces `later`
    /// exactly in those fields. `min`/`max` combine conservatively
    /// (empty sides are ignored).
    #[must_use]
    pub fn accumulate(&self, delta: &HistogramSummary) -> HistogramSummary {
        let mut buckets = [0u64; BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].wrapping_add(delta.buckets[i]);
        }
        let min = match (self.count, delta.count) {
            (0, _) => delta.min,
            (_, 0) => self.min,
            _ => self.min.min(delta.min),
        };
        HistogramSummary {
            count: self.count.wrapping_add(delta.count),
            sum: self.sum.wrapping_add(delta.sum),
            min,
            max: self.max.max(delta.max),
            buckets,
        }
    }

    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the buckets.
    ///
    /// Returns the midpoint of the bucket in which the quantile
    /// falls, clamped to the observed `[min, max]` range; exact for
    /// the extremes, order-of-magnitude accurate in between.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = if i == 0 {
                    0
                } else {
                    let lo = 1u64 << (i - 1);
                    let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                    lo + (hi - lo) / 2
                };
                // Defensive .min/.max instead of clamp(): a summary
                // assembled from racy or delta'd parts may carry
                // min > max, and clamp would panic on it.
                return mid.max(self.min).min(self.max.max(self.min));
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        let h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(4); // bucket 3
        h.record(u64::MAX); // bucket 64
        let s = h.summary();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        let p50 = s.quantile(0.5);
        let p90 = s.quantile(0.9);
        let p99 = s.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p50 >= s.min && p99 <= s.max);
        assert_eq!(s.quantile(0.0), s.min);
        assert_eq!(s.quantile(1.0), s.max);
    }

    #[test]
    fn delta_against_empty_is_identity() {
        let h = Histogram::new();
        h.record(5);
        h.record(300);
        let s = h.summary();
        assert_eq!(s.delta(&HistogramSummary::empty()), s);
    }

    #[test]
    fn delta_and_accumulate_round_trip_buckets() {
        let h = Histogram::new();
        h.record(1);
        h.record(1000);
        let earlier = h.summary();
        h.record(7);
        h.record(7);
        h.record(u64::MAX);
        let later = h.summary();
        let d = later.delta(&earlier);
        assert_eq!(d.count, 3);
        assert_eq!(d.sum, later.sum.wrapping_sub(earlier.sum));
        // min/max are bucket-resolution estimates bracketing the new
        // observations.
        assert!(d.min <= 7 && d.min >= 4, "min {}", d.min);
        assert_eq!(d.max, u64::MAX);
        let rebuilt = earlier.accumulate(&d);
        assert_eq!(rebuilt.count, later.count);
        assert_eq!(rebuilt.sum, later.sum);
        assert_eq!(rebuilt.buckets, later.buckets);
        assert_eq!(rebuilt.min, later.min);
        assert_eq!(rebuilt.max, later.max);
    }

    #[test]
    fn delta_of_identical_summaries_is_empty() {
        let h = Histogram::new();
        h.record(42);
        let s = h.summary();
        let d = s.delta(&s.clone());
        assert_eq!(d, HistogramSummary::empty());
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let h = Histogram::new();
        h.record(42);
        let s = h.summary();
        assert_eq!(s.quantile(0.5), 42);
        assert_eq!(s.quantile(0.99), 42);
        assert_eq!(s.mean(), 42.0);
    }
}
