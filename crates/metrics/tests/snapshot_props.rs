//! Property tests for the snapshot algebra: `merge` is associative and
//! commutative (as a multiset of entries), and `delta` followed by
//! `accumulate` round-trips counters and histogram buckets exactly —
//! the invariant the cluster telemetry plane (`nb-obs`) leans on to
//! reconstruct per-node totals from periodic frames.

use nb_metrics::{Registry, Snapshot, SnapshotValue};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-c]{1,2}\\.[a-d]{1,3}"
}

#[derive(Clone, Debug)]
enum Op {
    Count(String, u64),
    Gauge(String, i64),
    Record(String, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_name(), 0u64..10_000).prop_map(|(n, v)| Op::Count(format!("c.{n}"), v)),
        (arb_name(), 0u64..1000)
            .prop_map(|(n, v)| Op::Gauge(format!("g.{n}"), v as i64 - 500)),
        (arb_name(), 0u64..1_000_000).prop_map(|(n, v)| Op::Record(format!("h.{n}"), v)),
    ]
}

fn apply(r: &Registry, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Count(n, v) => r.counter(n).add(*v),
            Op::Gauge(n, v) => r.gauge(n).set(*v),
            Op::Record(n, v) => r.histogram(n).record(*v),
        }
    }
}

fn registry_from(ops: &[Op]) -> Registry {
    let r = Registry::new();
    apply(&r, ops);
    r
}

/// Sorted key/value view that ignores entry multiplicity order, for
/// comparing merges that interleave duplicates differently.
fn canonical(s: &Snapshot) -> Vec<String> {
    let mut lines: Vec<String> = s
        .entries()
        .iter()
        .map(|e| format!("{} {:?}", e.name, e.value))
        .collect();
    lines.sort();
    lines
}

proptest! {
    #[test]
    fn merge_is_commutative(a in proptest::collection::vec(arb_op(), 0..20),
                            b in proptest::collection::vec(arb_op(), 0..20)) {
        let (ra, rb) = (registry_from(&a), registry_from(&b));
        let ab = ra.snapshot().prefixed("a").merge(rb.snapshot().prefixed("b"));
        let ba = rb.snapshot().prefixed("b").merge(ra.snapshot().prefixed("a"));
        prop_assert_eq!(canonical(&ab), canonical(&ba));
    }

    #[test]
    fn merge_is_associative(a in proptest::collection::vec(arb_op(), 0..14),
                            b in proptest::collection::vec(arb_op(), 0..14),
                            c in proptest::collection::vec(arb_op(), 0..14)) {
        let (ra, rb, rc) = (registry_from(&a), registry_from(&b), registry_from(&c));
        let left = ra
            .snapshot()
            .merge(rb.snapshot())
            .merge(rc.snapshot());
        let right = ra
            .snapshot()
            .merge(rb.snapshot().merge(rc.snapshot()));
        prop_assert_eq!(canonical(&left), canonical(&right));
    }

    #[test]
    fn delta_accumulate_round_trips_exactly(
        first in proptest::collection::vec(arb_op(), 0..25),
        second in proptest::collection::vec(arb_op(), 0..25),
    ) {
        let r = Registry::new();
        apply(&r, &first);
        let earlier = r.snapshot();
        apply(&r, &second);
        let later = r.snapshot();

        let delta = later.delta(&earlier);
        let rebuilt = earlier.accumulate(&delta);

        prop_assert_eq!(rebuilt.len(), later.len());
        for (got, want) in rebuilt.entries().iter().zip(later.entries()) {
            prop_assert_eq!(&got.name, &want.name);
            match (&got.value, &want.value) {
                (SnapshotValue::Counter(a), SnapshotValue::Counter(b)) => {
                    prop_assert_eq!(a, b);
                }
                (SnapshotValue::Gauge(a), SnapshotValue::Gauge(b)) => {
                    prop_assert_eq!(a, b);
                }
                (SnapshotValue::Histogram(a), SnapshotValue::Histogram(b)) => {
                    // Exact round-trip: count, sum, every bucket.
                    prop_assert_eq!(a.count, b.count);
                    prop_assert_eq!(a.sum, b.sum);
                    prop_assert_eq!(&a.buckets, &b.buckets);
                    // min/max: conservative bounds, never a sentinel.
                    prop_assert!(a.min <= b.min || b.count == 0);
                    prop_assert!(a.max >= b.max || a.count == 0);
                    prop_assert!(a.min < u64::MAX);
                }
                (got, want) => prop_assert!(false, "kind mismatch: {got:?} vs {want:?}"),
            }
        }
    }

    #[test]
    fn delta_counters_never_underflow(
        first in proptest::collection::vec(arb_op(), 0..25),
        second in proptest::collection::vec(arb_op(), 0..25),
    ) {
        // Deltas taken across a source restart (the "earlier" side is
        // larger) saturate to zero rather than wrapping.
        let big = registry_from(&first);
        let fresh = registry_from(&second);
        let d = fresh.snapshot().delta(&big.snapshot());
        for e in d.entries() {
            if let SnapshotValue::Counter(v) = &e.value {
                prop_assert!(*v <= fresh.snapshot().counter(&e.name).unwrap_or(u64::MAX));
            }
        }
    }
}
