//! Subscription adverts lost on a lossy link must eventually be
//! repaired by the anti-entropy re-advertisement path.

use nb_broker::network::BrokerNetwork;
use nb_broker::BrokerConfig;
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::{Payload, Topic};
use std::time::Duration;

#[test]
fn anti_entropy_repairs_lost_adverts() {
    let link = LinkConfig::lossy(0.5).with_latency(Duration::from_micros(100));
    let net = BrokerNetwork::chain(2, link, system_clock(), BrokerConfig::default());
    assert!(net.wait_for_mesh(Duration::from_secs(10)));
    let publisher = net.attach_client(0, "pub").unwrap();
    let subscriber = net.attach_client(1, "sub").unwrap();
    subscriber.subscribe(Topic::parse("/Lossy/Topic").unwrap(), Duration::from_secs(10)).unwrap();
    // Publish once per 100ms; with the advert repaired, one of these
    // must arrive within 20s.
    for i in 0..200u32 {
        publisher.publish(Topic::parse("/Lossy/Topic").unwrap(), Payload::Blob { data: i.to_be_bytes().to_vec() }).unwrap();
        if subscriber.next_message(Duration::from_millis(100)).is_ok() {
            eprintln!("delivered after {} publishes", i + 1);
            return;
        }
    }
    panic!("no delivery in 200 attempts — adverts never repaired");
}
