//! Red-team tests for the runtime-verification monitors: each
//! delivery property is attacked through the sim transport's
//! adversarial hooks (frame tampering, replay) and must (a) fire on
//! the injected violation, (b) report it as a signed message on the
//! audit topic, and (c) stay silent on the clean traffic that
//! precedes the attack.

use nb_broker::network::BrokerNetwork;
use nb_broker::{Broker, BrokerClient, BrokerConfig};
use nb_crypto::cert::{CertificateAuthority, Credential, Validity};
use nb_crypto::rsa::RsaKeyPair;
use nb_crypto::Uuid;
use nb_monitor::{audit_topic, parse_properties, MonitorSet, Violation};
use nb_telemetry::TraceContext;
use nb_transport::clock::{system_clock, SharedClock};
use nb_transport::sim::LinkConfig;
use nb_wire::codec::{Decode, Encode};
use nb_wire::token::{AuthorizationToken, Rights};
use nb_wire::trace::{topics, TraceCategory, TraceEvent, TraceKind};
use nb_wire::{Message, Payload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(5);

/// Certificates are expensive to mint; share a CA across tests.
fn ca() -> &'static Mutex<CertificateAuthority> {
    static CA: OnceLock<Mutex<CertificateAuthority>> = OnceLock::new();
    CA.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x40b5);
        Mutex::new(
            CertificateAuthority::new(
                "monitor-test-ca",
                512,
                Validity::starting_now(0, u64::MAX / 2),
                &mut rng,
            )
            .unwrap(),
        )
    })
}

fn credential(subject: &str) -> Credential {
    let mut rng = StdRng::seed_from_u64(subject.len() as u64 ^ 0x5eed);
    ca().lock()
        .unwrap()
        .issue(subject, Validity::starting_now(0, u64::MAX / 2), &mut rng)
        .unwrap()
}

/// A two-broker chain of *misbehaving* brokers: token enforcement is
/// off, so forged or stripped frames flow freely through the cached
/// fast path — exactly the deployment the monitor exists to audit.
fn lax_chain() -> BrokerNetwork {
    let cfg = BrokerConfig {
        require_tokens: false,
        ..BrokerConfig::default()
    };
    let net = BrokerNetwork::chain(2, LinkConfig::instant(), system_clock(), cfg);
    assert!(net.wait_for_mesh(TIMEOUT));
    net
}

/// Builds a monitor from DSL text, attaches it to `broker`, and wires
/// its audit reports through that broker. Returns the monitor and an
/// attached client already subscribed to the audit topic.
fn attach_monitor(net: &BrokerNetwork, idx: usize, dsl: &str) -> (MonitorSet, BrokerClient) {
    let specs = parse_properties(dsl).expect("test DSL parses");
    let monitor = MonitorSet::new(specs, credential("Monitor"), 100);
    let broker: &Broker = net.broker(idx);
    broker.attach_monitor(monitor.clone());
    let audit_broker = broker.clone();
    monitor.set_audit_sink(Arc::new(move |msg| audit_broker.publish_internal(msg)));

    let auditor = net.attach_client(idx, "auditor").unwrap();
    auditor.subscribe(audit_topic(), TIMEOUT).unwrap();
    (monitor, auditor)
}

/// Receives the next audit report, checks its signature against the
/// monitor's certificate, and decodes the violation payload.
fn next_audit_report(auditor: &BrokerClient, monitor: &MonitorSet) -> Violation {
    let msg = auditor.next_message(TIMEOUT).expect("audit report arrives");
    assert_eq!(msg.topic, audit_topic());
    msg.verify_signature(&monitor.certificate().public_key)
        .expect("audit report carries a valid monitor signature");
    let Payload::Blob { data } = &msg.payload else {
        panic!("audit payload should be a violation blob");
    };
    Violation::from_bytes(data).expect("violation decodes")
}

fn trace_message(broker: &Broker, trace_topic: Uuid, clock: &SharedClock) -> Message {
    let now = clock.now_ms();
    let event = TraceEvent {
        entity_id: "entity-1".to_string(),
        trace_topic,
        seq: 1,
        timestamp_ms: now,
        kind: TraceKind::AllsWell,
    };
    Message::new(
        broker.next_message_id(),
        topics::publication(&trace_topic, TraceCategory::AllUpdates),
        broker.id().to_string(),
        now,
        Payload::Trace { event },
    )
}

fn valid_token(owner: &Credential, trace_topic: Uuid, now: u64, delegate: &RsaKeyPair) -> AuthorizationToken {
    AuthorizationToken::issue(
        owner,
        trace_topic,
        delegate.public.clone(),
        Rights::Publish,
        now.saturating_sub(1_000),
        now + 60_000,
    )
    .unwrap()
}

/// Property 1 (no delivery without valid authorization): an in-flight
/// adversary swaps a genuine owner-signed token for one signed by an
/// attacker key. The lax brokers forward it anyway; the monitor, which
/// knows the real owner key, catches the forgery.
#[test]
fn forged_token_in_flight_is_caught_on_the_audit_topic() {
    let net = lax_chain();
    let clock: SharedClock = system_clock();
    let mut rng = StdRng::seed_from_u64(41);
    let owner = credential("entity:owner-a");
    let attacker = credential("entity:attacker");
    let delegate = RsaKeyPair::generate(512, &mut rng).unwrap();
    let trace_topic = Uuid::new_v4(&mut rng);

    let (monitor, auditor) = attach_monitor(
        &net,
        1,
        "auth: require-token on /Constrained/Traces/*/Publish-Only/#\n",
    );
    monitor.register_owner(trace_topic, owner.certificate.public_key.clone());

    let subscriber = net.attach_client(1, "tracker").unwrap();
    let pub_topic = topics::publication(&trace_topic, TraceCategory::AllUpdates);
    subscriber.subscribe(pub_topic.clone(), TIMEOUT).unwrap();
    assert!(net.broker(0).wait_for_remote_subscription(&pub_topic, TIMEOUT));

    // Clean phase: a genuine owner-signed token crosses both brokers.
    let now = clock.now_ms();
    let msg = trace_message(net.broker(0), trace_topic, &clock)
        .with_token(valid_token(&owner, trace_topic, now, &delegate));
    net.broker(0).publish_internal(msg);
    subscriber.next_message(TIMEOUT).expect("clean delivery");
    assert_eq!(monitor.violation_count(), 0, "clean token must not fire");

    // Attack phase: the link adversary re-signs the delegation with
    // the attacker's key, leaving everything else intact.
    let attacker_for_tamper = attacker.clone();
    let delegate_pub = delegate.public.clone();
    net.tamper_link(0, move |bytes| {
        let Ok(mut msg) = Message::from_bytes(&bytes) else {
            return bytes;
        };
        let Some(token) = msg.token.take() else {
            return bytes;
        };
        let forged = AuthorizationToken::issue(
            &attacker_for_tamper,
            token.trace_topic,
            delegate_pub.clone(),
            Rights::Publish,
            token.valid_from_ms,
            token.valid_until_ms,
        )
        .unwrap();
        msg.with_token(forged).to_bytes()
    });

    let now = clock.now_ms();
    let msg = trace_message(net.broker(0), trace_topic, &clock)
        .with_token(valid_token(&owner, trace_topic, now, &delegate));
    net.broker(0).publish_internal(msg);

    // The misbehaving broker still delivers the forged message…
    subscriber.next_message(TIMEOUT).expect("lax broker delivers");
    // …but the monitor flags it and reports on the audit topic.
    let report = next_audit_report(&auditor, &monitor);
    assert_eq!(report.property, "auth");
    assert_eq!(report.node, "broker-1");
    assert!(
        report.detail.contains("signature"),
        "unexpected detail: {}",
        report.detail
    );
    let snapshot = monitor.metrics_snapshot();
    assert_eq!(snapshot.counter("monitor.violations.auth"), Some(1));
    assert!(snapshot.counter("monitor.events").unwrap_or(0) > 0);
}

/// Property 2 (hop/TTL bounds): one adversary strips the trace/TTL
/// section entirely, another inflates the hop counter past the
/// property bound (but below the broker's own routing TTL, so the
/// frame still flows). Both are caught.
#[test]
fn stripped_and_inflated_ttl_are_caught() {
    let net = lax_chain();
    let clock: SharedClock = system_clock();
    let mut rng = StdRng::seed_from_u64(42);
    let trace_topic = Uuid::new_v4(&mut rng);

    let (monitor, auditor) = attach_monitor(
        &net,
        1,
        "ttl-strip: require-ttl 8 on /Constrained/Traces/#\n\
         ttl: max-hops 2 on /Constrained/Traces/#\n",
    );

    let subscriber = net.attach_client(1, "tracker").unwrap();
    let pub_topic = topics::publication(&trace_topic, TraceCategory::AllUpdates);
    subscriber.subscribe(pub_topic.clone(), TIMEOUT).unwrap();
    assert!(net.broker(0).wait_for_remote_subscription(&pub_topic, TIMEOUT));

    // Clean phase: a traced frame arrives at broker-1 with hop 1.
    let msg = trace_message(net.broker(0), trace_topic, &clock)
        .with_trace(TraceContext::root(0, false));
    net.broker(0).publish_internal(msg);
    subscriber.next_message(TIMEOUT).expect("clean delivery");
    assert_eq!(monitor.violation_count(), 0, "in-bound TTL must not fire");

    // Attack 1: strip the TTL section in flight.
    net.tamper_link(0, |bytes| {
        let Ok(mut msg) = Message::from_bytes(&bytes) else {
            return bytes;
        };
        if msg.trace.take().is_none() {
            return bytes;
        }
        msg.to_bytes()
    });
    let msg = trace_message(net.broker(0), trace_topic, &clock)
        .with_trace(TraceContext::root(0, false));
    net.broker(0).publish_internal(msg);
    subscriber.next_message(TIMEOUT).expect("stripped frame still delivered");
    let report = next_audit_report(&auditor, &monitor);
    assert_eq!(report.property, "ttl-strip");
    assert!(report.detail.contains("missing"), "detail: {}", report.detail);

    // Attack 2: inflate the hop counter past the property bound (2)
    // but under the broker TTL (16), so routing does not drop it.
    net.tamper_link(0, |bytes| {
        let Ok(mut msg) = Message::from_bytes(&bytes) else {
            return bytes;
        };
        match msg.trace.as_mut() {
            Some(ctx) => ctx.hop_count = 5,
            None => return bytes,
        }
        msg.to_bytes()
    });
    let msg = trace_message(net.broker(0), trace_topic, &clock)
        .with_trace(TraceContext::root(0, false));
    net.broker(0).publish_internal(msg);
    subscriber.next_message(TIMEOUT).expect("inflated frame still delivered");
    let report = next_audit_report(&auditor, &monitor);
    assert_eq!(report.property, "ttl");
    assert!(report.detail.contains("exceeds"), "detail: {}", report.detail);
    assert_eq!(monitor.violation_count(), 2);
}

/// Property 3 (exactly-once): a replaying link delivers every frame
/// twice after "repair". The duplicate routing decision at broker-1
/// trips the dedup window.
#[test]
fn replayed_frames_are_caught_exactly_once_violation() {
    let net = lax_chain();
    let clock: SharedClock = system_clock();
    let mut rng = StdRng::seed_from_u64(43);
    let trace_topic = Uuid::new_v4(&mut rng);

    let (monitor, auditor) = attach_monitor(
        &net,
        1,
        "replay: exactly-once on /Constrained/Traces/#\n",
    );

    let subscriber = net.attach_client(1, "tracker").unwrap();
    let pub_topic = topics::publication(&trace_topic, TraceCategory::AllUpdates);
    subscriber.subscribe(pub_topic.clone(), TIMEOUT).unwrap();
    assert!(net.broker(0).wait_for_remote_subscription(&pub_topic, TIMEOUT));

    // Clean phase.
    net.broker(0)
        .publish_internal(trace_message(net.broker(0), trace_topic, &clock));
    subscriber.next_message(TIMEOUT).expect("clean delivery");
    assert_eq!(monitor.violation_count(), 0, "single delivery must not fire");

    // Attack phase: the link now replays every frame once.
    assert!(net.replay_link(0, 1));
    net.broker(0)
        .publish_internal(trace_message(net.broker(0), trace_topic, &clock));

    // The broker faithfully delivers both copies…
    subscriber.next_message(TIMEOUT).expect("first copy");
    subscriber.next_message(TIMEOUT).expect("replayed copy");
    // …and the monitor flags the duplicate.
    let report = next_audit_report(&auditor, &monitor);
    assert_eq!(report.property, "replay");
    assert!(report.detail.contains("duplicate"), "detail: {}", report.detail);
    assert_eq!(monitor.violation_count(), 1);
    assert_eq!(
        monitor
            .metrics_snapshot()
            .counter("monitor.audit.published"),
        Some(1)
    );
}
