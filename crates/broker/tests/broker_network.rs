//! End-to-end broker-network tests: routing, subscription
//! propagation, constrained-topic enforcement, token-gated trace
//! forwarding, and DoS containment.

use nb_broker::network::BrokerNetwork;
use nb_broker::{Broker, BrokerClient, BrokerConfig, BrokerError};
use nb_crypto::cert::{CertificateAuthority, Credential, Validity};
use nb_crypto::rsa::RsaKeyPair;
use nb_crypto::Uuid;
use nb_transport::clock::{system_clock, SharedClock};
use nb_transport::sim::{LinkConfig, SimNetwork};
use nb_wire::token::{AuthorizationToken, Rights};
use nb_wire::trace::{topics, TraceCategory, TraceEvent, TraceKind};
use nb_wire::{Message, Payload, Topic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(5);

fn t(s: &str) -> Topic {
    Topic::parse(s).unwrap()
}

fn chain(n: usize) -> BrokerNetwork {
    let net = BrokerNetwork::chain(
        n,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    );
    assert!(net.wait_for_mesh(TIMEOUT));
    net
}

/// Certificates are expensive to mint; share a CA across tests.
fn ca() -> &'static Mutex<CertificateAuthority> {
    static CA: OnceLock<Mutex<CertificateAuthority>> = OnceLock::new();
    CA.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xb20c);
        Mutex::new(
            CertificateAuthority::new(
                "test-ca",
                512,
                Validity::starting_now(0, u64::MAX / 2),
                &mut rng,
            )
            .unwrap(),
        )
    })
}

fn credential(subject: &str) -> Credential {
    let mut rng = StdRng::seed_from_u64(subject.len() as u64);
    ca().lock()
        .unwrap()
        .issue(subject, Validity::starting_now(0, u64::MAX / 2), &mut rng)
        .unwrap()
}

#[test]
fn single_broker_pub_sub() {
    let net = chain(1);
    let publisher = net.attach_client(0, "pub-1").unwrap();
    let subscriber = net.attach_client(0, "sub-1").unwrap();
    subscriber.subscribe(t("/News/Sports"), TIMEOUT).unwrap();

    publisher
        .publish(
            t("/News/Sports"),
            Payload::Blob {
                data: b"goal!".to_vec(),
            },
        )
        .unwrap();
    let msg = subscriber.next_message(TIMEOUT).unwrap();
    assert_eq!(msg.topic, t("/News/Sports"));
    assert!(matches!(msg.payload, Payload::Blob { ref data } if data == b"goal!"));
}

#[test]
fn publisher_does_not_receive_own_message() {
    let net = chain(1);
    let client = net.attach_client(0, "self-sub").unwrap();
    client.subscribe(t("/Echo"), TIMEOUT).unwrap();
    client
        .publish(
            t("/Echo"),
            Payload::Blob {
                data: b"me".to_vec(),
            },
        )
        .unwrap();
    assert!(client.next_message(Duration::from_millis(200)).is_err());
}

#[test]
fn routing_respects_topic_selectivity() {
    let net = chain(1);
    let publisher = net.attach_client(0, "pub").unwrap();
    let sub_a = net.attach_client(0, "sub-a").unwrap();
    let sub_b = net.attach_client(0, "sub-b").unwrap();
    sub_a.subscribe(t("/T/A"), TIMEOUT).unwrap();
    sub_b.subscribe(t("/T/B"), TIMEOUT).unwrap();

    publisher
        .publish(t("/T/A"), Payload::Blob { data: vec![1] })
        .unwrap();
    assert!(sub_a.next_message(TIMEOUT).is_ok());
    assert!(sub_b.next_message(Duration::from_millis(200)).is_err());
}

#[test]
fn multi_hop_routing_across_chain() {
    let net = chain(4);
    let publisher = net.attach_client(0, "edge-pub").unwrap();
    let subscriber = net.attach_client(3, "edge-sub").unwrap();
    subscriber.subscribe(t("/Far/Away"), TIMEOUT).unwrap();
    // Allow the subscription advert to propagate down the chain.
    std::thread::sleep(Duration::from_millis(100));

    publisher
        .publish(
            t("/Far/Away"),
            Payload::Blob {
                data: b"4 hops".to_vec(),
            },
        )
        .unwrap();
    let msg = subscriber.next_message(TIMEOUT).unwrap();
    assert!(matches!(msg.payload, Payload::Blob { ref data } if data == b"4 hops"));
}

#[test]
fn messages_do_not_leak_to_uninterested_brokers() {
    let net = chain(3);
    let publisher = net.attach_client(0, "p").unwrap();
    let subscriber = net.attach_client(1, "s").unwrap();
    subscriber.subscribe(t("/Mid"), TIMEOUT).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let before = net.broker(2).stats();
    for _ in 0..5 {
        publisher
            .publish(t("/Mid"), Payload::Blob { data: vec![7] })
            .unwrap();
    }
    subscriber.next_message(TIMEOUT).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let after = net.broker(2).stats();
    // Broker 2 never advertised interest, so nothing reaches it.
    assert_eq!(before.delivered_local, after.delivered_local);
}

#[test]
fn wildcard_subscription_spans_topics() {
    let net = chain(1);
    let publisher = net.attach_client(0, "pub").unwrap();
    let subscriber = net.attach_client(0, "sub").unwrap();
    subscriber.subscribe(t("/Traces/#"), TIMEOUT).unwrap();
    publisher
        .publish(t("/Traces/e1/Load"), Payload::Blob { data: vec![1] })
        .unwrap();
    publisher
        .publish(t("/Traces/e2/Metrics"), Payload::Blob { data: vec![2] })
        .unwrap();
    assert!(subscriber.next_message(TIMEOUT).is_ok());
    assert!(subscriber.next_message(TIMEOUT).is_ok());
}

#[test]
fn constrained_publish_only_refuses_entity_publishers() {
    let net = chain(1);
    let mallory = net.attach_client(0, "mallory").unwrap();
    let topic = t("/Constrained/Traces/Broker/Publish-Only/some-topic/AllUpdates");
    // The publish is silently rejected (and counted) — nothing routes.
    mallory
        .publish(topic.clone(), Payload::Blob { data: vec![0] })
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    assert!(net.broker(0).stats().rejected >= 1);
}

#[test]
fn constrained_subscribe_only_refuses_entity_subscribers() {
    let net = chain(1);
    let mallory = net.attach_client(0, "mallory").unwrap();
    let topic = t("/Constrained/Traces/Broker/Subscribe-Only/Registration");
    let err = mallory.subscribe(topic, TIMEOUT).unwrap_err();
    assert!(matches!(err, BrokerError::Refused(_)));
}

#[test]
fn entity_constrainer_may_subscribe_its_own_channel() {
    let net = chain(1);
    let entity = net.attach_client(0, "entity-7").unwrap();
    let own = t("/Constrained/Traces/entity-7/Subscribe-Only/tt/sess");
    entity.subscribe(own, TIMEOUT).unwrap();

    let other = net.attach_client(0, "entity-8").unwrap();
    let not_yours = t("/Constrained/Traces/entity-7/Subscribe-Only/tt/sess");
    assert!(other.subscribe(not_yours, TIMEOUT).is_err());
}

#[test]
fn repeated_bogus_attempts_terminate_the_client() {
    let net = chain(1);
    let mallory = net.attach_client(0, "mallory").unwrap();
    let forbidden = t("/Constrained/Traces/Broker/Publish-Only/tt/AllUpdates");
    // Default limit is 3 bogus attempts.
    for _ in 0..3 {
        let _ = mallory.publish(forbidden.clone(), Payload::Blob { data: vec![0] });
    }
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(net.broker(0).stats().terminated_clients, 1);
    assert_eq!(net.broker(0).client_count(), 0);
}

#[test]
fn internal_publish_and_subscribe() {
    let net = chain(1);
    let broker = net.broker(0);
    let rx = broker.register_internal("engine");
    broker
        .subscribe_internal("engine", t("/Internal/Channel"))
        .unwrap();
    let client = net.attach_client(0, "c").unwrap();
    client
        .publish(
            t("/Internal/Channel"),
            Payload::Blob {
                data: b"to engine".to_vec(),
            },
        )
        .unwrap();
    let msg = rx.recv_timeout(TIMEOUT).unwrap();
    assert!(matches!(msg.payload, Payload::Blob { ref data } if data == b"to engine"));
}

#[test]
fn suppressed_subscription_stays_local() {
    let net = chain(2);
    // Broker 0's engine subscribes to the registration topic, which is
    // Subscribe-Only + Limited: the advert must NOT propagate.
    let b0 = net.broker(0);
    let _rx = b0.register_internal("engine");
    b0.subscribe_internal("engine", topics::registration())
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // A client on broker 1 publishing a registration reaches broker 1
    // only; broker 0 must not see it (its interest was suppressed).
    let before = b0.stats();
    let client = net.attach_client(1, "remote-entity").unwrap();
    client
        .publish(topics::registration(), Payload::Blob { data: vec![9] })
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let after = b0.stats();
    assert_eq!(before.delivered_local, after.delivered_local);
}

fn make_trace_message(
    broker: &Broker,
    owner: &Credential,
    trace_topic: Uuid,
    delegate: &RsaKeyPair,
    clock: &SharedClock,
    with_token: bool,
) -> Message {
    let now = clock.now_ms();
    let event = TraceEvent {
        entity_id: "entity-1".to_string(),
        trace_topic,
        seq: 1,
        timestamp_ms: now,
        kind: TraceKind::AllsWell,
    };
    let mut msg = Message::new(
        broker.next_message_id(),
        topics::publication(&trace_topic, TraceCategory::AllUpdates),
        broker.id().to_string(),
        now,
        Payload::Trace { event },
    );
    if with_token {
        let token = AuthorizationToken::issue(
            owner,
            trace_topic,
            delegate.public.clone(),
            Rights::Publish,
            now.saturating_sub(1000),
            now + 60_000,
        )
        .unwrap();
        msg = msg.with_token(token);
    }
    msg
}

#[test]
fn tokened_traces_route_and_tokenless_traces_are_dropped() {
    let net = chain(2);
    let clock: SharedClock = system_clock();
    let owner = credential("entity:owner-x");
    let mut rng = StdRng::seed_from_u64(7);
    let delegate = RsaKeyPair::generate(512, &mut rng).unwrap();
    let trace_topic = Uuid::new_v4(&mut rng);

    // The hosting broker knows the owner key (registration did this).
    net.broker(0)
        .register_topic_owner(trace_topic, owner.certificate.public_key.clone());

    // Tracker on broker 1 subscribes to the publication channel.
    let tracker = net.attach_client(1, "tracker-1").unwrap();
    tracker
        .subscribe(
            topics::publication(&trace_topic, TraceCategory::AllUpdates),
            TIMEOUT,
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // With a token: delivered end to end.
    let good = make_trace_message(net.broker(0), &owner, trace_topic, &delegate, &clock, true);
    net.broker(0).publish_internal(good);
    let got = tracker.next_message(TIMEOUT).unwrap();
    assert!(matches!(got.payload, Payload::Trace { .. }));

    // Without a token: the hosting broker drops it as spurious.
    let bad = make_trace_message(net.broker(0), &owner, trace_topic, &delegate, &clock, false);
    net.broker(0).publish_internal(bad);
    assert!(tracker.next_message(Duration::from_millis(300)).is_err());
    assert!(net.broker(0).stats().dropped_spurious >= 1);
}

#[test]
fn forged_token_is_dropped_at_the_knowing_broker() {
    let net = chain(2);
    let clock: SharedClock = system_clock();
    let owner = credential("entity:owner-y");
    let imposter = credential("entity:imposter");
    let mut rng = StdRng::seed_from_u64(8);
    let delegate = RsaKeyPair::generate(512, &mut rng).unwrap();
    let trace_topic = Uuid::new_v4(&mut rng);
    net.broker(0)
        .register_topic_owner(trace_topic, owner.certificate.public_key.clone());

    let tracker = net.attach_client(1, "tracker").unwrap();
    tracker
        .subscribe(
            topics::publication(&trace_topic, TraceCategory::AllUpdates),
            TIMEOUT,
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Token signed by the WRONG owner.
    let forged = make_trace_message(
        net.broker(0),
        &imposter,
        trace_topic,
        &delegate,
        &clock,
        true,
    );
    net.broker(0).publish_internal(forged);
    assert!(tracker.next_message(Duration::from_millis(300)).is_err());
    assert!(net.broker(0).stats().dropped_spurious >= 1);
}

#[test]
fn expired_token_is_dropped_without_owner_key() {
    // Even a transit broker that cannot verify the signature enforces
    // the validity window.
    let net = chain(2);
    let clock: SharedClock = system_clock();
    let owner = credential("entity:owner-z");
    let mut rng = StdRng::seed_from_u64(9);
    let delegate = RsaKeyPair::generate(512, &mut rng).unwrap();
    let trace_topic = Uuid::new_v4(&mut rng);

    let tracker = net.attach_client(1, "tracker").unwrap();
    tracker
        .subscribe(
            topics::publication(&trace_topic, TraceCategory::AllUpdates),
            TIMEOUT,
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let now = clock.now_ms();
    let event = TraceEvent {
        entity_id: "entity-1".to_string(),
        trace_topic,
        seq: 1,
        timestamp_ms: now,
        kind: TraceKind::AllsWell,
    };
    let expired_token = AuthorizationToken::issue(
        &owner,
        trace_topic,
        delegate.public.clone(),
        Rights::Publish,
        now.saturating_sub(120_000),
        now.saturating_sub(60_000), // expired a minute ago
    )
    .unwrap();
    let msg = Message::new(
        net.broker(0).next_message_id(),
        topics::publication(&trace_topic, TraceCategory::AllUpdates),
        net.broker(0).id().to_string(),
        now,
        Payload::Trace { event },
    )
    .with_token(expired_token);
    net.broker(0).publish_internal(msg);
    assert!(tracker.next_message(Duration::from_millis(300)).is_err());
}

#[test]
fn late_subscriber_still_gets_interest_via_new_neighbor_sync() {
    // Subscriptions made BEFORE a neighbour link comes up must reach
    // the new neighbour (full-table sync on connect).
    let clock = system_clock();
    let net = SimNetwork::new(99);
    let b0 = Broker::new("b0", clock.clone(), BrokerConfig::default());
    let b1 = Broker::new("b1", clock.clone(), BrokerConfig::default());

    // Client subscribes on b1 first.
    let (bs, cs) = net.symmetric_link(LinkConfig::instant());
    b1.attach_client(bs);
    let sub = BrokerClient::attach(cs, "early-sub", clock.clone(), TIMEOUT).unwrap();
    sub.subscribe(t("/Pre/Linked"), TIMEOUT).unwrap();

    // Now wire the brokers together.
    let (l0, l1) = net.symmetric_link(LinkConfig::instant());
    b0.connect_neighbor(l0);
    b1.connect_neighbor(l1);
    std::thread::sleep(Duration::from_millis(100));

    let (bs, cs) = net.symmetric_link(LinkConfig::instant());
    b0.attach_client(bs);
    let publisher = BrokerClient::attach(cs, "late-pub", clock, TIMEOUT).unwrap();
    publisher
        .publish(t("/Pre/Linked"), Payload::Blob { data: vec![5] })
        .unwrap();
    assert!(sub.next_message(TIMEOUT).is_ok());
}

#[test]
fn star_topology_routes_hub_to_all_leaves() {
    let net = BrokerNetwork::star(
        3,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    );
    assert!(net.wait_for_mesh(TIMEOUT));
    let publisher = net.attach_client(0, "hub-pub").unwrap();
    let subs: Vec<_> = (1..=3)
        .map(|i| {
            let c = net.attach_client(i, &format!("leaf-sub-{i}")).unwrap();
            c.subscribe(t("/Fan/Out"), TIMEOUT).unwrap();
            c
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    publisher
        .publish(t("/Fan/Out"), Payload::Blob { data: vec![1] })
        .unwrap();
    for s in &subs {
        assert!(s.next_message(TIMEOUT).is_ok());
    }
}

#[test]
fn unsubscribe_stops_delivery() {
    let net = chain(1);
    let publisher = net.attach_client(0, "p").unwrap();
    let subscriber = net.attach_client(0, "s").unwrap();
    subscriber.subscribe(t("/OnOff"), TIMEOUT).unwrap();
    publisher
        .publish(t("/OnOff"), Payload::Blob { data: vec![1] })
        .unwrap();
    assert!(subscriber.next_message(TIMEOUT).is_ok());

    subscriber.unsubscribe(t("/OnOff"), TIMEOUT).unwrap();
    publisher
        .publish(t("/OnOff"), Payload::Blob { data: vec![2] })
        .unwrap();
    assert!(subscriber.next_message(Duration::from_millis(200)).is_err());
}
