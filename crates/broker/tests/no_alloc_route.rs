//! Proves the data-plane claim in `docs/PERFORMANCE.md`: once the
//! route cache is warm, routing a client-published frame to its local
//! subscribers allocates nothing. Uses a counting global allocator, so
//! everything is measured inside one test function to keep the counter
//! unpolluted by parallel tests.

use nb_broker::{Broker, BrokerConfig};
use nb_transport::clock::system_clock;
use nb_transport::endpoint::{Endpoint, FrameSender};
use nb_wire::codec::Encode;
use nb_wire::{Message, Payload, Topic};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Broker-side sender for the subscriber's endpoint: swallows every
/// outbound frame after counting it, touching nothing but an atomic.
#[derive(Default)]
struct SinkSender {
    delivered: AtomicU64,
}

impl FrameSender for SinkSender {
    fn send_frame(&self, _frame: &[u8]) -> nb_transport::Result<()> {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[test]
fn warm_route_path_never_allocates() {
    let cfg = BrokerConfig {
        advert_refresh: None,
        ..BrokerConfig::default()
    };
    let broker = Broker::new("b0", system_clock(), cfg);

    // Hand-built subscriber endpoint: the broker's outbound side is a
    // pure sink, and we inject the client's control frames directly
    // into the receive channel.
    let sink = Arc::new(SinkSender::default());
    let (frames_tx, frames_rx) = crossbeam::channel::unbounded::<Vec<u8>>();
    broker.attach_client(Endpoint::from_parts(
        Arc::clone(&sink) as Arc<dyn FrameSender>,
        frames_rx,
    ));

    let control = Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap();
    let topic = Topic::parse("/Sensor/NoAlloc/Temp").unwrap();
    frames_tx
        .send(
            Message::new(
                1,
                control.clone(),
                "sub",
                0,
                Payload::Attach { client_id: "sub".into() },
            )
            .to_bytes(),
        )
        .unwrap();
    frames_tx
        .send(
            Message::new(2, control, "sub", 0, Payload::Subscribe { filter: topic.clone() })
                .to_bytes(),
        )
        .unwrap();

    // One pre-encoded data frame, reused for every publish. The
    // client-origin fast path never mutates the buffer (hop patching
    // only applies on neighbour ingress), so reuse is sound.
    let mut frame = Message::new(
        7,
        topic,
        "pub",
        0,
        Payload::Ping { seq: 0, sent_at_ms: 0 },
    )
    .to_bytes();

    // Wait until the subscription is live: the sink sees two control
    // acks (attach + subscribe) and then the first delivered copy.
    let mut ready = false;
    for _ in 0..500 {
        broker.ingest_client_frame("pub", &mut frame);
        if sink.delivered.load(Ordering::Relaxed) >= 3 {
            ready = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(ready, "subscription never became routable");

    // Warm everything that is allowed to allocate once: the route
    // cache entry, metric handles, and the monotonic clock epoch.
    for _ in 0..1_000 {
        broker.ingest_client_frame("pub", &mut frame);
    }

    let delivered_before = sink.delivered.load(Ordering::Relaxed);
    let before = allocations();
    for _ in 0..10_000 {
        broker.ingest_client_frame("pub", &mut frame);
    }
    assert_eq!(
        allocations() - before,
        0,
        "steady-state route path allocated"
    );
    assert_eq!(
        sink.delivered.load(Ordering::Relaxed) - delivered_before,
        10_000,
        "every measured publish must reach the subscriber"
    );
}
