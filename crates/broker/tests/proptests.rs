//! Property-based tests on the subscription table: matching stays
//! consistent with membership under arbitrary add/remove interleavings.

use nb_broker::SubscriptionTable;
use nb_wire::Topic;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    AddLocal { consumer: u8, topic: u8, suppressed: bool },
    RemoveLocal { consumer: u8, topic: u8 },
    RemoveConsumer { consumer: u8 },
    AddRemote { neighbor: u8, topic: u8 },
    RemoveRemote { neighbor: u8, topic: u8 },
    RemoveNeighbor { neighbor: u8 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..4, 0u8..6, any::<bool>())
                .prop_map(|(consumer, topic, suppressed)| Op::AddLocal {
                    consumer,
                    topic,
                    suppressed
                }),
            (0u8..4, 0u8..6).prop_map(|(consumer, topic)| Op::RemoveLocal { consumer, topic }),
            (0u8..4).prop_map(|consumer| Op::RemoveConsumer { consumer }),
            (0u8..3, 0u8..6).prop_map(|(neighbor, topic)| Op::AddRemote { neighbor, topic }),
            (0u8..3, 0u8..6).prop_map(|(neighbor, topic)| Op::RemoveRemote { neighbor, topic }),
            (0u8..3).prop_map(|neighbor| Op::RemoveNeighbor { neighbor }),
        ],
        0..60,
    )
}

fn topic(i: u8) -> Topic {
    Topic::parse(&format!("/T/{i}")).unwrap()
}

fn consumer(i: u8) -> String {
    format!("c{i}")
}

fn neighbor(i: u8) -> String {
    format!("b{i}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The table's matching answers always agree with a naive model.
    #[test]
    fn table_agrees_with_model(ops in arb_ops()) {
        let mut table = SubscriptionTable::new();
        let mut model_local: HashMap<String, HashSet<u8>> = HashMap::new();
        let mut model_remote: HashMap<String, HashSet<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::AddLocal { consumer: c, topic: t, suppressed } => {
                    table.add_local(&consumer(c), topic(t), suppressed);
                    model_local.entry(consumer(c)).or_default().insert(t);
                }
                Op::RemoveLocal { consumer: c, topic: t } => {
                    table.remove_local(&consumer(c), &topic(t));
                    if let Some(set) = model_local.get_mut(&consumer(c)) {
                        set.remove(&t);
                        if set.is_empty() {
                            model_local.remove(&consumer(c));
                        }
                    }
                }
                Op::RemoveConsumer { consumer: c } => {
                    table.remove_consumer(&consumer(c));
                    model_local.remove(&consumer(c));
                }
                Op::AddRemote { neighbor: n, topic: t } => {
                    table.add_remote(&neighbor(n), topic(t));
                    model_remote.entry(neighbor(n)).or_default().insert(t);
                }
                Op::RemoveRemote { neighbor: n, topic: t } => {
                    table.remove_remote(&neighbor(n), &topic(t));
                    if let Some(set) = model_remote.get_mut(&neighbor(n)) {
                        set.remove(&t);
                        if set.is_empty() {
                            model_remote.remove(&neighbor(n));
                        }
                    }
                }
                Op::RemoveNeighbor { neighbor: n } => {
                    table.remove_neighbor(&neighbor(n));
                    model_remote.remove(&neighbor(n));
                }
            }

            // Check every topic's matching against the model.
            for t in 0u8..6 {
                let mut expected_local: Vec<String> = model_local
                    .iter()
                    .filter(|(_, ts)| ts.contains(&t))
                    .map(|(c, _)| c.clone())
                    .collect();
                expected_local.sort();
                let mut got_local = table.local_matches(&topic(t));
                got_local.sort();
                prop_assert_eq!(got_local, expected_local);

                let mut expected_remote: Vec<String> = model_remote
                    .iter()
                    .filter(|(_, ts)| ts.contains(&t))
                    .map(|(n, _)| n.clone())
                    .collect();
                expected_remote.sort();
                let mut got_remote = table.remote_matches(&topic(t));
                got_remote.sort();
                prop_assert_eq!(got_remote, expected_remote);
            }
        }
    }

    /// Suppressed filters never appear in any advertisement set, no
    /// matter the interleaving.
    #[test]
    fn suppressed_filters_never_advertised(ops in arb_ops()) {
        let mut table = SubscriptionTable::new();
        let mut suppressed_topics: HashSet<u8> = HashSet::new();
        for op in ops {
            if let Op::AddLocal { consumer: c, topic: t, suppressed } = op {
                table.add_local(&consumer(c), topic(t), suppressed);
                if suppressed {
                    suppressed_topics.insert(t);
                }
            }
        }
        let advertisable = table.advertisable_filters();
        for t in &suppressed_topics {
            prop_assert!(
                !advertisable.contains(&topic(*t)),
                "suppressed topic {t} leaked into advertisements"
            );
        }
    }
}
