//! Session-key data-plane tests: trace frames tagged under a live
//! session key must authenticate with one HMAC on the cached fast
//! path (no RSA), unknown keys must fall back to the token path, and
//! — the red-team case — a frame replayed under a *revoked* key must
//! be dropped and fire exactly one monitor violation.

use nb_broker::network::BrokerNetwork;
use nb_broker::{Broker, BrokerConfig};
use nb_crypto::cert::{CertificateAuthority, Credential, Validity};
use nb_crypto::rsa::RsaKeyPair;
use nb_crypto::{SessionKey, Uuid};
use nb_monitor::{parse_properties, MonitorSet};
use nb_transport::clock::{system_clock, SharedClock};
use nb_transport::sim::LinkConfig;
use nb_wire::token::{AuthorizationToken, Rights};
use nb_wire::trace::{topics, TraceCategory, TraceEvent, TraceKind};
use nb_wire::{Message, Payload, SessionTag};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(5);
const SILENCE: Duration = Duration::from_millis(300);

fn ca() -> &'static Mutex<CertificateAuthority> {
    static CA: OnceLock<Mutex<CertificateAuthority>> = OnceLock::new();
    CA.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5e5510);
        Mutex::new(
            CertificateAuthority::new(
                "session-test-ca",
                512,
                Validity::starting_now(0, u64::MAX / 2),
                &mut rng,
            )
            .unwrap(),
        )
    })
}

fn credential(subject: &str) -> Credential {
    let mut rng = StdRng::seed_from_u64(subject.len() as u64 ^ 0x5e55);
    ca().lock()
        .unwrap()
        .issue(subject, Validity::starting_now(0, u64::MAX / 2), &mut rng)
        .unwrap()
}

/// A two-broker chain with token enforcement ON — the configuration
/// where the session layer actually changes the data plane.
fn strict_chain() -> BrokerNetwork {
    let net = BrokerNetwork::chain(
        2,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    );
    assert!(net.wait_for_mesh(TIMEOUT));
    net
}

fn trace_message(broker: &Broker, trace_topic: Uuid, clock: &SharedClock) -> Message {
    let now = clock.now_ms();
    let event = TraceEvent {
        entity_id: "entity-1".to_string(),
        trace_topic,
        seq: 1,
        timestamp_ms: now,
        kind: TraceKind::AllsWell,
    };
    Message::new(
        broker.next_message_id(),
        topics::publication(&trace_topic, TraceCategory::AllUpdates),
        broker.id().to_string(),
        now,
        Payload::Trace { event },
    )
}

/// Tags `msg` the way a publishing entity would: HMAC under `key`
/// over the signable region, carried in the trailing section.
fn tag_under(msg: Message, key: &SessionKey, seq: u64) -> Message {
    let signable = msg.signable_bytes();
    let mac = key.mac(seq, &[&signable]);
    msg.with_session(SessionTag {
        key_id: key.key_id,
        seq,
        mac,
    })
}

/// Subscribes a tracker at broker `idx` to the topic's publications
/// and waits until broker 0 can route toward it.
fn subscribe_tracker(net: &BrokerNetwork, trace_topic: Uuid) -> nb_broker::BrokerClient {
    let subscriber = net.attach_client(1, "tracker").unwrap();
    let pub_topic = topics::publication(&trace_topic, TraceCategory::AllUpdates);
    subscriber.subscribe(pub_topic.clone(), TIMEOUT).unwrap();
    assert!(net.broker(0).wait_for_remote_subscription(&pub_topic, TIMEOUT));
    subscriber
}

#[test]
fn session_tagged_frames_route_without_rsa() {
    let net = strict_chain();
    let clock: SharedClock = system_clock();
    let mut rng = StdRng::seed_from_u64(7);
    let trace_topic = Uuid::new_v4(&mut rng);
    let key = SessionKey::mint(trace_topic, clock.now_ms(), 600_000, 1 << 20, &mut rng);
    net.broker(0).install_session_key(key.clone());
    net.broker(1).install_session_key(key.clone());

    let subscriber = subscribe_tracker(&net, trace_topic);

    // No token anywhere: only the session tag authenticates the frame
    // across both brokers.
    for seq in 1..=8u64 {
        let msg = tag_under(trace_message(net.broker(0), trace_topic, &clock), &key, seq);
        net.broker(0).publish_internal(msg);
        let got = subscriber.next_message(TIMEOUT).expect("tagged delivery");
        assert_eq!(got.session.map(|t| t.seq), Some(seq), "tag survives relay");
    }

    let relay = net.broker(1).metrics_snapshot();
    assert!(
        relay.counter("broker.session.verified").unwrap_or(0) >= 8,
        "relay authenticated via the keyring"
    );
    assert!(
        relay.counter("broker.route.fastpath").unwrap_or(0) >= 8,
        "session frames stay on the cached fast path"
    );
    assert_eq!(relay.counter("broker.drop.spurious_token"), Some(0));
}

#[test]
fn bad_mac_session_frame_is_dropped() {
    let net = strict_chain();
    let clock: SharedClock = system_clock();
    let mut rng = StdRng::seed_from_u64(8);
    let trace_topic = Uuid::new_v4(&mut rng);
    let key = SessionKey::mint(trace_topic, clock.now_ms(), 600_000, 1 << 20, &mut rng);
    net.broker(1).install_session_key(key.clone());

    let subscriber = subscribe_tracker(&net, trace_topic);

    // Forge a frame at the relay's doorstep: valid key id, garbage
    // MAC. Publishing from broker 1's own ingress keeps broker 0 (which
    // has no key and would need a token) out of the picture.
    let msg = trace_message(net.broker(1), trace_topic, &clock).with_session(SessionTag {
        key_id: key.key_id,
        seq: 1,
        mac: [0xAA; 32],
    });
    net.broker(1).publish_internal(msg);

    assert!(
        subscriber.next_message(SILENCE).is_err(),
        "forged MAC must not be delivered"
    );
    let relay = net.broker(1).metrics_snapshot();
    assert!(relay.counter("broker.session.rejected").unwrap_or(0) >= 1);
    assert!(relay.counter("broker.drop.spurious_token").unwrap_or(0) >= 1);
}

#[test]
fn unknown_key_falls_back_to_rsa_tokens() {
    let net = strict_chain();
    let clock: SharedClock = system_clock();
    let mut rng = StdRng::seed_from_u64(9);
    let trace_topic = Uuid::new_v4(&mut rng);
    let key = SessionKey::mint(trace_topic, clock.now_ms(), 600_000, 1 << 20, &mut rng);
    // Broker 0 knows the key; the relay holds a key for some *other*
    // topic, so the tag's key id is unknown there (not just absent).
    net.broker(0).install_session_key(key.clone());
    let other = SessionKey::mint(Uuid::new_v4(&mut rng), clock.now_ms(), 600_000, 8, &mut rng);
    net.broker(1).install_session_key(other);

    let subscriber = subscribe_tracker(&net, trace_topic);

    // Belt and braces: the frame carries both the session tag and a
    // window-valid token, the rotation-window posture. The relay
    // cannot resolve the key and must fall back to the token path.
    let owner = credential("entity:owner");
    let delegate = RsaKeyPair::generate(512, &mut rng).unwrap();
    let now = clock.now_ms();
    let token = AuthorizationToken::issue(
        &owner,
        trace_topic,
        delegate.public.clone(),
        Rights::Publish,
        now.saturating_sub(1_000),
        now + 60_000,
    )
    .unwrap();
    let msg = tag_under(
        trace_message(net.broker(0), trace_topic, &clock).with_token(token),
        &key,
        1,
    );
    net.broker(0).publish_internal(msg);

    subscriber
        .next_message(TIMEOUT)
        .expect("token fallback delivers");
    let relay = net.broker(1).metrics_snapshot();
    assert!(
        relay.counter("broker.session.fallback").unwrap_or(0) >= 1,
        "unknown key id must be counted as a fallback"
    );
}

/// The red-team scenario from the issue: a session-tagged frame is
/// delivered cleanly, its key is revoked, and the *identical* frame is
/// replayed. The relay must drop it and the attached monitor must
/// raise exactly one violation — no more (no double-count under
/// `require-token`), no fewer.
#[test]
fn revoked_session_replay_fires_exactly_one_violation() {
    let net = strict_chain();
    let clock: SharedClock = system_clock();
    let mut rng = StdRng::seed_from_u64(10);
    let trace_topic = Uuid::new_v4(&mut rng);
    let now = clock.now_ms();
    // Two keys for the topic, the rotation posture: after revoking
    // `old_key` the relay still holds a live key, so its route entry
    // keeps the session gate open and the replay meets the keyring —
    // where it reads Revoked, not Unknown.
    let old_key = SessionKey::mint(trace_topic, now, 600_000, 1 << 20, &mut rng);
    let new_key = SessionKey::mint(trace_topic, now, 600_000, 1 << 20, &mut rng);
    for idx in 0..2 {
        net.broker(idx).install_session_key(old_key.clone());
        net.broker(idx).install_session_key(new_key.clone());
    }

    let specs = parse_properties(
        "auth: require-token on /Constrained/Traces/*/Publish-Only/#\n\
         session: require-session on /Constrained/Traces/*/Publish-Only/#\n",
    )
    .unwrap();
    let monitor = MonitorSet::new(specs, credential("Monitor"), 100);
    net.broker(1).attach_monitor(monitor.clone());

    let subscriber = subscribe_tracker(&net, trace_topic);

    // Clean phase: the tagged frame crosses both brokers, silently.
    let msg = tag_under(trace_message(net.broker(0), trace_topic, &clock), &old_key, 1);
    net.broker(0).publish_internal(msg.clone());
    subscriber.next_message(TIMEOUT).expect("clean delivery");
    assert_eq!(monitor.violation_count(), 0, "clean run must stay silent");

    // Revocation reaches the relay (and via it, the monitor) — but
    // not broker 0, which faithfully forwards the replay.
    assert!(net.broker(1).revoke_session_key(old_key.key_id));
    assert!(monitor.is_session_revoked(old_key.key_id));

    // Replay the identical frame.
    net.broker(0).publish_internal(msg);
    assert!(
        subscriber.next_message(SILENCE).is_err(),
        "replay under a revoked key must not be delivered"
    );
    assert_eq!(
        monitor.violation_count(),
        1,
        "exactly one violation for the replay"
    );
    let violation = &monitor.violations()[0];
    assert_eq!(violation.property, "session");
    assert!(
        violation.detail.contains("revoked session key"),
        "detail: {}",
        violation.detail
    );
    let relay = net.broker(1).metrics_snapshot();
    assert_eq!(relay.counter("broker.session.revoked_drop"), Some(1));

    // Rotation completes: traffic under the new key flows, and the
    // violation count stays at one.
    let msg = tag_under(trace_message(net.broker(0), trace_topic, &clock), &new_key, 1);
    net.broker(0).publish_internal(msg);
    subscriber.next_message(TIMEOUT).expect("new key delivers");
    assert_eq!(monitor.violation_count(), 1);
}
