//! Broker edge cases: malformed input, disconnect cleanup, counter
//! semantics.

use nb_broker::network::BrokerNetwork;
use nb_broker::{BrokerClient, BrokerConfig};
use nb_transport::clock::system_clock;
use nb_transport::sim::{LinkConfig, SimNetwork};
use nb_wire::{Payload, Topic};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(5);

fn t(s: &str) -> Topic {
    Topic::parse(s).unwrap()
}

#[test]
fn malformed_frames_count_as_bogus_and_terminate() {
    let clock = system_clock();
    let net = SimNetwork::new(7);
    let broker = nb_broker::Broker::new("b0", clock.clone(), BrokerConfig::default());
    let (broker_side, client_side) = net.symmetric_link(LinkConfig::instant());
    broker.attach_client(broker_side);
    let client = BrokerClient::attach(client_side, "garbler", clock, TIMEOUT).unwrap();

    // Reach under the client abstraction: send raw garbage frames.
    // Each undecodable frame is a bogus attempt (§5.2); at the default
    // limit of 3 the broker terminates the client.
    let msg = client.make_message(t("/x"), Payload::Ack);
    let _ = msg; // the client itself stays protocol-correct otherwise
    // We can't send raw bytes through BrokerClient, so drive the limit
    // through constrained-topic violations instead.
    for _ in 0..3 {
        let _ = client.publish(
            t("/Constrained/Traces/Broker/Publish-Only/x/AllUpdates"),
            Payload::Blob { data: vec![1] },
        );
    }
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(broker.stats().terminated_clients, 1);
    assert_eq!(broker.client_count(), 0);
}

#[test]
fn client_disconnect_cleans_up_subscriptions() {
    let net = BrokerNetwork::chain(
        1,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    );
    let publisher = net.attach_client(0, "pub").unwrap();
    let subscriber = net.attach_client(0, "sub").unwrap();
    subscriber.subscribe(t("/Gone/Soon"), TIMEOUT).unwrap();
    assert_eq!(net.broker(0).client_count(), 2);

    drop(subscriber); // link closes; worker cleans up
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(net.broker(0).client_count(), 1);

    // Publishing now delivers to nobody.
    let before = net.broker(0).stats().delivered_local;
    publisher
        .publish(t("/Gone/Soon"), Payload::Blob { data: vec![1] })
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(net.broker(0).stats().delivered_local, before);
}

#[test]
fn stats_track_publish_deliver_forward() {
    let net = BrokerNetwork::chain(
        2,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    );
    assert!(net.wait_for_mesh(TIMEOUT));
    let publisher = net.attach_client(0, "p").unwrap();
    let local_sub = net.attach_client(0, "ls").unwrap();
    let remote_sub = net.attach_client(1, "rs").unwrap();
    local_sub.subscribe(t("/Stat/Topic"), TIMEOUT).unwrap();
    remote_sub.subscribe(t("/Stat/Topic"), TIMEOUT).unwrap();
    // Forwarding to broker 1 requires remote_sub's advert to have
    // propagated back to broker 0. Wait on the broker's subscription
    // condvar instead of sleeping — deterministic, not a race.
    assert!(net
        .broker(0)
        .wait_for_remote_subscription(&t("/Stat/Topic"), TIMEOUT));

    for _ in 0..5 {
        publisher
            .publish(t("/Stat/Topic"), Payload::Blob { data: vec![0] })
            .unwrap();
    }
    // Both subscribers drain their five messages.
    for _ in 0..5 {
        assert!(local_sub.next_message(TIMEOUT).is_ok());
        assert!(remote_sub.next_message(TIMEOUT).is_ok());
    }
    // Delivery counters are incremented just *after* the frame is
    // handed to the client, so draining a message can race the
    // increment by a few instructions — poll briefly instead of
    // asserting an instantaneous snapshot.
    let deadline = std::time::Instant::now() + TIMEOUT;
    loop {
        let b0 = net.broker(0).stats();
        let b1 = net.broker(1).stats();
        if b0.published >= 5
            && b0.delivered_local >= 5 // local_sub
            && b0.forwarded >= 5 // toward broker 1
            && b1.delivered_local >= 5
        // remote_sub
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stats never converged: {b0:?} / {b1:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn resubscribing_the_same_filter_is_idempotent() {
    let net = BrokerNetwork::chain(
        1,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    );
    let publisher = net.attach_client(0, "p").unwrap();
    let subscriber = net.attach_client(0, "s").unwrap();
    for _ in 0..3 {
        subscriber.subscribe(t("/Idem"), TIMEOUT).unwrap();
    }
    publisher
        .publish(t("/Idem"), Payload::Blob { data: vec![1] })
        .unwrap();
    // Exactly one delivery despite three subscribe calls.
    assert!(subscriber.next_message(TIMEOUT).is_ok());
    assert!(subscriber.next_message(Duration::from_millis(200)).is_err());
}

#[test]
fn publish_to_topic_with_no_subscribers_is_cheap_and_safe() {
    let net = BrokerNetwork::chain(
        2,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    );
    assert!(net.wait_for_mesh(TIMEOUT));
    let publisher = net.attach_client(0, "void-pub").unwrap();
    for _ in 0..10 {
        publisher
            .publish(t("/Nobody/Listens"), Payload::Blob { data: vec![0] })
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(100));
    let b0 = net.broker(0).stats();
    // Accepted but neither delivered nor forwarded.
    assert!(b0.published >= 10);
    assert_eq!(b0.delivered_local, 0);
    assert_eq!(b0.forwarded, 0);
}

#[test]
fn distinct_clients_with_same_filter_each_get_a_copy() {
    let net = BrokerNetwork::chain(
        1,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    );
    let publisher = net.attach_client(0, "p").unwrap();
    let subs: Vec<_> = (0..4)
        .map(|i| {
            let c = net.attach_client(0, &format!("s{i}")).unwrap();
            c.subscribe(t("/Multi"), TIMEOUT).unwrap();
            c
        })
        .collect();
    publisher
        .publish(t("/Multi"), Payload::Blob { data: vec![9] })
        .unwrap();
    for s in &subs {
        assert!(s.next_message(TIMEOUT).is_ok());
    }
}
