//! Cluster telemetry plane at the broker level: constrained-topic
//! enforcement on the Obs family, internal publisher wiring, and
//! exact aggregator convergence across a 3-broker mesh under a flaky
//! link with a replay adversary.

use std::sync::Arc;
use std::time::{Duration, Instant};

use nb_broker::network::BrokerNetwork;
use nb_broker::{Broker, BrokerConfig};
use nb_metrics::Registry;
use nb_obs::{
    telemetry_topic, AggregatorConfig, ClusterAggregator, NodeKind, PublisherConfig,
    TelemetryPublisher,
};
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::Payload;

const TIMEOUT: Duration = Duration::from_secs(10);

fn counter(broker: &Broker, name: &str) -> u64 {
    broker.metrics_snapshot().counter(name).unwrap_or(0)
}

/// Drains every delivered message into the aggregator until `done`
/// holds or the deadline passes; returns whether `done` held.
fn pump_until(
    rx: &crossbeam::channel::Receiver<nb_wire::Message>,
    agg: &ClusterAggregator,
    done: impl Fn(&ClusterAggregator) -> bool,
) -> bool {
    let deadline = Instant::now() + TIMEOUT;
    loop {
        while let Ok(msg) = rx.try_recv() {
            agg.ingest(&msg);
        }
        if done(agg) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn broker_publisher_feeds_a_local_aggregator() {
    let net = BrokerNetwork::chain(
        1,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    );
    let broker = net.broker(0).clone();
    let rx = broker.register_internal("agg");
    broker.subscribe_internal("agg", telemetry_topic()).unwrap();

    let publisher = broker.telemetry_publisher(PublisherConfig::default());
    publisher.publish_now();

    let agg = ClusterAggregator::new(AggregatorConfig::default());
    assert!(pump_until(&rx, &agg, |a| !a.nodes().is_empty()));
    assert_eq!(agg.nodes(), vec![broker.id().to_string()]);
    // The keyframe carries the broker's own metric families.
    let total = agg.node_total(broker.id()).unwrap();
    assert!(!total.is_empty());
}

#[test]
fn unauthorized_client_publisher_is_refused() {
    let net = BrokerNetwork::chain(
        1,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    );
    let broker = net.broker(0).clone();
    let rx = broker.register_internal("agg");
    broker.subscribe_internal("agg", telemetry_topic()).unwrap();
    let rejected_before = counter(&broker, "broker.reject.constraint");

    // A client is not the `Obs` constrainer: its publish on the
    // Publish-Only Obs topic must be refused at the broker.
    let mallory = net.attach_client(0, "mallory").unwrap();
    let _ = mallory.publish(telemetry_topic(), Payload::Blob { data: vec![0xde, 0xad] });

    let deadline = Instant::now() + TIMEOUT;
    while counter(&broker, "broker.reject.constraint") == rejected_before
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        counter(&broker, "broker.reject.constraint") > rejected_before,
        "constrained-topic enforcement must count the refusal"
    );
    // Nothing was delivered to the telemetry subscriber.
    std::thread::sleep(Duration::from_millis(50));
    assert!(rx.try_recv().is_err(), "forged frame must not be delivered");
}

#[test]
fn three_broker_aggregator_converges_exactly_under_flaky_link_and_replay() {
    let net = BrokerNetwork::chain(
        3,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    );
    assert!(net.wait_for_mesh(TIMEOUT));

    // The aggregator lives at b0; subscription interest gossips to b1
    // and b2 so their frames are forwarded across the chain.
    let home = net.broker(0).clone();
    let rx = home.register_internal("agg");
    home.subscribe_internal("agg", telemetry_topic()).unwrap();
    // Let the subscription advert gossip across the chain before
    // anything publishes, so no pre-fault frame is lost to a race.
    assert!(net.broker(1).wait_for_remote_subscription(&telemetry_topic(), TIMEOUT));
    assert!(net.broker(2).wait_for_remote_subscription(&telemetry_topic(), TIMEOUT));

    // Each node reports a private registry only this test mutates, so
    // expected totals are exact, not racing live broker counters.
    let clock = system_clock();
    let registries: Vec<Registry> = (0..3).map(|_| Registry::new()).collect();
    let publishers: Vec<TelemetryPublisher> = (0..3)
        .map(|i| {
            let registry = registries[i].clone();
            let sink = net.broker(i).clone();
            TelemetryPublisher::new(
                format!("node-{i}"),
                NodeKind::Other,
                Arc::new(move || registry.snapshot()),
                Arc::new(move |msg| sink.publish_internal(msg)),
                clock.clone(),
                PublisherConfig {
                    interval_ms: 10,
                    full_every: 4,
                },
            )
        })
        .collect();

    let agg = ClusterAggregator::new(AggregatorConfig::default());

    // Round 0 doubles as the subscription-propagation barrier: all
    // three seq-0 keyframes must arrive before faults are injected.
    for r in &registries {
        r.counter("app.work").add(1);
    }
    for p in &publishers {
        p.publish_now();
    }
    assert!(
        pump_until(&rx, &agg, |a| a.nodes().len() == 3),
        "all three nodes must reach the aggregator before the fault"
    );

    // Flaky window: the b0—b1 link drops everything, so frames from
    // node-1 and node-2 (seqs 1..=3) are lost in transit.
    assert!(net.flaky_link(0, 1.0, Duration::from_secs(30)));
    for round in 0..3u64 {
        for r in &registries {
            r.counter("app.work").add(round + 2);
        }
        for p in &publishers {
            p.publish_now();
        }
    }
    std::thread::sleep(Duration::from_millis(50));

    // Heal the link and add a replay adversary: every later frame
    // crossing it is delivered three times; seq dedup must absorb it.
    assert!(net.restore_link(0));
    assert!(net.replay_link(0, 2));

    // Post-outage rounds cross the next keyframe (seq 4 of 0..=7), so
    // the aggregator resynchronizes exactly despite the lost frames.
    for round in 0..4u64 {
        for r in &registries {
            r.counter("app.work").add(10 + round);
        }
        for p in &publishers {
            p.publish_now();
        }
    }

    let expected: u64 = 1 + (2 + 3 + 4) + (10 + 11 + 12 + 13);
    let converged = pump_until(&rx, &agg, |a| {
        (0..3).all(|i| {
            a.node_total(&format!("node-{i}"))
                .and_then(|t| t.counter("app.work"))
                == Some(expected)
        })
    });
    assert!(
        converged,
        "every node's counter must reconstruct exactly; got {:?}",
        (0..3)
            .map(|i| agg
                .node_total(&format!("node-{i}"))
                .and_then(|t| t.counter("app.work")))
            .collect::<Vec<_>>()
    );

    let obs = agg.metrics_snapshot();
    assert!(
        obs.counter("obs.frames.gap").unwrap_or(0) > 0,
        "the flaky window must have cost at least one frame"
    );
    assert!(
        obs.counter("obs.frames.duplicate").unwrap_or(0) > 0,
        "replayed frames must be deduplicated by sequence number"
    );
    // Cluster rollup sums the three identical counters.
    assert_eq!(agg.rollup().counter("app.work"), Some(3 * expected));
}
