//! Causal-tracing integration: the hop-count TTL drops looping/
//! over-travelled messages, untraced traffic is untouched, and sampled
//! messages leave a complete span trail in every broker's flight
//! recorder.

use nb_broker::network::BrokerNetwork;
use nb_broker::BrokerConfig;
use nb_telemetry::{Stage, TelemetryConfig, TraceContext};
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::{Payload, Topic};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(5);

fn t(s: &str) -> Topic {
    Topic::parse(s).unwrap()
}

fn wait_until(timeout: Duration, mut ready: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if ready() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    ready()
}

#[test]
fn hop_ttl_drops_messages_beyond_max_hops() {
    // 3-broker chain with a 1-hop budget: broker-1 (hop 1) may still
    // deliver, broker-2 (hop 2) must drop.
    let cfg = BrokerConfig {
        max_hops: 1,
        ..BrokerConfig::default()
    };
    let net = BrokerNetwork::chain(3, LinkConfig::instant(), system_clock(), cfg);
    assert!(net.wait_for_mesh(TIMEOUT));
    let publisher = net.attach_client(0, "ttl-pub").unwrap();
    let near = net.attach_client(1, "ttl-near").unwrap();
    let far = net.attach_client(2, "ttl-far").unwrap();
    near.subscribe(t("/Ttl/Topic"), TIMEOUT).unwrap();
    far.subscribe(t("/Ttl/Topic"), TIMEOUT).unwrap();
    assert!(net
        .broker(0)
        .wait_for_remote_subscription(&t("/Ttl/Topic"), TIMEOUT));
    // Broker 0's wait above can be satisfied by `near` (broker 1's
    // local subscriber) alone; the frame only travels the second hop
    // once broker 1 has also learned `far`'s subscription from broker
    // 2 — wait for that too or the publish races the propagation.
    assert!(net
        .broker(1)
        .wait_for_remote_subscription(&t("/Ttl/Topic"), TIMEOUT));

    // The TTL applies to any message carrying a context, sampled or not.
    let ctx = TraceContext::root(0, false);
    publisher
        .publish_traced(t("/Ttl/Topic"), Payload::Blob { data: vec![1] }, ctx)
        .unwrap();

    // One hop away: delivered.
    assert!(near.next_message(TIMEOUT).is_ok());
    // Two hops away: dropped at broker-2's ingress, counted there.
    assert!(wait_until(TIMEOUT, || net.broker(2).stats().dropped_ttl >= 1));
    assert!(far.next_message(Duration::from_millis(200)).is_err());
    assert_eq!(net.broker(2).stats().delivered_local, 0);
}

#[test]
fn untraced_messages_are_not_ttl_checked() {
    let cfg = BrokerConfig {
        max_hops: 1,
        ..BrokerConfig::default()
    };
    let net = BrokerNetwork::chain(3, LinkConfig::instant(), system_clock(), cfg);
    assert!(net.wait_for_mesh(TIMEOUT));
    let publisher = net.attach_client(0, "plain-pub").unwrap();
    let far = net.attach_client(2, "plain-far").unwrap();
    far.subscribe(t("/Plain/Topic"), TIMEOUT).unwrap();
    assert!(net
        .broker(0)
        .wait_for_remote_subscription(&t("/Plain/Topic"), TIMEOUT));

    // No trace context ⇒ no TTL: still delivered across both hops.
    publisher
        .publish(t("/Plain/Topic"), Payload::Blob { data: vec![2] })
        .unwrap();
    assert!(far.next_message(TIMEOUT).is_ok());
    assert_eq!(net.broker(2).stats().dropped_ttl, 0);
}

#[test]
fn sampled_messages_leave_a_span_trail_on_every_broker() {
    let cfg = BrokerConfig {
        telemetry: TelemetryConfig {
            sample_ppm: 1_000_000,
            ..TelemetryConfig::default()
        },
        ..BrokerConfig::default()
    };
    let net = BrokerNetwork::chain(2, LinkConfig::instant(), system_clock(), cfg);
    assert!(net.wait_for_mesh(TIMEOUT));
    let publisher = net.attach_client(0, "span-pub").unwrap();
    let sub = net.attach_client(1, "span-sub").unwrap();
    sub.subscribe(t("/Span/Topic"), TIMEOUT).unwrap();
    assert!(net
        .broker(0)
        .wait_for_remote_subscription(&t("/Span/Topic"), TIMEOUT));

    let ctx = TraceContext::root(7, true);
    publisher
        .publish_traced(t("/Span/Topic"), Payload::Blob { data: vec![3] }, ctx)
        .unwrap();
    let delivered = sub.next_message(TIMEOUT).unwrap();
    assert_eq!(
        delivered.trace.map(|c| (c.trace_id, c.hop_count, c.sampled)),
        Some((ctx.trace_id, 1, true)),
        "context must propagate with the hop count incremented"
    );

    // Spans are recorded synchronously in route(), but delivery to the
    // test client can overtake the recorder stores — poll briefly.
    let has = |idx: usize, stage: Stage, hop: u8| {
        let spans = net.broker(idx).flight_recorder().snapshot();
        spans
            .iter()
            .any(|s| s.trace_id == ctx.trace_id && s.stage == stage && s.hop == hop)
    };
    assert!(wait_until(TIMEOUT, || {
        // Origin broker: auth + route + forward at hop 0.
        has(0, Stage::AuthCheck, 0)
            && has(0, Stage::Route, 0)
            && has(0, Stage::Forward, 0)
            // Next broker: auth + route + deliver at hop 1.
            && has(1, Stage::AuthCheck, 1)
            && has(1, Stage::Route, 1)
            && has(1, Stage::Deliver, 1)
    }));
}

#[test]
fn unsampled_messages_record_nothing() {
    let cfg = BrokerConfig {
        telemetry: TelemetryConfig {
            sample_ppm: 0,
            ..TelemetryConfig::default()
        },
        ..BrokerConfig::default()
    };
    let net = BrokerNetwork::chain(1, LinkConfig::instant(), system_clock(), cfg);
    let publisher = net.attach_client(0, "quiet-pub").unwrap();
    let sub = net.attach_client(0, "quiet-sub").unwrap();
    sub.subscribe(t("/Quiet"), TIMEOUT).unwrap();
    publisher
        .publish_traced(
            t("/Quiet"),
            Payload::Blob { data: vec![4] },
            TraceContext::root(0, false),
        )
        .unwrap();
    assert!(sub.next_message(TIMEOUT).is_ok());
    assert_eq!(net.broker(0).flight_recorder().recorded(), 0);
}
