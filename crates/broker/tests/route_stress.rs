//! Concurrent-publish stress for the sharded route cache: many
//! publishers hammer one topic while another client churns
//! subscriptions (invalidating the cache), and every subscriber must
//! still see exactly one copy of every message — no loss, no
//! duplication, per-publisher order preserved.

use nb_broker::network::BrokerNetwork;
use nb_broker::BrokerConfig;
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::{Message, Payload, Topic};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PUBLISHERS: usize = 4;
const PER_PUBLISHER: u32 = 250;

fn topic() -> Topic {
    Topic::parse("/Stress/Fanout").unwrap()
}

/// Drains `expected` messages and checks them off against a
/// per-publisher sequence ledger: every (publisher, seq) pair must
/// arrive exactly once and in increasing seq order per publisher.
fn collect_and_check(sub: &nb_broker::BrokerClient, expected: usize, who: &str) {
    let mut last_seq: HashMap<String, u32> = HashMap::new();
    let mut received = 0usize;
    while received < expected {
        let msg: Message = sub
            .next_message(Duration::from_secs(10))
            .unwrap_or_else(|e| panic!("{who}: lost messages after {received}/{expected}: {e:?}"));
        let Payload::Blob { data } = msg.payload else {
            panic!("{who}: unexpected payload");
        };
        let seq = u32::from_be_bytes(data[..4].try_into().unwrap());
        match last_seq.get(&msg.sender) {
            None => assert_eq!(seq, 0, "{who}: first message from {} out of order", msg.sender),
            Some(&prev) => assert_eq!(
                seq,
                prev + 1,
                "{who}: gap or duplicate from {} (prev {prev}, got {seq})",
                msg.sender
            ),
        }
        last_seq.insert(msg.sender.clone(), seq);
        received += 1;
    }
    assert_eq!(last_seq.len(), PUBLISHERS, "{who}: missing a publisher entirely");
}

#[test]
fn concurrent_publishers_lose_and_duplicate_nothing() {
    let net = Arc::new(BrokerNetwork::chain(
        2,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    ));
    assert!(net.wait_for_mesh(Duration::from_secs(10)));

    let local_sub = net.attach_client(0, "sub-local").unwrap();
    let remote_sub = net.attach_client(1, "sub-remote").unwrap();
    local_sub.subscribe(topic(), Duration::from_secs(10)).unwrap();
    remote_sub.subscribe(topic(), Duration::from_secs(10)).unwrap();
    // Publishing starts only once broker 0 has seen broker 1's advert,
    // otherwise early messages are (correctly) never forwarded.
    assert!(net.broker(0).wait_for_remote_subscription(&topic(), Duration::from_secs(10)));

    // Subscription churn on the hot topic and a cold one, running for
    // the whole publish phase: every cycle bumps the route version and
    // forces the cache to refill mid-traffic.
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let stop = Arc::clone(&stop);
        let churner = net.attach_client(0, "churner").unwrap();
        std::thread::spawn(move || {
            let cold = Topic::parse("/Stress/Cold").unwrap();
            let mut cycles = 0u32;
            while !stop.load(Ordering::Relaxed) || cycles < 20 {
                churner.subscribe(topic(), Duration::from_secs(5)).unwrap();
                churner.subscribe(cold.clone(), Duration::from_secs(5)).unwrap();
                churner.unsubscribe(topic(), Duration::from_secs(5)).unwrap();
                churner.unsubscribe(cold.clone(), Duration::from_secs(5)).unwrap();
                cycles += 1;
            }
        })
    };

    let publishers: Vec<_> = (0..PUBLISHERS)
        .map(|p| {
            let client = net.attach_client(0, &format!("pub-{p}")).unwrap();
            std::thread::spawn(move || {
                for seq in 0..PER_PUBLISHER {
                    client
                        .publish(topic(), Payload::Blob { data: seq.to_be_bytes().to_vec() })
                        .unwrap();
                }
            })
        })
        .collect();
    for p in publishers {
        p.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();

    let expected = PUBLISHERS * PER_PUBLISHER as usize;
    collect_and_check(&local_sub, expected, "local subscriber");
    collect_and_check(&remote_sub, expected, "remote subscriber");

    // Nothing further may arrive: a duplicate would surface here.
    assert!(local_sub.next_message(Duration::from_millis(200)).is_err());
    assert!(remote_sub.next_message(Duration::from_millis(200)).is_err());

    // The overhaul must actually be exercised: steady-state publishes
    // ride the fast path, and churn forces stale-entry refills.
    let snap = net.broker(0).metrics_snapshot();
    let fast = snap.counter("broker.route.fastpath").unwrap_or(0);
    assert!(
        fast >= expected as u64,
        "fast path barely used: {fast} of {expected} publishes"
    );
}
