//! Concurrent-publish stress for the sharded route cache: many
//! publishers hammer one topic while another client churns
//! subscriptions (invalidating the cache), and every subscriber must
//! still see exactly one copy of every message — no loss, no
//! duplication, per-publisher order preserved.

use nb_broker::network::BrokerNetwork;
use nb_broker::BrokerConfig;
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::{Message, Payload, Topic};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PUBLISHERS: usize = 4;
const PER_PUBLISHER: u32 = 250;

fn topic() -> Topic {
    Topic::parse("/Stress/Fanout").unwrap()
}

/// Drains `expected` messages and checks them off against a
/// per-publisher sequence ledger: every (publisher, seq) pair must
/// arrive exactly once and in increasing seq order per publisher,
/// across exactly `senders` distinct publishers.
fn collect_from(sub: &nb_broker::BrokerClient, expected: usize, senders: usize, who: &str) {
    let mut last_seq: HashMap<String, u32> = HashMap::new();
    let mut received = 0usize;
    while received < expected {
        let msg: Message = sub
            .next_message(Duration::from_secs(10))
            .unwrap_or_else(|e| panic!("{who}: lost messages after {received}/{expected}: {e:?}"));
        let Payload::Blob { data } = msg.payload else {
            panic!("{who}: unexpected payload");
        };
        let seq = u32::from_be_bytes(data[..4].try_into().unwrap());
        match last_seq.get(&msg.sender) {
            None => assert_eq!(seq, 0, "{who}: first message from {} out of order", msg.sender),
            Some(&prev) => assert_eq!(
                seq,
                prev + 1,
                "{who}: gap or duplicate from {} (prev {prev}, got {seq})",
                msg.sender
            ),
        }
        last_seq.insert(msg.sender.clone(), seq);
        received += 1;
    }
    assert_eq!(last_seq.len(), senders, "{who}: missing a publisher entirely");
}

/// See [`collect_from`] — the common case with `PUBLISHERS` senders.
fn collect_and_check(sub: &nb_broker::BrokerClient, expected: usize, who: &str) {
    collect_from(sub, expected, PUBLISHERS, who);
}

#[test]
fn concurrent_publishers_lose_and_duplicate_nothing() {
    let net = Arc::new(BrokerNetwork::chain(
        2,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    ));
    assert!(net.wait_for_mesh(Duration::from_secs(10)));

    let local_sub = net.attach_client(0, "sub-local").unwrap();
    let remote_sub = net.attach_client(1, "sub-remote").unwrap();
    local_sub.subscribe(topic(), Duration::from_secs(10)).unwrap();
    remote_sub.subscribe(topic(), Duration::from_secs(10)).unwrap();
    // Publishing starts only once broker 0 has seen broker 1's advert,
    // otherwise early messages are (correctly) never forwarded.
    assert!(net.broker(0).wait_for_remote_subscription(&topic(), Duration::from_secs(10)));

    // Subscription churn on the hot topic and a cold one, running for
    // the whole publish phase: every cycle bumps the route version and
    // forces the cache to refill mid-traffic.
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let stop = Arc::clone(&stop);
        let churner = net.attach_client(0, "churner").unwrap();
        std::thread::spawn(move || {
            let cold = Topic::parse("/Stress/Cold").unwrap();
            let mut cycles = 0u32;
            while !stop.load(Ordering::Relaxed) || cycles < 20 {
                churner.subscribe(topic(), Duration::from_secs(5)).unwrap();
                churner.subscribe(cold.clone(), Duration::from_secs(5)).unwrap();
                churner.unsubscribe(topic(), Duration::from_secs(5)).unwrap();
                churner.unsubscribe(cold.clone(), Duration::from_secs(5)).unwrap();
                cycles += 1;
            }
        })
    };

    let publishers: Vec<_> = (0..PUBLISHERS)
        .map(|p| {
            let client = net.attach_client(0, &format!("pub-{p}")).unwrap();
            std::thread::spawn(move || {
                for seq in 0..PER_PUBLISHER {
                    client
                        .publish(topic(), Payload::Blob { data: seq.to_be_bytes().to_vec() })
                        .unwrap();
                }
            })
        })
        .collect();
    for p in publishers {
        p.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();

    let expected = PUBLISHERS * PER_PUBLISHER as usize;
    collect_and_check(&local_sub, expected, "local subscriber");
    collect_and_check(&remote_sub, expected, "remote subscriber");

    // Nothing further may arrive: a duplicate would surface here.
    assert!(local_sub.next_message(Duration::from_millis(200)).is_err());
    assert!(remote_sub.next_message(Duration::from_millis(200)).is_err());

    // The overhaul must actually be exercised: steady-state publishes
    // ride the fast path, and churn forces stale-entry refills.
    let snap = net.broker(0).metrics_snapshot();
    let fast = snap.counter("broker.route.fastpath").unwrap_or(0);
    assert!(
        fast >= expected as u64,
        "fast path barely used: {fast} of {expected} publishes"
    );
}

/// A subscriber that unsubscribes (and re-points its subscription at
/// another topic) in the middle of a flood must never receive another
/// hot-topic message once the broker acknowledges the change — cached
/// route entries from before the change are stale and must not be
/// served.
#[test]
fn mid_flood_unsubscribe_never_delivers_to_a_stale_subscriber() {
    let net = Arc::new(BrokerNetwork::chain(
        2,
        LinkConfig::instant(),
        system_clock(),
        BrokerConfig::default(),
    ));
    assert!(net.wait_for_mesh(Duration::from_secs(10)));
    let cold = Topic::parse("/Stress/Cold").unwrap();

    // The keeper (remote, so neighbor forwarding stays hot) holds the
    // subscription for the whole flood and must see every message; the
    // victim drops out mid-flood and must see none after the ack.
    let keeper = net.attach_client(1, "keeper").unwrap();
    let victim = net.attach_client(0, "victim").unwrap();
    keeper.subscribe(topic(), Duration::from_secs(10)).unwrap();
    victim.subscribe(topic(), Duration::from_secs(10)).unwrap();
    assert!(net.broker(0).wait_for_remote_subscription(&topic(), Duration::from_secs(10)));

    let publishers: Vec<_> = (0..PUBLISHERS)
        .map(|p| {
            let client = net.attach_client(0, &format!("pub-{p}")).unwrap();
            std::thread::spawn(move || {
                for seq in 0..PER_PUBLISHER {
                    client
                        .publish(topic(), Payload::Blob { data: seq.to_be_bytes().to_vec() })
                        .unwrap();
                }
            })
        })
        .collect();

    // Mid-flood: the victim proves it is receiving, then changes its
    // subscription policy — off the hot topic, onto the cold one.
    for _ in 0..100 {
        victim.next_message(Duration::from_secs(10)).expect("victim receives mid-flood");
    }
    victim.unsubscribe(topic(), Duration::from_secs(10)).unwrap();
    victim.subscribe(cold.clone(), Duration::from_secs(10)).unwrap();

    // Drain deliveries routed before the ack (already queued or in
    // flight on the instant links) until the victim's queue goes quiet.
    while victim.next_message(Duration::from_millis(300)).is_ok() {}

    for p in publishers {
        p.join().unwrap();
    }

    // Guaranteed post-ack traffic: a fresh publisher floods the hot
    // topic (rebuilding the route cache entry), then marks the cold
    // topic so the victim's new subscription proves live.
    let late = net.attach_client(0, "pub-late").unwrap();
    for seq in 0..200u32 {
        late.publish(topic(), Payload::Blob { data: seq.to_be_bytes().to_vec() })
            .unwrap();
    }
    late.publish(cold.clone(), Payload::Blob { data: u32::MAX.to_be_bytes().to_vec() })
        .unwrap();

    // The victim sees exactly the cold marker — zero stale hot-topic
    // deliveries — and then nothing.
    let marker = victim.next_message(Duration::from_secs(10)).expect("cold marker arrives");
    assert_eq!(marker.topic, cold, "stale delivery after unsubscribe ack");
    assert!(
        victim.next_message(Duration::from_millis(500)).is_err(),
        "victim received hot-topic traffic after unsubscribing"
    );

    // The keeper saw the entire flood exactly once: the cache
    // invalidation dropped the victim without perturbing routing.
    let expected = PUBLISHERS * PER_PUBLISHER as usize + 200;
    collect_from(&keeper, expected, PUBLISHERS + 1, "keeper");
    assert!(keeper.next_message(Duration::from_millis(200)).is_err());

    // The unsubscribe/resubscribe really did invalidate cached routes.
    let snap = net.broker(0).metrics_snapshot();
    let stale = snap.counter("broker.route.cache_stale").unwrap_or(0);
    assert!(stale > 0, "no cached route entry was ever invalidated");
}
