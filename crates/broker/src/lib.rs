//! # nb-broker — the publish/subscribe broker network
//!
//! A NaradaBrokering-style distributed message-oriented middleware
//! (paper §2): cooperating broker nodes route topic-addressed messages
//! from producers to exactly the consumers that registered interest.
//! Entities attach to one broker and funnel all their traffic through
//! it; brokers propagate subscription interest to their neighbours and
//! forward content along links with matching interest.
//!
//! On top of plain routing this crate enforces the paper's security
//! machinery at the substrate level:
//!
//! * **constrained topics** (§3.1): publish/subscribe attempts by
//!   non-constrainers are refused,
//! * **authorization tokens** (§4.3/§5.2): broker-published traces on
//!   `Publish-Only` trace topics must carry a token; messages arriving
//!   from neighbours without one are discarded and never routed,
//! * **DoS containment** (§5.2): clients making repeated bogus
//!   attempts are disconnected.
//!
//! Topology note: subscription propagation assumes an acyclic broker
//! mesh (chains, stars, trees — the shapes used in the paper's
//! benchmarks). Cycles would need a spanning-tree protocol, which the
//! paper does not describe; as a backstop, messages carrying a causal
//! trace context are TTL-checked against `BrokerConfig::max_hops`, so
//! an accidental loop drops traffic (counted in
//! `broker.drop.ttl_exceeded`) instead of amplifying it forever.
//!
//! Routing is also instrumented for causal tracing: brokers record
//! auth/route/deliver/enqueue/forward spans for sampled messages into
//! a per-instance `nb_telemetry::FlightRecorder` (see
//! `docs/OBSERVABILITY.md`, "Causal tracing").

pub mod client;
pub mod discovery;
pub mod error;
pub mod network;
pub mod node;
pub mod persist;
mod route;
pub mod subscription;

pub use client::BrokerClient;
pub use error::BrokerError;
pub use node::{Broker, BrokerConfig};
pub use subscription::SubscriptionTable;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, BrokerError>;
