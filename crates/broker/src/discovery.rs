//! Broker discovery (Ref \[3\] of the paper).
//!
//! Entities must "securely discover a valid broker within the broker
//! network" before registering for tracing. We model the discovery
//! service as a directory of **signed broker records**: each broker
//! registers a certificate issued by the deployment CA together with
//! its advertised load; entities pick the least-loaded broker whose
//! certificate chains to the CA.

use crate::Result;
use nb_crypto::cert::Certificate;
use nb_crypto::rsa::RsaPublicKey;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A broker's directory entry.
#[derive(Debug, Clone)]
pub struct BrokerRecord {
    /// Broker identifier (matches [`crate::Broker::id`]).
    pub broker_id: String,
    /// The broker's CA-issued certificate.
    pub certificate: Certificate,
    /// Advertised load (attached clients); lower is preferred.
    pub load: usize,
}

/// An in-process broker directory.
///
/// Cheap to clone; all clones share state (the directory is a logical
/// singleton service in a deployment).
#[derive(Clone, Default)]
pub struct BrokerDirectory {
    records: Arc<RwLock<HashMap<String, BrokerRecord>>>,
}

impl BrokerDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or refreshes) a broker record.
    pub fn register(&self, record: BrokerRecord) {
        self.records
            .write()
            .insert(record.broker_id.clone(), record);
    }

    /// Removes a broker (failure or shutdown).
    pub fn deregister(&self, broker_id: &str) {
        self.records.write().remove(broker_id);
    }

    /// Updates a broker's advertised load.
    pub fn update_load(&self, broker_id: &str, load: usize) {
        if let Some(r) = self.records.write().get_mut(broker_id) {
            r.load = load;
        }
    }

    /// Secure discovery: returns the least-loaded broker whose
    /// certificate verifies against `ca_key` at `now_ms`, or `None`
    /// when no valid broker exists.
    pub fn discover(&self, ca_key: &RsaPublicKey, now_ms: u64) -> Option<BrokerRecord> {
        self.records
            .read()
            .values()
            .filter(|r| r.certificate.verify(ca_key, now_ms).is_ok())
            .min_by_key(|r| r.load)
            .cloned()
    }

    /// Looks up a specific broker, verifying its certificate.
    pub fn lookup(
        &self,
        broker_id: &str,
        ca_key: &RsaPublicKey,
        now_ms: u64,
    ) -> Result<Option<BrokerRecord>> {
        let records = self.records.read();
        match records.get(broker_id) {
            None => Ok(None),
            Some(r) => {
                r.certificate
                    .verify(ca_key, now_ms)
                    .map_err(nb_wire::WireError::Crypto)?;
                Ok(Some(r.clone()))
            }
        }
    }

    /// Number of registered brokers.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_crypto::cert::{CertificateAuthority, Validity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const NOW: u64 = 1_700_000_000_000;

    fn setup() -> (CertificateAuthority, BrokerDirectory) {
        let mut rng = StdRng::seed_from_u64(31);
        let ca = CertificateAuthority::new(
            "ca",
            512,
            Validity::starting_now(NOW - 1000, 1 << 40),
            &mut rng,
        )
        .unwrap();
        (ca, BrokerDirectory::new())
    }

    fn record(ca: &mut CertificateAuthority, id: &str, load: usize) -> BrokerRecord {
        let mut rng = StdRng::seed_from_u64(id.len() as u64 * 7 + load as u64);
        let cred = ca
            .issue(
                &format!("broker:{id}"),
                Validity::starting_now(NOW - 1000, 1 << 40),
                &mut rng,
            )
            .unwrap();
        BrokerRecord {
            broker_id: id.to_string(),
            certificate: cred.certificate,
            load,
        }
    }

    #[test]
    fn discovery_prefers_least_loaded() {
        let (mut ca, dir) = setup();
        dir.register(record(&mut ca, "b1", 10));
        dir.register(record(&mut ca, "b2", 3));
        dir.register(record(&mut ca, "b3", 7));
        let ca_key = ca.certificate().public_key.clone();
        let found = dir.discover(&ca_key, NOW).unwrap();
        assert_eq!(found.broker_id, "b2");
    }

    #[test]
    fn brokers_with_invalid_certificates_are_skipped() {
        let (mut ca, dir) = setup();
        let mut bad = record(&mut ca, "bad", 0);
        bad.certificate.subject = "broker:imposter".to_string(); // breaks signature
        dir.register(bad);
        dir.register(record(&mut ca, "good", 99));
        let ca_key = ca.certificate().public_key.clone();
        assert_eq!(dir.discover(&ca_key, NOW).unwrap().broker_id, "good");
    }

    #[test]
    fn empty_directory_discovers_nothing() {
        let (ca, dir) = setup();
        assert!(dir.is_empty());
        assert!(dir
            .discover(&ca.certificate().public_key, NOW)
            .is_none());
    }

    #[test]
    fn load_updates_shift_preference() {
        let (mut ca, dir) = setup();
        dir.register(record(&mut ca, "b1", 1));
        dir.register(record(&mut ca, "b2", 2));
        let ca_key = ca.certificate().public_key.clone();
        assert_eq!(dir.discover(&ca_key, NOW).unwrap().broker_id, "b1");
        dir.update_load("b1", 50);
        assert_eq!(dir.discover(&ca_key, NOW).unwrap().broker_id, "b2");
    }

    #[test]
    fn deregistration_removes_brokers() {
        let (mut ca, dir) = setup();
        dir.register(record(&mut ca, "b1", 1));
        assert_eq!(dir.len(), 1);
        dir.deregister("b1");
        assert!(dir.is_empty());
    }

    #[test]
    fn lookup_verifies_certificates() {
        let (mut ca, dir) = setup();
        dir.register(record(&mut ca, "b1", 1));
        let ca_key = ca.certificate().public_key.clone();
        assert!(dir.lookup("b1", &ca_key, NOW).unwrap().is_some());
        assert!(dir.lookup("nope", &ca_key, NOW).unwrap().is_none());
        // Expired view of the world: verification fails.
        assert!(dir.lookup("b1", &ca_key, u64::MAX).is_err());
    }

    #[test]
    fn clones_share_state() {
        let (mut ca, dir) = setup();
        let dir2 = dir.clone();
        dir.register(record(&mut ca, "b1", 1));
        assert_eq!(dir2.len(), 1);
    }
}
