//! Client-side handle for talking to a broker.
//!
//! `BrokerClient` wraps an [`Endpoint`] with the attach handshake,
//! acknowledged subscribe/unsubscribe, and message construction.
//!
//! **Threading contract:** request/response helpers
//! ([`BrokerClient::subscribe`] etc.) and [`BrokerClient::next_message`]
//! both read from the same link. Perform setup (attach, subscribes)
//! before spawning any receive pump; afterwards, consume exclusively
//! through [`BrokerClient::next_message`].

use crate::error::BrokerError;
use crate::Result;
use nb_telemetry::TraceContext;
use nb_transport::clock::SharedClock;
use nb_transport::endpoint::Endpoint;
use nb_transport::TransportError;
use nb_wire::codec::{Decode, Encode};
use nb_wire::{Message, Payload, Topic};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A connected, attached broker client.
pub struct BrokerClient {
    id: String,
    endpoint: Endpoint,
    clock: SharedClock,
    next_id: AtomicU64,
    /// Messages received while waiting for a correlated response.
    stash: Mutex<VecDeque<Message>>,
}

impl BrokerClient {
    /// Attaches to a broker over `endpoint` as `client_id`, blocking
    /// until the broker acknowledges.
    pub fn attach(
        endpoint: Endpoint,
        client_id: impl Into<String>,
        clock: SharedClock,
        timeout: Duration,
    ) -> Result<Self> {
        let client = BrokerClient {
            id: client_id.into(),
            endpoint,
            clock,
            next_id: AtomicU64::new(1),
            stash: Mutex::new(VecDeque::new()),
        };
        // Control messages may be lost on unreliable links; retry a
        // few times within the overall timeout.
        let attempts = 16u32;
        let per_attempt = timeout / attempts;
        let mut last_err = BrokerError::Timeout;
        for _ in 0..attempts {
            let msg = client.make_message(
                Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
                Payload::Attach {
                    client_id: client.id.clone(),
                },
            );
            let id = msg.id;
            client.endpoint.send(&msg.to_bytes())?;
            match client.wait_correlated(id, per_attempt) {
                Ok(reply) => {
                    return match reply.payload {
                        Payload::Ack => Ok(client),
                        Payload::Nack { reason } => Err(BrokerError::Refused(reason)),
                        _ => Err(BrokerError::Refused("unexpected attach reply".into())),
                    }
                }
                Err(BrokerError::Timeout) => {
                    last_err = BrokerError::Timeout;
                    continue;
                }
                Err(other) => return Err(other),
            }
        }
        Err(last_err)
    }

    /// This client's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Builds a message from this client with a fresh id and current
    /// timestamp.
    pub fn make_message(&self, topic: Topic, payload: Payload) -> Message {
        Message::new(
            self.next_id.fetch_add(1, Ordering::Relaxed),
            topic,
            self.id.clone(),
            self.clock.now_ms(),
            payload,
        )
    }

    /// Subscribes to `filter`, blocking for the broker's verdict.
    /// A `Nack` means the constrained topic refused this subscriber.
    /// Retries on loss (subscription registration is idempotent).
    pub fn subscribe(&self, filter: Topic, timeout: Duration) -> Result<()> {
        self.control_with_retry(timeout, || Payload::Subscribe {
            filter: filter.clone(),
        })
    }

    /// Removes a subscription, blocking for the acknowledgement.
    pub fn unsubscribe(&self, filter: Topic, timeout: Duration) -> Result<()> {
        self.control_with_retry(timeout, || Payload::Unsubscribe {
            filter: filter.clone(),
        })
    }

    fn control_with_retry(
        &self,
        timeout: Duration,
        mut make_payload: impl FnMut() -> Payload,
    ) -> Result<()> {
        let attempts = 16u32;
        let per_attempt = timeout / attempts;
        let mut last_err = BrokerError::Timeout;
        for _ in 0..attempts {
            let msg = self.make_message(
                Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
                make_payload(),
            );
            let id = msg.id;
            self.endpoint.send(&msg.to_bytes())?;
            match self.wait_correlated(id, per_attempt) {
                Ok(reply) => {
                    return match reply.payload {
                        Payload::Ack => Ok(()),
                        Payload::Nack { reason } => Err(BrokerError::Refused(reason)),
                        _ => Err(BrokerError::Refused("unexpected control reply".into())),
                    }
                }
                Err(BrokerError::Timeout) => {
                    last_err = BrokerError::Timeout;
                    continue;
                }
                Err(other) => return Err(other),
            }
        }
        Err(last_err)
    }

    /// Publishes a payload on `topic` (fire-and-forget). Returns the
    /// message id.
    pub fn publish(&self, topic: Topic, payload: Payload) -> Result<u64> {
        let msg = self.make_message(topic, payload);
        let id = msg.id;
        self.endpoint.send(&msg.to_bytes())?;
        Ok(id)
    }

    /// Publishes a payload carrying a causal trace context, so brokers
    /// along the path record spans (when sampled) and enforce the
    /// hop-count TTL. Returns the message id.
    pub fn publish_traced(
        &self,
        topic: Topic,
        payload: Payload,
        trace: TraceContext,
    ) -> Result<u64> {
        let msg = self.make_message(topic, payload).with_trace(trace);
        let id = msg.id;
        self.endpoint.send(&msg.to_bytes())?;
        Ok(id)
    }

    /// Sends a fully prepared message (signed, tokened, …).
    pub fn send_message(&self, msg: &Message) -> Result<()> {
        self.endpoint.send(&msg.to_bytes())?;
        Ok(())
    }

    /// Receives the next routed message (stashed messages first).
    pub fn next_message(&self, timeout: Duration) -> Result<Message> {
        if let Some(m) = self.stash.lock().pop_front() {
            return Ok(m);
        }
        let frame = self.endpoint.recv_timeout(timeout)?;
        Ok(Message::from_bytes(&frame)?)
    }

    fn wait_correlated(&self, request_id: u64, timeout: Duration) -> Result<Message> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(BrokerError::Timeout);
            }
            let frame = self.endpoint.recv_timeout(remaining).map_err(|e| match e {
                TransportError::Timeout => BrokerError::Timeout,
                other => BrokerError::Transport(other),
            })?;
            let msg = Message::from_bytes(&frame)?;
            if msg.correlation_id == request_id {
                return Ok(msg);
            }
            self.stash.lock().push_back(msg);
        }
    }
}

impl std::fmt::Debug for BrokerClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BrokerClient({})", self.id)
    }
}
