//! The broker node: client attachment, neighbour links, routing,
//! constrained-topic enforcement, token checks, and DoS containment.

use crate::error::BrokerError;
use crate::persist::{BrokerDurableState, BrokerOp};
use crate::route::{ClientDest, NeighborDest, RouteCache, RouteEntry, TopicPolicy};
use crate::subscription::SubscriptionTable;
use crate::Result;
use crossbeam::channel::{unbounded, Receiver, Sender};
use nb_crypto::rsa::RsaPublicKey;
use nb_crypto::{SessionKey, SessionKeyring, SessionVerdict, Uuid};
use nb_metrics::{Counter, Gauge, Registry, Snapshot};
use nb_telemetry::{now_ns, FlightRecorder, SpanEvent, Stage, TelemetryConfig, TraceContext};
use nb_transport::clock::SharedClock;
use nb_transport::endpoint::{Endpoint, FrameSender};
use nb_transport::supervisor::{Connector, LinkState, LinkStats, LinkSupervisor, SupervisorConfig};
use nb_wire::codec::{Decode, Encode};
use nb_wire::constrained::{Action, Actor, AllowedActions, ConstrainedTopic, EventType};
use nb_wire::token::Rights;
use nb_wire::payload::is_control_tag;
use nb_wire::view::TopicView;
use nb_monitor::{DeliveryEvent, MonitorSet, TokenSource, TopicRef};
use nb_obs::{NodeKind, PublisherConfig, TelemetryPublisher};
use nb_store::{Durable, DurableState, Recovery, StoreConfig};
use nb_wire::{Message, MessageView, Payload, Topic};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Broker tuning knobs.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// §5.2: after this many bogus attempts a client is disconnected.
    pub bogus_attempt_limit: u32,
    /// Clock-skew tolerance for token validity windows (the paper
    /// assumes NTP keeps clocks within 30–100 ms).
    pub token_skew_ms: u64,
    /// Enforce authorization tokens on broker-published trace topics.
    pub require_tokens: bool,
    /// Interval for subscription anti-entropy: each broker
    /// periodically re-advertises its full filter set to every
    /// neighbour, repairing adverts lost on unreliable links. `None`
    /// disables the refresher.
    pub advert_refresh: Option<std::time::Duration>,
    /// Routing TTL: a message whose `TraceContext.hop_count` exceeds
    /// this after a neighbour-ingress increment is dropped (and
    /// counted in `broker.drop.ttl_exceeded`) instead of forwarded,
    /// closing the forwarding-loop hazard. Messages without a trace
    /// context are not TTL-checked.
    pub max_hops: u8,
    /// Causal-tracing knobs for this broker's flight recorder (see
    /// `docs/OBSERVABILITY.md`, "Causal tracing").
    pub telemetry: TelemetryConfig,
    /// Link-failure fault tolerance: when set, every client and
    /// neighbour endpoint is wrapped in a
    /// [`LinkSupervisor`] that detects send/recv failure, buffers
    /// outbound frames (bounded, drop-oldest) during the outage, and
    /// reconnects with capped, jittered backoff. `None` keeps the
    /// historical behaviour (a failed link tears its worker down).
    pub link_supervision: Option<SupervisorConfig>,
    /// Data-plane route cache (see `docs/PERFORMANCE.md`): when `true`
    /// (the default), steady-state data frames are routed through a
    /// sharded per-topic cache without decoding the envelope or taking
    /// the broker state lock. `false` forces every frame through the
    /// full decode-parse-match path — useful for A/B measurement and
    /// as an escape hatch.
    pub data_plane_cache: bool,
    /// Durability: when set, the broker journals its control plane
    /// (local subscriptions, trace-topic owner keys) to a write-ahead
    /// log + snapshot under this directory and recovers it on
    /// construction — a restarted broker re-advertises the recovered
    /// filters during the neighbour handshake and resumes deliveries
    /// to re-attaching clients. `None` (the default) keeps the broker
    /// fully in-memory. See `docs/ARCHITECTURE.md`, "Durability".
    pub data_dir: Option<PathBuf>,
    /// Tuning for the durable store (checkpoint interval, fsync
    /// policy). Only consulted when [`BrokerConfig::data_dir`] is set.
    pub store: StoreConfig,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            bogus_attempt_limit: 3,
            token_skew_ms: 100,
            require_tokens: true,
            advert_refresh: Some(std::time::Duration::from_millis(500)),
            max_hops: 16,
            telemetry: TelemetryConfig::default(),
            link_supervision: None,
            data_plane_cache: true,
            data_dir: None,
            store: StoreConfig::default(),
        }
    }
}

/// Cached handles on the broker's per-instance metrics registry.
///
/// The named counters are the hot-path metrics; gauges (client,
/// neighbour, subscription and queue sizes) are sampled lazily in
/// [`Broker::metrics_snapshot`]. Metric names are catalogued in
/// `docs/OBSERVABILITY.md` under the `broker.*` family.
#[derive(Debug)]
struct BrokerMetrics {
    registry: Registry,
    /// Messages accepted for routing (client + internal publishes).
    published: Counter,
    /// Messages handed to local consumers.
    delivered_local: Counter,
    /// Messages forwarded to neighbouring brokers.
    forwarded: Counter,
    /// Publish/subscribe attempts refused by constraint checks.
    rejected: Counter,
    /// Spurious traces dropped for missing/invalid tokens (§5.2).
    dropped_spurious: Counter,
    /// Messages dropped because their hop count exceeded
    /// [`BrokerConfig::max_hops`].
    dropped_ttl: Counter,
    /// Clients disconnected for repeated bogus attempts.
    terminated_clients: Counter,
    /// Trace frames authenticated by a session-key MAC instead of the
    /// RSA token path (fast and slow path combined).
    session_verified: Counter,
    /// Session-tagged frames that fell back to the RSA token checks
    /// (unknown or expired key id — e.g. the publisher rotated first).
    session_fallback: Counter,
    /// Session-tagged frames dropped for a bad MAC or a key bound to a
    /// different trace topic.
    session_rejected: Counter,
    /// Session-tagged frames dropped because their key was revoked
    /// (each is also reported to an attached monitor).
    session_revoked_dropped: Counter,
    /// Condvar wake-ups inside [`Broker::wait_for_neighbors`].
    neighbor_wait_wakeups: Counter,
    /// Condvar wake-ups inside [`Broker::wait_for_remote_subscription`].
    subscription_wait_wakeups: Counter,
    /// Supervised links that completed a repair cycle and returned to
    /// Up (one increment per Down → Up recovery).
    link_reconnects: Counter,
    /// Every supervised link-state transition (Up → Degraded, …).
    link_state_changes: Counter,
    /// Supervised links observed leaving the Up state.
    link_down_events: Counter,
    clients: Gauge,
    neighbors: Gauge,
    subs_local: Gauge,
    subs_remote: Gauge,
    queue_depth: Gauge,
    links_supervised: Gauge,
}

impl BrokerMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        BrokerMetrics {
            published: registry.counter("broker.publish.accepted"),
            delivered_local: registry.counter("broker.deliver.local"),
            forwarded: registry.counter("broker.forward.neighbor"),
            rejected: registry.counter("broker.reject.constraint"),
            dropped_spurious: registry.counter("broker.drop.spurious_token"),
            dropped_ttl: registry.counter("broker.drop.ttl_exceeded"),
            terminated_clients: registry.counter("broker.client.terminated"),
            session_verified: registry.counter("broker.session.verified"),
            session_fallback: registry.counter("broker.session.fallback"),
            session_rejected: registry.counter("broker.session.rejected"),
            session_revoked_dropped: registry.counter("broker.session.revoked_drop"),
            neighbor_wait_wakeups: registry.counter("broker.neighbor_wait.wakeups"),
            subscription_wait_wakeups: registry.counter("broker.subscription_wait.wakeups"),
            link_reconnects: registry.counter("broker.link.reconnects"),
            link_state_changes: registry.counter("broker.link.state_changes"),
            link_down_events: registry.counter("broker.link.down_events"),
            clients: registry.gauge("broker.clients"),
            neighbors: registry.gauge("broker.neighbors"),
            subs_local: registry.gauge("broker.subscriptions.local"),
            subs_remote: registry.gauge("broker.subscriptions.remote"),
            queue_depth: registry.gauge("broker.queue.internal_depth"),
            links_supervised: registry.gauge("broker.links.supervised"),
            registry,
        }
    }

    /// Per-event-type publish counter (`broker.publish.topic.<family>`).
    fn published_for(&self, family: &str) -> Counter {
        self.registry.counter(&format!("broker.publish.topic.{family}"))
    }

    /// Per-event-type delivery counter (`broker.deliver.topic.<family>`).
    fn delivered_for(&self, family: &str) -> Counter {
        self.registry.counter(&format!("broker.deliver.topic.{family}"))
    }
}

/// Bounded-cardinality label for per-topic counters: the constrained
/// topic's event-type segment, or `plain` for unconstrained topics.
fn topic_family(constrained: &Option<ConstrainedTopic>) -> &str {
    match constrained {
        Some(c) => match &c.event_type {
            EventType::RealTime => "RealTime",
            EventType::Traces => "Traces",
            EventType::Other(s) => s.as_str(),
        },
        None => "plain",
    }
}

/// Point-in-time copy of a broker's core routing counters (see
/// [`Broker::stats`]). The full instrumented view — including the
/// per-topic-family splits and the gauges — is
/// [`Broker::metrics_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Publishes accepted into routing (`broker.publish.accepted`).
    pub published: u64,
    /// Deliveries to local consumers (`broker.deliver.local`).
    pub delivered_local: u64,
    /// Messages forwarded to neighbour brokers (`broker.forward.neighbor`).
    pub forwarded: u64,
    /// Publish/subscribe attempts refused by constrained-topic rules
    /// (`broker.reject.constraint`).
    pub rejected: u64,
    /// Trace publications dropped for a missing, expired or forged
    /// token (`broker.drop.spurious_token`).
    pub dropped_spurious: u64,
    /// Messages dropped by the hop-count TTL
    /// (`broker.drop.ttl_exceeded`).
    pub dropped_ttl: u64,
    /// Clients disconnected by DoS containment (`broker.client.terminated`).
    pub terminated_clients: u64,
}

struct ClientHandle {
    sender: Arc<dyn FrameSender>,
    bogus: u32,
    /// Shared with the client's worker thread and any cached route
    /// entries, so termination takes effect immediately without a
    /// state-lock check per frame.
    terminated: Arc<AtomicBool>,
}

struct State {
    clients: HashMap<String, ClientHandle>,
    neighbors: HashMap<String, Arc<dyn FrameSender>>,
    subs: SubscriptionTable,
    internal: HashMap<String, Sender<Message>>,
    owner_keys: HashMap<Uuid, RsaPublicKey>,
    /// Rate limiter for hello replies (prevents two registered peers
    /// from bouncing hellos forever).
    hello_replied_ms: HashMap<String, u64>,
}

struct Inner {
    id: String,
    clock: SharedClock,
    config: BrokerConfig,
    state: Mutex<State>,
    /// Notified whenever the neighbour table changes (see
    /// [`Broker::wait_for_neighbors`]).
    neighbor_cv: Condvar,
    /// Notified whenever the subscription table gains an entry (see
    /// [`Broker::wait_for_remote_subscription`]).
    subs_cv: Condvar,
    metrics: BrokerMetrics,
    /// Sharded per-topic route cache backing the data-plane fast path
    /// (see `crate::route`).
    routes: RouteCache,
    /// Per-broker causal-tracing span ring.
    recorder: FlightRecorder,
    msg_seq: AtomicU64,
    /// Live supervisors for every wrapped link (kept so the repair
    /// threads stay alive and their stats stay inspectable).
    supervisors: Mutex<Vec<LinkSupervisor>>,
    /// Notified on every supervised-link state transition (see
    /// [`Broker::wait_for_link_stats`]).
    link_cv: Condvar,
    /// Fast gate for the monitor tap: one relaxed load on the data
    /// plane when no monitor is attached.
    monitor_on: AtomicBool,
    /// The attached runtime-verification monitor, if any (see
    /// [`Broker::attach_monitor`]).
    monitor: RwLock<Option<MonitorSet>>,
    /// Session keys negotiated for this broker's trace topics (see
    /// [`Broker::install_session_key`]): frames tagged under a live
    /// key authenticate with one HMAC instead of the RSA token chain.
    /// Shared by reference with the hosting tracing engine.
    session_keys: Arc<SessionKeyring>,
    /// The durable store (WAL + snapshots) and its replay mirror, when
    /// [`BrokerConfig::data_dir`] is set. Off the data plane: only
    /// control-plane mutations take this lock.
    persist: Mutex<Option<PersistHandle>>,
    /// What recovery found on construction (`None` without a data
    /// dir).
    recovery: Option<Recovery>,
}

/// The durable store plus the mirror state it checkpoints from.
///
/// The mirror duplicates the subscription/owner-key view held in
/// [`State`] rather than borrowing it: checkpoints then never contend
/// with the routing lock, at the cost of a second (small,
/// control-plane-sized) copy.
struct PersistHandle {
    durable: Durable<BrokerDurableState>,
    mirror: BrokerDurableState,
}

/// Journals one control-plane op (no-op without a data dir).
/// Write-ahead: the op is appended before the mirror applies it, and a
/// checkpoint fires once enough ops accumulate.
fn journal(inner: &Inner, op: BrokerOp) {
    let mut guard = inner.persist.lock();
    if let Some(p) = guard.as_mut() {
        if p.durable.record(&op).is_ok() {
            p.mirror.apply(op);
            let _ = p.durable.maybe_checkpoint(&p.mirror);
        }
    }
}

/// Where a message entered this broker.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Origin {
    Client(String),
    Neighbor(String),
    Internal,
}

/// A broker node. Cheap to clone (shared internals).
#[derive(Clone)]
pub struct Broker {
    inner: Arc<Inner>,
}

impl Broker {
    /// Creates a broker with the given identifier and clock.
    pub fn new(id: impl Into<String>, clock: SharedClock, config: BrokerConfig) -> Self {
        let id = id.into();
        let recorder = FlightRecorder::new(id.clone(), config.telemetry.capacity);
        let metrics = BrokerMetrics::new();
        let routes = RouteCache::new(&metrics.registry);

        // Crash recovery: reopen the durable store (if configured) and
        // re-install the recovered control plane *before* any link
        // exists — the neighbour handshake then re-advertises the
        // recovered filters, and re-attaching clients resume
        // deliveries without re-subscribing.
        let mut subs = SubscriptionTable::new();
        let mut owner_keys = HashMap::new();
        let mut persist = None;
        let mut recovery = None;
        if let Some(dir) = &config.data_dir {
            match Durable::<BrokerDurableState>::open(dir, "broker", config.store.clone()) {
                Ok((durable, mirror, rec)) => {
                    for ((consumer, filter), suppressed) in &mirror.subs {
                        subs.add_local(consumer, filter.clone(), *suppressed);
                    }
                    for (topic, key) in &mirror.owner_keys {
                        owner_keys.insert(*topic, key.clone());
                    }
                    persist = Some(PersistHandle { durable, mirror });
                    recovery = Some(rec);
                }
                Err(_) => {
                    // An unusable data dir degrades to in-memory
                    // operation rather than refusing to start.
                }
            }
        }

        let broker = Broker {
            inner: Arc::new(Inner {
                id,
                clock,
                config,
                state: Mutex::new(State {
                    clients: HashMap::new(),
                    neighbors: HashMap::new(),
                    subs,
                    internal: HashMap::new(),
                    owner_keys,
                    hello_replied_ms: HashMap::new(),
                }),
                neighbor_cv: Condvar::new(),
                subs_cv: Condvar::new(),
                metrics,
                routes,
                recorder,
                msg_seq: AtomicU64::new(1),
                supervisors: Mutex::new(Vec::new()),
                link_cv: Condvar::new(),
                monitor_on: AtomicBool::new(false),
                monitor: RwLock::new(None),
                session_keys: Arc::new(SessionKeyring::new()),
                persist: Mutex::new(persist),
                recovery,
            }),
        };
        if let Some(interval) = broker.inner.config.advert_refresh {
            let weak = Arc::downgrade(&broker.inner);
            std::thread::Builder::new()
                .name(format!("{}-advert-refresh", broker.inner.id))
                .spawn(move || loop {
                    std::thread::sleep(interval);
                    let Some(inner) = weak.upgrade() else { return };
                    refresh_adverts(&inner);
                })
                .expect("spawn advert refresher");
        }
        broker
    }

    /// This broker's identifier.
    pub fn id(&self) -> &str {
        &self.inner.id
    }

    /// Crash-test support: detaches the durable store *instantly*, as
    /// an abrupt process death would. Everything journalled so far
    /// stays on disk, but nothing after this call reaches the log — in
    /// particular the `ConsumerGone` cleanup that worker threads run
    /// when their links die during teardown. A broker reopened over
    /// the same data dir therefore recovers its clients' subscriptions
    /// exactly as it would after a real kill, and re-attaching clients
    /// resume deliveries without re-subscribing.
    ///
    /// No-op for brokers without a data dir.
    pub fn simulate_crash(&self) {
        *self.inner.persist.lock() = None;
    }

    /// Counters snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let m = &self.inner.metrics;
        StatsSnapshot {
            published: m.published.get(),
            delivered_local: m.delivered_local.get(),
            forwarded: m.forwarded.get(),
            rejected: m.rejected.get(),
            dropped_spurious: m.dropped_spurious.get(),
            dropped_ttl: m.dropped_ttl.get(),
            terminated_clients: m.terminated_clients.get(),
        }
    }

    /// This broker's causal-tracing flight recorder. Snapshot it (or
    /// wrap it in `nb_telemetry::NodeSpans::capture`) to export spans.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// Captures every `broker.*` metric of this node: routing
    /// counters, per-event-type publish/deliver counts, and freshly
    /// sampled size gauges (clients, neighbours, subscription tables,
    /// internal queue depth).
    pub fn metrics_snapshot(&self) -> Snapshot {
        let m = &self.inner.metrics;
        {
            let state = self.inner.state.lock();
            m.clients.set(state.clients.len() as i64);
            m.neighbors.set(state.neighbors.len() as i64);
            m.subs_local.set(state.subs.local_filter_count() as i64);
            m.subs_remote.set(state.subs.remote_filter_count() as i64);
            m.queue_depth
                .set(state.internal.values().map(|tx| tx.len() as i64).sum());
        }
        m.links_supervised
            .set(self.inner.supervisors.lock().len() as i64);
        m.registry.snapshot()
    }

    /// Builds this broker's telemetry publisher: a periodic reporter
    /// that snapshots [`Broker::metrics_snapshot`] and publishes the
    /// changes on the constrained Obs topic through this broker's own
    /// internal publish path (constraint-exempt, like the monitor
    /// audit sink). Callers drive it with
    /// [`TelemetryPublisher::tick`] from a maintenance loop or
    /// [`TelemetryPublisher::start`]; sign it with
    /// [`TelemetryPublisher::signed`] before first publish if the
    /// aggregator requires authenticated streams.
    pub fn telemetry_publisher(&self, config: PublisherConfig) -> TelemetryPublisher {
        let source = self.clone();
        let sink = self.clone();
        TelemetryPublisher::new(
            self.id(),
            NodeKind::Broker,
            Arc::new(move || source.metrics_snapshot()),
            Arc::new(move |msg| sink.publish_internal(msg)),
            self.inner.clock.clone(),
            config,
        )
    }

    /// Blocks until this broker has registered at least `min`
    /// neighbours, or `timeout` elapses. Returns whether the target
    /// was reached.
    ///
    /// Event-driven: neighbour workers signal a condition variable on
    /// every registration, so the caller wakes exactly when the table
    /// changes instead of polling on a sleep loop. Spurious wake-ups
    /// are counted in `broker.neighbor_wait.wakeups`.
    pub fn wait_for_neighbors(&self, min: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        loop {
            if state.neighbors.len() >= min {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner
                .neighbor_cv
                .wait_for(&mut state, deadline.duration_since(now));
            self.inner.metrics.neighbor_wait_wakeups.inc();
        }
    }

    /// Blocks until a neighbouring broker has advertised exactly
    /// `filter`, or `timeout` elapses. Returns whether the advert
    /// arrived.
    ///
    /// Same event-driven shape as [`Broker::wait_for_neighbors`]:
    /// subscription registrations signal a condition variable, so this
    /// observes propagation deterministically instead of sleeping and
    /// hoping — the fix for the seed-era
    /// `stats_track_publish_deliver_forward` flake. Wake-ups are
    /// counted in `broker.subscription_wait.wakeups`.
    pub fn wait_for_remote_subscription(&self, filter: &Topic, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        loop {
            if state.subs.remote_holds(filter) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner
                .subs_cv
                .wait_for(&mut state, deadline.duration_since(now));
            self.inner.metrics.subscription_wait_wakeups.inc();
        }
    }

    /// Allocates a fresh message id.
    pub fn next_message_id(&self) -> u64 {
        self.inner.msg_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers the public key of a trace-topic owner so this broker
    /// can fully verify authorization tokens (signature, not just
    /// expiry). The tracing engine calls this during registration.
    pub fn register_topic_owner(&self, trace_topic: Uuid, key: RsaPublicKey) {
        {
            let mut state = self.inner.state.lock();
            state.owner_keys.insert(trace_topic, key.clone());
            self.inner.routes.bump();
        }
        journal(
            &self.inner,
            BrokerOp::OwnerKey {
                topic: trace_topic,
                key: key.clone(),
            },
        );
        // Keep an attached monitor's owner-key registry in sync so it
        // can fully verify tokens for this topic too.
        if self.inner.monitor_on.load(Ordering::Acquire) {
            if let Some(monitor) = self.inner.monitor.read().as_ref() {
                monitor.register_owner(trace_topic, key);
            }
        }
    }

    /// The broker's session keyring, shared with the hosting tracing
    /// engine: keys the engine negotiates with entities authenticate
    /// trace frames here without further registration.
    pub fn session_keyring(&self) -> Arc<SessionKeyring> {
        Arc::clone(&self.inner.session_keys)
    }

    /// Installs a negotiated session key: trace frames tagged under it
    /// verify with one HMAC over the signable region — on the cached
    /// fast path in place — instead of the per-frame RSA token chain.
    pub fn install_session_key(&self, key: SessionKey) {
        // Bump under the state lock like every control-plane mutation:
        // route entries resolve their `session_live` gate at fill time
        // and must never survive a keyring change.
        let state = self.inner.state.lock();
        self.inner.session_keys.install(key);
        self.inner.routes.bump();
        drop(state);
    }

    /// Revokes a session key: frames still tagged under it are dropped
    /// and, when a monitor is attached, reported as delivery attempts
    /// so its `require-session` property can flag the replay. Returns
    /// whether the key was known to this broker.
    pub fn revoke_session_key(&self, key_id: u64) -> bool {
        let known = {
            let _state = self.inner.state.lock();
            let known = self.inner.session_keys.revoke(key_id);
            self.inner.routes.bump();
            known
        };
        if self.inner.monitor_on.load(Ordering::Acquire) {
            if let Some(monitor) = self.inner.monitor.read().as_ref() {
                monitor.revoke_session_key(key_id);
            }
        }
        known
    }

    /// Attaches an online runtime-verification monitor: every delivery
    /// decision this broker makes on a topic one of the monitor's
    /// properties governs (slow path, or cached fast path via the
    /// route entry's `monitored` flag) is reported to `monitor` as a
    /// [`DeliveryEvent`]. The monitor
    /// inherits the broker's current trace-topic owner keys and stays
    /// in sync with future [`Broker::register_topic_owner`] calls.
    pub fn attach_monitor(&self, monitor: MonitorSet) {
        {
            let state = self.inner.state.lock();
            for (topic, key) in &state.owner_keys {
                monitor.register_owner(*topic, key.clone());
            }
        }
        *self.inner.monitor.write() = Some(monitor);
        self.inner.monitor_on.store(true, Ordering::Release);
        // Cached route entries predate the monitor and carry
        // `monitored: false`; invalidate them so every topic
        // re-resolves against the new property set.
        let _state = self.inner.state.lock();
        self.inner.routes.bump();
    }

    /// Blocks until `pred` holds over [`Broker::link_stats`] or the
    /// timeout elapses; returns whether the predicate was satisfied.
    ///
    /// Event-driven: woken by supervised-link state transitions (the
    /// same observer that feeds `broker.link.*` metrics), with a
    /// bounded re-check interval as a safety net for stat changes that
    /// don't transition the link state — so callers get condvar
    /// latency without sleep-polling.
    pub fn wait_for_link_stats(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&[LinkStats]) -> bool,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        let mut supervisors = self.inner.supervisors.lock();
        loop {
            let stats: Vec<LinkStats> = supervisors.iter().map(LinkSupervisor::stats).collect();
            if pred(&stats) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let slice = (deadline - now).min(Duration::from_millis(50));
            self.inner.link_cv.wait_for(&mut supervisors, slice);
        }
    }

    /// Wraps `endpoint` in a [`LinkSupervisor`] when
    /// [`BrokerConfig::link_supervision`] is set: the returned facade
    /// buffers through outages and the supervisor's state transitions
    /// feed the `broker.link.*` metrics and (when telemetry is on) the
    /// flight recorder as `link_down`/`link_up` spans.
    ///
    /// With `neighbor_resync` set (neighbour links only), every
    /// completed repair cycle also replays the neighbour handshake —
    /// hello plus all advertisable filters — through the repaired
    /// link. Transport repair cannot tell a healed wire from a
    /// restarted peer; if the peer process restarted, its subscription
    /// table is gone (or freshly recovered) and only a re-run of the
    /// session sync restores routing toward us.
    fn supervise_link(
        &self,
        endpoint: Endpoint,
        connector: Option<Box<dyn Connector>>,
        neighbor_resync: bool,
    ) -> Endpoint {
        let Some(base) = &self.inner.config.link_supervision else {
            return endpoint;
        };
        // Give each link its own jitter seed so simultaneous outages
        // don't retry in lockstep.
        let index = self.inner.supervisors.lock().len() as u64;
        let weak = Arc::downgrade(&self.inner);
        let telemetry_on = self.inner.config.telemetry.enabled;
        let observer: nb_transport::supervisor::StateObserver = Arc::new(move |old, new| {
            let Some(inner) = weak.upgrade() else { return };
            inner.metrics.link_state_changes.inc();
            // Wake any wait_for_link_stats() waiter to re-check.
            inner.link_cv.notify_all();
            let (counter, stage) = match (old, new) {
                (_, LinkState::Up) => (&inner.metrics.link_reconnects, Stage::LinkUp),
                (LinkState::Up, _) => (&inner.metrics.link_down_events, Stage::LinkDown),
                _ => return,
            };
            counter.inc();
            if telemetry_on {
                let t = now_ns();
                let ctx = TraceContext::root(0, true);
                inner.recorder.record(SpanEvent::new(&ctx, stage, t, t));
            }
        });
        let mut cfg = base
            .clone()
            .with_seed(base.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .with_observer(observer);
        // The hook needs the facade's sender, which doesn't exist yet
        // when the config is built — hand it a slot filled in below.
        let sender_slot: Arc<Mutex<Option<Arc<dyn FrameSender>>>> = Arc::new(Mutex::new(None));
        if neighbor_resync {
            let slot = Arc::clone(&sender_slot);
            let weak = Arc::downgrade(&self.inner);
            cfg = cfg.with_reconnect_hook(Arc::new(move |_reconnects| {
                let Some(inner) = weak.upgrade() else { return };
                let Some(sender) = slot.lock().clone() else { return };
                resync_neighbor_session(&inner, sender.as_ref());
            }));
        }
        let (facade, supervisor) = match connector {
            Some(c) => LinkSupervisor::supervise_with_connector(endpoint, c, cfg),
            None => LinkSupervisor::supervise(endpoint, cfg),
        };
        *sender_slot.lock() = Some(facade.sender());
        self.inner.supervisors.lock().push(supervisor);
        facade
    }

    /// Point-in-time stats for every supervised link of this broker
    /// (empty when supervision is disabled).
    pub fn link_stats(&self) -> Vec<LinkStats> {
        self.inner
            .supervisors
            .lock()
            .iter()
            .map(LinkSupervisor::stats)
            .collect()
    }

    /// Attaches a client over `endpoint`; the first frame must be an
    /// `Attach` payload carrying the client id. Spawns the worker
    /// thread and returns immediately.
    pub fn attach_client(&self, endpoint: Endpoint) {
        let endpoint = self.supervise_link(endpoint, None, false);
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name(format!("{}-client-worker", inner.id))
            .spawn(move || client_worker(inner, endpoint))
            .expect("spawn client worker");
    }

    /// Connects a neighbouring broker over `endpoint`. Both sides call
    /// this on their half of the link. Spawns the worker thread.
    pub fn connect_neighbor(&self, endpoint: Endpoint) {
        let endpoint = self.supervise_link(endpoint, None, true);
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name(format!("{}-neighbor-worker", inner.id))
            .spawn(move || neighbor_worker(inner, endpoint))
            .expect("spawn neighbor worker");
    }

    /// Like [`Broker::connect_neighbor`], but repair redials a fresh
    /// endpoint through `connector` instead of probing the broken one —
    /// the mode real transports (TCP) need, since their streams cannot
    /// be reused after a failure. Requires
    /// [`BrokerConfig::link_supervision`]; panics otherwise, because a
    /// connector without a supervisor could never be used.
    pub fn connect_neighbor_with_reconnect(&self, endpoint: Endpoint, connector: Box<dyn Connector>) {
        assert!(
            self.inner.config.link_supervision.is_some(),
            "connect_neighbor_with_reconnect requires BrokerConfig::link_supervision"
        );
        let endpoint = self.supervise_link(endpoint, Some(connector), true);
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name(format!("{}-neighbor-worker", inner.id))
            .spawn(move || neighbor_worker(inner, endpoint))
            .expect("spawn neighbor worker");
    }

    /// Registers an in-process consumer (the tracing engine, a hosted
    /// TDN) and returns its message channel.
    pub fn register_internal(&self, consumer: &str) -> Receiver<Message> {
        let (tx, rx) = unbounded();
        let mut state = self.inner.state.lock();
        state.internal.insert(consumer.to_string(), tx);
        self.inner.routes.bump();
        rx
    }

    /// Subscribes an in-process consumer (treated as the broker
    /// principal for constraint checks).
    pub fn subscribe_internal(&self, consumer: &str, filter: Topic) -> Result<()> {
        let constrained = ConstrainedTopic::parse(&filter)?;
        if let Some(c) = &constrained {
            if !c.permits(&Actor::Broker, Action::Subscribe) {
                return Err(BrokerError::NotPermitted {
                    topic: filter.to_string(),
                    action: "subscribe",
                });
            }
        }
        let suppress = constrained
            .as_ref()
            .is_some_and(|c| c.suppressed() && c.is_constrainer(&Actor::Broker));
        self.add_subscription(consumer, filter, suppress);
        Ok(())
    }

    /// Removes an internal subscription (propagating withdrawal when
    /// no local interest remains).
    pub fn unsubscribe_internal(&self, consumer: &str, filter: &Topic) {
        journal(
            &self.inner,
            BrokerOp::SubRemove {
                consumer: consumer.to_string(),
                filter: filter.clone(),
            },
        );
        let (orphaned, neighbors) = {
            let mut state = self.inner.state.lock();
            let orphaned = state.subs.remove_local(consumer, filter);
            self.inner.routes.bump();
            let gone = orphaned && !state.subs.all_filters().contains(filter);
            let neighbors: Vec<_> = if gone {
                state.neighbors.values().cloned().collect()
            } else {
                Vec::new()
            };
            (gone, neighbors)
        };
        if orphaned {
            let msg = self.control_message(Payload::NeighborUnsubscribe {
                filter: filter.clone(),
            });
            let frame = msg.to_bytes();
            for n in neighbors {
                let _ = n.send_frame(&frame);
            }
        }
    }

    fn add_subscription(&self, consumer: &str, filter: Topic, suppress_advert: bool) {
        let (fresh, neighbors) = {
            let mut state = self.inner.state.lock();
            let fresh = state.subs.add_local(consumer, filter.clone(), suppress_advert);
            self.inner.routes.bump();
            let neighbors: Vec<_> = if fresh {
                state.neighbors.values().cloned().collect()
            } else {
                Vec::new()
            };
            (fresh, neighbors)
        };
        if fresh {
            journal(
                &self.inner,
                BrokerOp::SubAdd {
                    consumer: consumer.to_string(),
                    filter: filter.clone(),
                    suppressed: suppress_advert,
                },
            );
        }
        self.inner.subs_cv.notify_all();
        if fresh {
            let msg = self.control_message(Payload::NeighborSubscribe { filter });
            let frame = msg.to_bytes();
            for n in neighbors {
                let _ = n.send_frame(&frame);
            }
        }
    }

    /// Publishes a message as this broker (the tracing engine path).
    /// The caller is responsible for attaching any required
    /// authorization token before publishing.
    pub fn publish_internal(&self, msg: Message) {
        route(&self.inner, msg, Origin::Internal);
    }

    /// Routes one encoded *data* frame as if it had arrived from the
    /// attached client `client_id`, synchronously on the caller's
    /// thread. This is the raw data-plane entry point the client
    /// worker uses per frame — exposed so benchmarks and allocation
    /// tests can drive the routing path at saturation without a
    /// transport in between. The frame may be mutated in place (hop-TTL
    /// patching), so callers reusing a buffer must re-encode per send.
    ///
    /// Control payloads (attach/subscribe/…) are not dispatched here;
    /// use a [`crate::BrokerClient`] over a real endpoint for those.
    pub fn ingest_client_frame(&self, client_id: &str, frame: &mut [u8]) {
        let inner = &self.inner;
        if try_fast_route(inner, frame, OriginRef::Client(client_id)) {
            return;
        }
        match Message::from_bytes(frame) {
            Ok(msg) => route(inner, msg, Origin::Client(client_id.to_string())),
            Err(_) => punish(inner, client_id),
        }
    }

    fn control_message(&self, payload: Payload) -> Message {
        Message::new(
            self.next_message_id(),
            Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
            self.inner.id.clone(),
            self.inner.clock.now_ms(),
            payload,
        )
    }

    /// What crash recovery found when this broker (re)opened its
    /// durable store: snapshot loaded, ops replayed, repairs made.
    /// `None` when [`BrokerConfig::data_dir`] is unset (or the store
    /// failed to open and the broker degraded to in-memory operation).
    pub fn recovery(&self) -> Option<Recovery> {
        self.inner.recovery.clone()
    }

    /// Forces a durable-store checkpoint (snapshot + log compaction)
    /// now, regardless of the configured interval. Returns whether a
    /// store is attached and the checkpoint succeeded.
    pub fn checkpoint_now(&self) -> bool {
        let mut guard = self.inner.persist.lock();
        match guard.as_mut() {
            Some(p) => p.durable.checkpoint(&p.mirror).is_ok(),
            None => false,
        }
    }

    /// Number of directly attached clients.
    pub fn client_count(&self) -> usize {
        self.inner.state.lock().clients.len()
    }

    /// Number of neighbouring brokers.
    pub fn neighbor_count(&self) -> usize {
        self.inner.state.lock().neighbors.len()
    }
}

/// Validates a trace publication's authorization token (§4.3, §5.2).
///
/// Returns `false` when the message must be discarded.
fn token_acceptable(inner: &Inner, msg: &Message, constrained: &ConstrainedTopic) -> bool {
    // Only broker-published trace channels require tokens.
    let is_trace_publication = constrained.event_type == EventType::Traces
        && constrained.allowed_actions == AllowedActions::PublishOnly;
    if !is_trace_publication || !inner.config.require_tokens {
        return true;
    }
    let Some(token) = &msg.token else {
        return false;
    };
    let now = inner.clock.now_ms();
    // Expiry/window check is always possible.
    if now > token.valid_until_ms.saturating_add(inner.config.token_skew_ms)
        || now + inner.config.token_skew_ms < token.valid_from_ms
    {
        return false;
    }
    // Full signature verification when this broker knows the topic
    // owner (always true at the hosting broker; transit brokers fall
    // back to the window check).
    let owner_key = inner.state.lock().owner_keys.get(&token.trace_topic).cloned();
    match owner_key {
        Some(key) => token
            .verify(&key, Rights::Publish, now, inner.config.token_skew_ms)
            .is_ok(),
        None => true,
    }
}

/// Outcome of the slow path's session-layer admission check — the
/// owned-decode analogue of the fast path's in-place keyring verify.
enum SessionCheck {
    /// Verified against a live session key: skip the token checks.
    Accept,
    /// No tag, no keys, or an unknown/expired key id: apply the full
    /// RSA token checks.
    Fallback,
    /// Bad MAC or a key bound to another topic: discard.
    Reject,
    /// Tagged under a revoked key: report to the monitor, then discard.
    RejectRevoked,
}

/// Checks a trace publication's session tag (if any) against the
/// broker keyring. Only broker-published trace channels participate;
/// everything else falls through to [`token_acceptable`] untouched.
fn session_check(inner: &Inner, msg: &Message, constrained: &ConstrainedTopic) -> SessionCheck {
    let is_trace_publication = constrained.event_type == EventType::Traces
        && constrained.allowed_actions == AllowedActions::PublishOnly;
    if !is_trace_publication || !inner.config.require_tokens || inner.session_keys.is_empty() {
        return SessionCheck::Fallback;
    }
    let Some(tag) = &msg.session else {
        return SessionCheck::Fallback;
    };
    let expected = constrained
        .suffixes
        .first()
        .and_then(|s| s.parse::<Uuid>().ok());
    let signable = msg.signable_bytes();
    match inner.session_keys.verify(
        tag.key_id,
        tag.seq,
        expected.as_ref(),
        inner.clock.now_ms(),
        &[&signable],
        &tag.mac,
    ) {
        SessionVerdict::Verified => {
            inner.metrics.session_verified.inc();
            SessionCheck::Accept
        }
        SessionVerdict::UnknownKey | SessionVerdict::Expired => {
            inner.metrics.session_fallback.inc();
            SessionCheck::Fallback
        }
        SessionVerdict::Revoked => {
            inner.metrics.session_revoked_dropped.inc();
            SessionCheck::RejectRevoked
        }
        SessionVerdict::BadMac | SessionVerdict::WrongTopic => {
            inner.metrics.session_rejected.inc();
            SessionCheck::Reject
        }
    }
}

/// Combined session + token admission for trace publications on the
/// slow path. Returns `false` when the message must be discarded
/// (rejection accounting and monitor reporting already done).
fn trace_admission(inner: &Inner, msg: &Message, constrained: &ConstrainedTopic) -> bool {
    match session_check(inner, msg, constrained) {
        SessionCheck::Accept => true,
        SessionCheck::Reject => {
            inner.metrics.dropped_spurious.inc();
            false
        }
        SessionCheck::RejectRevoked => {
            inner.metrics.dropped_spurious.inc();
            // Report the attempt so the monitor's `require-session`
            // property sees the replay it exists to catch.
            if inner.monitor_on.load(Ordering::Relaxed) {
                notify_monitor(inner, msg);
            }
            false
        }
        SessionCheck::Fallback => {
            if token_acceptable(inner, msg, constrained) {
                true
            } else {
                inner.metrics.dropped_spurious.inc();
                false
            }
        }
    }
}

fn route(inner: &Inner, mut msg: Message, origin: Origin) {
    inner.routes.slowpath.inc();
    // Hop accounting: every neighbour ingress is one broker-to-broker
    // hop. The hop count doubles as a routing TTL closing the
    // forwarding-loop hazard — a message bouncing between brokers is
    // dropped here once it exceeds the bound.
    if matches!(origin, Origin::Neighbor(_)) {
        if let Some(ctx) = &mut msg.trace {
            ctx.hop_count = ctx.hop_count.saturating_add(1);
            if ctx.hop_count > inner.config.max_hops {
                inner.metrics.dropped_ttl.inc();
                return;
            }
        }
    }
    // The sampled-trace guard: everything tracing-related below is
    // behind this, so unsampled messages pay only this check.
    let traced = if inner.config.telemetry.enabled {
        msg.trace.filter(|c| c.sampled)
    } else {
        None
    };
    let t_accept = if traced.is_some() { now_ns() } else { 0 };

    let constrained = match ConstrainedTopic::parse(&msg.topic) {
        Ok(c) => c,
        Err(_) => {
            inner.metrics.rejected.inc();
            return;
        }
    };
    let family = topic_family(&constrained).to_string();

    // Enforcement depends on where the message came from.
    match &origin {
        Origin::Client(id) => {
            if let Some(c) = &constrained {
                if !c.permits(&Actor::Entity(id.clone()), Action::Publish) {
                    inner.metrics.rejected.inc();
                    punish(inner, id);
                    return;
                }
            }
        }
        Origin::Neighbor(_) => {
            if let Some(c) = &constrained {
                if !trace_admission(inner, &msg, c) {
                    return;
                }
            }
        }
        Origin::Internal => {}
    }
    if matches!(origin, Origin::Client(_) | Origin::Internal) {
        // The hosting broker also validates tokens on its own trace
        // publications' ingress from clients (clients can never publish
        // there — permits() already refused — so this is for Internal).
        if let (Origin::Internal, Some(c)) = (&origin, &constrained) {
            if !trace_admission(inner, &msg, c) {
                return;
            }
        }
        inner.metrics.published.inc();
        inner.metrics.published_for(&family).inc();
    }

    // Enforcement is done: the span from ingress to here is the
    // auth-check cost (constraint parse + permits + token checks).
    let t_auth_end = if traced.is_some() { now_ns() } else { 0 };
    if let Some(ctx) = &traced {
        inner
            .recorder
            .record(SpanEvent::new(ctx, Stage::AuthCheck, t_accept, t_auth_end));
    }

    // Distribution suppression: the constrainer's publishes stay local
    // on Suppress links (§3.1 {Distribution}).
    let origin_actor = match &origin {
        Origin::Client(id) => Actor::Entity(id.clone()),
        Origin::Neighbor(_) | Origin::Internal => Actor::Broker,
    };
    let forward_allowed = match &constrained {
        Some(c) => !(c.suppressed() && c.is_constrainer(&origin_actor)),
        None => true,
    };

    // Collect recipients under the lock, deliver outside it.
    let (client_senders, internal_senders, neighbor_senders) = {
        let state = inner.state.lock();
        let locals = state.subs.local_matches(&msg.topic);
        let mut client_senders = Vec::new();
        let mut internal_senders = Vec::new();
        for consumer in locals {
            // Don't echo a message back to its publisher.
            if matches!(&origin, Origin::Client(id) if id == &consumer) {
                continue;
            }
            if let Some(handle) = state.clients.get(&consumer) {
                if !handle.terminated.load(Ordering::Acquire) {
                    client_senders.push(Arc::clone(&handle.sender));
                }
            } else if let Some(tx) = state.internal.get(&consumer) {
                internal_senders.push(tx.clone());
            }
        }
        let neighbor_senders: Vec<_> = if forward_allowed {
            state
                .subs
                .remote_matches(&msg.topic)
                .into_iter()
                .filter(|n| !matches!(&origin, Origin::Neighbor(from) if from == n))
                .filter_map(|n| state.neighbors.get(&n).map(Arc::clone))
                .collect()
        } else {
            Vec::new()
        };
        (client_senders, internal_senders, neighbor_senders)
    };

    // Subscription matching + recipient collection is the routing cost.
    let t_route_end = if traced.is_some() { now_ns() } else { 0 };
    if let Some(ctx) = &traced {
        inner
            .recorder
            .record(SpanEvent::new(ctx, Stage::Route, t_auth_end, t_route_end));
    }

    // Tail sampling: an unsampled message that has already spent more
    // than the slow threshold end-to-end gets its terminal spans
    // recorded anyway, so slow outliers are never invisible.
    let deliver_ctx = if traced.is_some() {
        traced
    } else if inner.config.telemetry.enabled
        && msg.trace.is_some()
        && inner.clock.now_ms().saturating_sub(msg.timestamp_ms)
            >= inner.config.telemetry.slow_threshold_ms
    {
        msg.trace
    } else {
        None
    };

    if inner.monitor_on.load(Ordering::Relaxed)
        && (!client_senders.is_empty()
            || !internal_senders.is_empty()
            || !neighbor_senders.is_empty())
    {
        notify_monitor(inner, &msg);
    }

    let frame = msg.to_bytes();
    let delivered_family = inner.metrics.delivered_for(&family);
    for sender in &client_senders {
        let t0 = if deliver_ctx.is_some() { now_ns() } else { 0 };
        if sender.send_frame(&frame).is_ok() {
            inner.metrics.delivered_local.inc();
            delivered_family.inc();
            if let Some(ctx) = &deliver_ctx {
                inner
                    .recorder
                    .record(SpanEvent::new(ctx, Stage::Deliver, t0, now_ns()));
            }
        }
    }
    for tx in &internal_senders {
        let t0 = if deliver_ctx.is_some() { now_ns() } else { 0 };
        if tx.send(msg.clone()).is_ok() {
            inner.metrics.delivered_local.inc();
            delivered_family.inc();
            if let Some(ctx) = &deliver_ctx {
                inner
                    .recorder
                    .record(SpanEvent::new(ctx, Stage::Enqueue, t0, now_ns()));
            }
        }
    }
    for sender in &neighbor_senders {
        let t0 = if traced.is_some() { now_ns() } else { 0 };
        if sender.send_frame(&frame).is_ok() {
            inner.metrics.forwarded.inc();
            if let Some(ctx) = &traced {
                inner
                    .recorder
                    .record(SpanEvent::new(ctx, Stage::Forward, t0, now_ns()));
            }
        }
    }
}

/// Reports a slow-path delivery decision to the attached monitor
/// (caller has already checked `monitor_on` and that the message has
/// at least one recipient).
fn notify_monitor(inner: &Inner, msg: &Message) {
    let guard = inner.monitor.read();
    let Some(monitor) = guard.as_ref() else {
        return;
    };
    monitor.on_delivery(&DeliveryEvent {
        node: &inner.id,
        topic: TopicRef::Owned(&msg.topic),
        topic_hash: nb_wire::topic_hash(&msg.topic),
        sender: &msg.sender,
        msg_id: msg.id,
        hop: msg.trace.map(|ctx| ctx.hop_count),
        token: match &msg.token {
            Some(token) => TokenSource::Decoded(token),
            None => TokenSource::Absent,
        },
        session: msg.session,
        now_ms: inner.clock.now_ms(),
    });
}

/// Where a raw frame entered the broker, by reference — the fast
/// path's allocation-free analogue of [`Origin`].
#[derive(Clone, Copy)]
enum OriginRef<'a> {
    Client(&'a str),
    Neighbor(&'a str),
}

/// The data-plane fast path: routes an encoded frame using the
/// sharded route cache, without decoding the envelope, re-encoding it,
/// or taking the broker state lock (except on a cache fill).
///
/// Returns `true` when the frame was fully handled (fanned out, or
/// dropped by the hop TTL) and `false` when it must go through the
/// full [`route`] path — control traffic, pre-v3 frames, sampled or
/// tail-sampling-eligible traces, token-bearing trace channels,
/// topics with in-process consumers, and constraint violations (the
/// slow path owns rejection accounting and punishment).
///
/// Steady-state invariant (enforced by `tests/no_alloc_route.rs`):
/// a cache hit performs no heap allocation.
fn try_fast_route(inner: &Inner, frame: &mut [u8], origin: OriginRef<'_>) -> bool {
    if !inner.config.data_plane_cache {
        return false;
    }
    let t0 = now_ns();
    let Ok(view) = MessageView::parse(frame) else {
        // Pre-v3 or malformed: the owned decoder sorts it out.
        return false;
    };
    if is_control_tag(view.payload_tag) {
        return false;
    }
    if inner.config.telemetry.enabled {
        if let Some(ctx) = &view.trace {
            // Sampled messages need span recording; old unsampled ones
            // may qualify for tail sampling. Both are slow-path work.
            if ctx.sampled
                || inner.clock.now_ms().saturating_sub(view.timestamp_ms)
                    >= inner.config.telemetry.slow_threshold_ms
            {
                return false;
            }
        }
    }
    // Hop TTL on neighbour ingress: patch the hop byte in place
    // instead of re-encoding the envelope. The write is deferred until
    // every fall-through check has passed, so the slow path never sees
    // a half-updated frame.
    let mut hop_patch = None;
    if let OriginRef::Neighbor(_) = origin {
        if let Some(ctx) = &view.trace {
            let hop = ctx.hop_count.saturating_add(1);
            if hop > inner.config.max_hops {
                inner.metrics.dropped_ttl.inc();
                return true;
            }
            hop_patch = view.trace_hop_offset().map(|off| (off, hop));
        }
    }

    let hash = view.topic.hash64();
    let entry = match inner.routes.lookup(hash, &view.topic) {
        Some(entry) => entry,
        None => {
            inner.routes.misses.inc();
            match fill_route_entry(inner, &view.topic, hash) {
                Some(entry) => entry,
                None => return false,
            }
        }
    };

    let Some(policy) = &entry.policy else {
        // Constrained-grammar parse error: slow path rejects.
        return false;
    };
    if entry.has_internal {
        // In-process consumers need an owned Message.
        return false;
    }
    if policy.requires_token && inner.config.require_tokens {
        // Session fast path (amortized RSA): a frame tagged under a
        // live session key authenticates with one HMAC over the
        // signable region, in place — no decode, no bignum math.
        // Untagged frames, or frames whose key this broker does not
        // hold live, keep the full RSA token checks on the slow path.
        let (Some(tag), true) = (&view.session, entry.session_live) else {
            return false;
        };
        match inner.session_keys.verify(
            tag.key_id,
            tag.seq,
            policy.session_topic.as_ref(),
            inner.clock.now_ms(),
            &view.signable_parts(),
            &tag.mac,
        ) {
            SessionVerdict::Verified => inner.metrics.session_verified.inc(),
            SessionVerdict::UnknownKey | SessionVerdict::Expired => {
                // The publisher may hold a newer key than we do, or
                // the key aged out mid-flight: let the slow path run
                // the RSA token fallback instead of dropping.
                inner.metrics.session_fallback.inc();
                return false;
            }
            SessionVerdict::Revoked => {
                // A frame under a revoked key is the replay the
                // monitor's `require-session` property watches for:
                // report the attempt, then drop the frame.
                inner.metrics.session_revoked_dropped.inc();
                inner.metrics.dropped_spurious.inc();
                if entry.monitored {
                    let hop = view.trace.as_ref().map(|ctx| ctx.hop_count);
                    if let Some(monitor) = inner.monitor.read().as_ref() {
                        monitor.on_delivery(&DeliveryEvent::from_view(
                            &inner.id, &view, frame, hash, hop,
                        ));
                    }
                }
                return true;
            }
            SessionVerdict::BadMac | SessionVerdict::WrongTopic => {
                inner.metrics.session_rejected.inc();
                inner.metrics.dropped_spurious.inc();
                return true;
            }
        }
    }
    let forward_allowed = match origin {
        OriginRef::Client(id) => {
            if !policy.client_may_publish(id) {
                // Slow path re-derives the violation, counts the
                // rejection and punishes the client.
                return false;
            }
            policy.suppress_entity.as_deref() != Some(id)
        }
        OriginRef::Neighbor(_) => !policy.suppress_broker,
    };

    if entry.monitored && (!entry.clients.is_empty() || (forward_allowed && !entry.neighbors.is_empty()))
    {
        // `monitored` was resolved against the attached monitor's
        // properties at fill time (attach bumps the cache version), so
        // unmonitored topics skip the tap with this one branch.
        // Report the delivery before patching the hop byte (the view
        // still borrows the frame); `hop` is the post-increment value
        // the frame is about to carry onward.
        let hop = match hop_patch {
            Some((_, hop)) => Some(hop),
            None => view.trace.as_ref().map(|ctx| ctx.hop_count),
        };
        if let Some(monitor) = inner.monitor.read().as_ref() {
            monitor.on_delivery(&DeliveryEvent::from_view(&inner.id, &view, frame, hash, hop));
        }
    }
    if let Some((off, hop)) = hop_patch {
        frame[off] = hop;
    }
    if let OriginRef::Client(_) = origin {
        inner.metrics.published.inc();
        entry.published_family.inc();
    }
    for dest in &entry.clients {
        if let OriginRef::Client(id) = origin {
            // Don't echo a message back to its publisher.
            if id == dest.id {
                continue;
            }
        }
        if dest.terminated.load(Ordering::Acquire) {
            continue;
        }
        if dest.sender.send_frame(frame).is_ok() {
            inner.metrics.delivered_local.inc();
            entry.delivered_family.inc();
        }
    }
    if forward_allowed {
        for dest in &entry.neighbors {
            if let OriginRef::Neighbor(from) = origin {
                if from == dest.id {
                    continue;
                }
            }
            if dest.sender.send_frame(frame).is_ok() {
                inner.metrics.forwarded.inc();
            }
        }
    }
    inner.routes.fastpath.inc();
    inner.routes.latency_ns.record(now_ns().saturating_sub(t0));
    true
}

/// Builds and installs a route-cache entry for `topic_view`: snapshots
/// the matching destinations and the cache version atomically under
/// the state lock, compiles the topic policy, then inserts outside the
/// lock. Returns `None` when the topic fails owned validation (the
/// slow path reports the error).
fn fill_route_entry(
    inner: &Inner,
    topic_view: &TopicView<'_>,
    hash: u64,
) -> Option<Arc<RouteEntry>> {
    let topic = topic_view.to_topic().ok()?;
    let policy = TopicPolicy::compile(&topic).ok();
    let family = policy.as_ref().map_or("plain", |p| p.family.as_str());
    let published_family = inner.metrics.published_for(family);
    let delivered_family = inner.metrics.delivered_for(family);
    let (version, clients, neighbors, has_internal) = {
        let state = inner.state.lock();
        // Read under the lock so (snapshot, version) are consistent:
        // every mutation bumps while holding the same lock.
        let version = inner.routes.current_version();
        let mut clients = Vec::new();
        let mut has_internal = false;
        for consumer in state.subs.local_matches(&topic) {
            if let Some(handle) = state.clients.get(&consumer) {
                clients.push(ClientDest {
                    id: consumer,
                    sender: Arc::clone(&handle.sender),
                    terminated: Arc::clone(&handle.terminated),
                });
            } else if state.internal.contains_key(&consumer) {
                has_internal = true;
            }
        }
        let neighbors = state
            .subs
            .remote_matches(&topic)
            .into_iter()
            .filter_map(|n| {
                let sender = Arc::clone(state.neighbors.get(&n)?);
                Some(NeighborDest { id: n, sender })
            })
            .collect();
        (version, clients, neighbors, has_internal)
    };
    // Resolve the monitor's interest *after* the version snapshot: a
    // monitor attached since then bumped the version under the same
    // state lock, so this entry is already stale and the conservative
    // read here can never be served past an attach.
    let monitored = inner.monitor_on.load(Ordering::Acquire)
        && inner
            .monitor
            .read()
            .as_ref()
            .is_some_and(|m| m.monitors_topic(hash, &TopicRef::Owned(&topic)));
    // Same after-the-snapshot rule for the session-key gate: a key
    // installed or revoked since the snapshot bumped the version under
    // the state lock, so this entry is already stale.
    let session_live = policy
        .as_ref()
        .and_then(|p| p.session_topic.as_ref())
        .is_some_and(|trace_topic| {
            inner
                .session_keys
                .has_live_key_for(trace_topic, inner.clock.now_ms())
        });
    let entry = Arc::new(RouteEntry {
        topic,
        policy,
        clients,
        neighbors,
        has_internal,
        monitored,
        session_live,
        published_family,
        delivered_family,
    });
    inner.routes.insert(hash, version, Arc::clone(&entry));
    Some(entry)
}

/// Records a bogus attempt; terminates the client at the limit (§5.2).
fn punish(inner: &Inner, client_id: &str) {
    let mut state = inner.state.lock();
    if let Some(handle) = state.clients.get_mut(client_id) {
        handle.bogus += 1;
        if handle.bogus >= inner.config.bogus_attempt_limit
            && !handle.terminated.load(Ordering::Acquire)
        {
            handle.terminated.store(true, Ordering::Release);
            inner.metrics.terminated_clients.inc();
            let sender = Arc::clone(&handle.sender);
            drop(state);
            let msg = Message::new(
                0,
                Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
                inner.id.clone(),
                inner.clock.now_ms(),
                Payload::Nack {
                    reason: "communications terminated: repeated bogus attempts".to_string(),
                },
            );
            let _ = sender.send_frame(&msg.to_bytes());
            // Remove all state for the client.
            let mut state = inner.state.lock();
            state.clients.remove(client_id);
            state.subs.remove_consumer(client_id);
            inner.routes.bump();
            drop(state);
            // Termination is deliberate, so it must survive a restart:
            // a punished client that re-attaches starts with nothing.
            journal(
                inner,
                BrokerOp::ConsumerGone {
                    consumer: client_id.to_string(),
                },
            );
        }
    }
}

fn client_worker(inner: Arc<Inner>, endpoint: Endpoint) {
    let inner = &inner;
    // Handshake: first frame must be Attach.
    let (client_id, terminated) = loop {
        let Ok(frame) = endpoint.recv() else { return };
        match Message::from_bytes(&frame) {
            Ok(msg) => {
                if let Payload::Attach { client_id } = &msg.payload {
                    let id = client_id.clone();
                    let flag = Arc::new(AtomicBool::new(false));
                    {
                        let mut state = inner.state.lock();
                        state.clients.insert(
                            id.clone(),
                            ClientHandle {
                                sender: endpoint.sender(),
                                bogus: 0,
                                terminated: Arc::clone(&flag),
                            },
                        );
                        inner.routes.bump();
                    }
                    let ack = Message::new(
                        0,
                        msg.topic.clone(),
                        inner.id.clone(),
                        inner.clock.now_ms(),
                        Payload::Ack,
                    )
                    .correlated(msg.id);
                    let _ = endpoint.send(&ack.to_bytes());
                    break (id, flag);
                }
                // Ignore anything before Attach.
            }
            Err(_) => continue,
        }
    };

    loop {
        let Ok(mut frame) = endpoint.recv() else {
            // Link dropped: clean up. Journalled too — the mirror
            // tracks the live table exactly; only a *broker* crash
            // (which journals nothing) preserves client subscriptions
            // for post-restart re-attachment.
            let mut state = inner.state.lock();
            state.clients.remove(&client_id);
            state.subs.remove_consumer(&client_id);
            inner.routes.bump();
            drop(state);
            journal(
                inner,
                BrokerOp::ConsumerGone {
                    consumer: client_id.clone(),
                },
            );
            return;
        };
        // Lock-free termination check: punish() flips the shared flag.
        if terminated.load(Ordering::Acquire) {
            return;
        }
        // Steady-state data frames short-circuit here without an
        // envelope decode.
        if try_fast_route(inner, &mut frame, OriginRef::Client(&client_id)) {
            continue;
        }
        let msg = match Message::from_bytes(&frame) {
            Ok(m) => m,
            Err(_) => {
                punish(inner, &client_id);
                continue;
            }
        };
        match &msg.payload {
            Payload::Subscribe { filter } => {
                handle_client_subscribe(inner, &endpoint, &client_id, &msg, filter.clone());
            }
            Payload::Unsubscribe { filter } => {
                let mut state = inner.state.lock();
                state.subs.remove_local(&client_id, filter);
                inner.routes.bump();
                drop(state);
                journal(
                    inner,
                    BrokerOp::SubRemove {
                        consumer: client_id.clone(),
                        filter: filter.clone(),
                    },
                );
                let ack = Message::new(
                    0,
                    msg.topic.clone(),
                    inner.id.clone(),
                    inner.clock.now_ms(),
                    Payload::Ack,
                )
                .correlated(msg.id);
                let _ = endpoint.send(&ack.to_bytes());
            }
            Payload::Attach { .. } => {
                // Duplicate attach (client retried over a lossy link):
                // acknowledge again, idempotently.
                let ack = Message::new(
                    0,
                    msg.topic.clone(),
                    inner.id.clone(),
                    inner.clock.now_ms(),
                    Payload::Ack,
                )
                .correlated(msg.id);
                let _ = endpoint.send(&ack.to_bytes());
            }
            _ => {
                route(inner, msg, Origin::Client(client_id.clone()));
            }
        }
    }
}

fn handle_client_subscribe(
    inner: &Arc<Inner>,
    endpoint: &Endpoint,
    client_id: &str,
    msg: &Message,
    filter: Topic,
) {
    let allowed = match ConstrainedTopic::parse(&filter) {
        Ok(Some(c)) => c.permits(&Actor::Entity(client_id.to_string()), Action::Subscribe),
        Ok(None) => true,
        Err(_) => false,
    };
    if !allowed {
        inner.metrics.rejected.inc();
        let nack = Message::new(
            0,
            msg.topic.clone(),
            inner.id.clone(),
            inner.clock.now_ms(),
            Payload::Nack {
                reason: format!("subscribe not permitted on {filter}"),
            },
        )
        .correlated(msg.id);
        let _ = endpoint.send(&nack.to_bytes());
        punish(inner, client_id);
        return;
    }
    let suppress = match ConstrainedTopic::parse(&filter) {
        Ok(Some(c)) => c.suppressed() && c.is_constrainer(&Actor::Entity(client_id.to_string())),
        _ => false,
    };
    // Reuse the broker's advertisement machinery.
    let broker = Broker {
        inner: Arc::clone(inner),
    };
    broker.add_subscription(client_id, filter, suppress);
    let ack = Message::new(
        0,
        msg.topic.clone(),
        inner.id.clone(),
        inner.clock.now_ms(),
        Payload::Ack,
    )
    .correlated(msg.id);
    let _ = endpoint.send(&ack.to_bytes());
}

/// Replays the neighbour session over a freshly repaired link: hello
/// plus every advertisable filter. Run by the link supervisor's
/// reconnect hook — a restarted peer has lost (or just recovered) its
/// view of our interest, and the transport repair alone restores bytes,
/// not sessions. The peer side is idempotent: re-received hellos are
/// rate-limit answered, re-received adverts are deduplicated by its
/// subscription table.
fn resync_neighbor_session(inner: &Inner, sender: &dyn FrameSender) {
    let control = Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap();
    let hello = Message::new(
        0,
        control.clone(),
        inner.id.clone(),
        inner.clock.now_ms(),
        Payload::NeighborHello {
            broker_id: inner.id.clone(),
        },
    );
    if sender.send_frame(&hello.to_bytes()).is_err() {
        return;
    }
    let filters: Vec<Topic> = {
        let state = inner.state.lock();
        state.subs.advertisable_filters().into_iter().collect()
    };
    for filter in filters {
        let adv = Message::new(
            0,
            control.clone(),
            inner.id.clone(),
            inner.clock.now_ms(),
            Payload::NeighborSubscribe { filter },
        );
        if sender.send_frame(&adv.to_bytes()).is_err() {
            return;
        }
    }
}

fn neighbor_worker(inner: Arc<Inner>, endpoint: Endpoint) {
    let inner = &inner;
    // Identify ourselves and advertise all current interest.
    let hello = Message::new(
        0,
        Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
        inner.id.clone(),
        inner.clock.now_ms(),
        Payload::NeighborHello {
            broker_id: inner.id.clone(),
        },
    );
    if endpoint.send(&hello.to_bytes()).is_err() {
        return;
    }
    let filters: Vec<Topic> = {
        let state = inner.state.lock();
        state.subs.advertisable_filters().into_iter().collect()
    };
    for filter in filters {
        let adv = Message::new(
            0,
            Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
            inner.id.clone(),
            inner.clock.now_ms(),
            Payload::NeighborSubscribe { filter },
        );
        if endpoint.send(&adv.to_bytes()).is_err() {
            return;
        }
    }

    // Wait for the peer's hello, buffering anything (e.g. adverts
    // reordered by jitter) that arrives before it. The hello is
    // retransmitted periodically so a lossy link cannot wedge the
    // handshake.
    let mut buffered: Vec<Message> = Vec::new();
    let peer_id = loop {
        match endpoint.recv_timeout(std::time::Duration::from_millis(200)) {
            Ok(frame) => {
                if let Ok(msg) = Message::from_bytes(&frame) {
                    if let Payload::NeighborHello { broker_id } = &msg.payload {
                        let id = broker_id.clone();
                        {
                            let mut state = inner.state.lock();
                            state.neighbors.insert(id.clone(), endpoint.sender());
                            inner.routes.bump();
                        }
                        inner.neighbor_cv.notify_all();
                        break id;
                    }
                    buffered.push(msg);
                }
            }
            Err(nb_transport::TransportError::Timeout) => {
                if endpoint.send(&hello.to_bytes()).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    };
    for msg in buffered {
        handle_neighbor_message(inner, &peer_id, msg);
    }

    loop {
        let Ok(mut frame) = endpoint.recv() else {
            let mut state = inner.state.lock();
            state.neighbors.remove(&peer_id);
            state.subs.remove_neighbor(&peer_id);
            inner.routes.bump();
            drop(state);
            inner.neighbor_cv.notify_all();
            return;
        };
        // Data frames forwarded by the peer short-circuit here (with
        // the in-place hop-TTL patch); control frames fall through.
        if try_fast_route(inner, &mut frame, OriginRef::Neighbor(&peer_id)) {
            continue;
        }
        let Ok(msg) = Message::from_bytes(&frame) else {
            continue;
        };
        handle_neighbor_message(inner, &peer_id, msg);
    }
}

fn handle_neighbor_message(inner: &Arc<Inner>, peer_id: &str, msg: Message) {
    {
        match &msg.payload {
            Payload::NeighborHello { .. } => {
                // The peer is (re)announcing itself — our own hello may
                // have been lost. Answer with a fresh hello; the
                // exchange quiesces once both sides are registered
                // (peers stop retransmitting after registration).
                let now = inner.clock.now_ms();
                let sender = {
                    let mut state = inner.state.lock();
                    let last = state.hello_replied_ms.get(peer_id).copied().unwrap_or(0);
                    if now.saturating_sub(last) < 1000 {
                        None // rate-limited: at most one reply per second
                    } else {
                        state.hello_replied_ms.insert(peer_id.to_string(), now);
                        state.neighbors.get(peer_id).map(Arc::clone)
                    }
                };
                if let Some(sender) = sender {
                    let hello = Message::new(
                        inner.msg_seq.fetch_add(1, Ordering::Relaxed),
                        Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control")
                            .unwrap(),
                        inner.id.clone(),
                        inner.clock.now_ms(),
                        Payload::NeighborHello {
                            broker_id: inner.id.clone(),
                        },
                    );
                    let _ = sender.send_frame(&hello.to_bytes());
                }
            }
            Payload::NeighborSubscribe { filter } => {
                let (fresh, others) = {
                    let mut state = inner.state.lock();
                    let fresh = !state.subs.all_filters().contains(filter);
                    state.subs.add_remote(peer_id, filter.clone());
                    inner.routes.bump();
                    let others: Vec<_> = if fresh {
                        state
                            .neighbors
                            .iter()
                            .filter(|(n, _)| n.as_str() != peer_id)
                            .map(|(_, s)| Arc::clone(s))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    (fresh, others)
                };
                inner.subs_cv.notify_all();
                if fresh {
                    let frame = msg.to_bytes();
                    for s in others {
                        let _ = s.send_frame(&frame);
                    }
                }
            }
            Payload::NeighborUnsubscribe { filter } => {
                let (gone, others) = {
                    let mut state = inner.state.lock();
                    state.subs.remove_remote(peer_id, filter);
                    inner.routes.bump();
                    let gone = !state.subs.all_filters().contains(filter);
                    let others: Vec<_> = if gone {
                        state
                            .neighbors
                            .iter()
                            .filter(|(n, _)| n.as_str() != peer_id)
                            .map(|(_, s)| Arc::clone(s))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    (gone, others)
                };
                if gone {
                    let frame = msg.to_bytes();
                    for s in others {
                        let _ = s.send_frame(&frame);
                    }
                }
            }
            _ => {
                route(inner, msg, Origin::Neighbor(peer_id.to_string()));
            }
        }
    }
}


/// Anti-entropy pass: re-advertise the full interest set to each
/// neighbour. Idempotent at the receiver (set insertion), so repeated
/// adverts are harmless; a single lost advert is repaired within one
/// refresh interval.
fn refresh_adverts(inner: &Arc<Inner>) {
    let per_neighbor: Vec<(Arc<dyn FrameSender>, Vec<Topic>)> = {
        let state = inner.state.lock();
        state
            .neighbors
            .iter()
            .map(|(peer, sender)| {
                (
                    Arc::clone(sender),
                    state.subs.filters_for_neighbor(peer).into_iter().collect(),
                )
            })
            .collect()
    };
    for (sender, filters) in per_neighbor {
        for filter in filters {
            let msg = Message::new(
                inner.msg_seq.fetch_add(1, Ordering::Relaxed),
                Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
                inner.id.clone(),
                inner.clock.now_ms(),
                Payload::NeighborSubscribe { filter },
            );
            let _ = sender.send_frame(&msg.to_bytes());
        }
    }
}
