//! The broker node: client attachment, neighbour links, routing,
//! constrained-topic enforcement, token checks, and DoS containment.

use crate::error::BrokerError;
use crate::subscription::SubscriptionTable;
use crate::Result;
use crossbeam::channel::{unbounded, Receiver, Sender};
use nb_crypto::rsa::RsaPublicKey;
use nb_crypto::Uuid;
use nb_transport::clock::SharedClock;
use nb_transport::endpoint::{Endpoint, FrameSender};
use nb_wire::codec::{Decode, Encode};
use nb_wire::constrained::{Action, Actor, AllowedActions, ConstrainedTopic, EventType};
use nb_wire::token::Rights;
use nb_wire::{Message, Payload, Topic};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Broker tuning knobs.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// §5.2: after this many bogus attempts a client is disconnected.
    pub bogus_attempt_limit: u32,
    /// Clock-skew tolerance for token validity windows (the paper
    /// assumes NTP keeps clocks within 30–100 ms).
    pub token_skew_ms: u64,
    /// Enforce authorization tokens on broker-published trace topics.
    pub require_tokens: bool,
    /// Interval for subscription anti-entropy: each broker
    /// periodically re-advertises its full filter set to every
    /// neighbour, repairing adverts lost on unreliable links. `None`
    /// disables the refresher.
    pub advert_refresh: Option<std::time::Duration>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            bogus_attempt_limit: 3,
            token_skew_ms: 100,
            require_tokens: true,
            advert_refresh: Some(std::time::Duration::from_millis(500)),
        }
    }
}

/// Monotonic counters exposed for the benchmarks (message-volume
/// comparisons against the naive baseline).
#[derive(Debug, Default)]
pub struct BrokerStats {
    /// Messages accepted for routing (client + internal publishes).
    pub published: AtomicU64,
    /// Messages handed to local consumers.
    pub delivered_local: AtomicU64,
    /// Messages forwarded to neighbouring brokers.
    pub forwarded: AtomicU64,
    /// Publish/subscribe attempts refused by constraint checks.
    pub rejected: AtomicU64,
    /// Spurious traces dropped for missing/invalid tokens (§5.2).
    pub dropped_spurious: AtomicU64,
    /// Clients disconnected for repeated bogus attempts.
    pub terminated_clients: AtomicU64,
}

/// Point-in-time copy of [`BrokerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`BrokerStats::published`].
    pub published: u64,
    /// See [`BrokerStats::delivered_local`].
    pub delivered_local: u64,
    /// See [`BrokerStats::forwarded`].
    pub forwarded: u64,
    /// See [`BrokerStats::rejected`].
    pub rejected: u64,
    /// See [`BrokerStats::dropped_spurious`].
    pub dropped_spurious: u64,
    /// See [`BrokerStats::terminated_clients`].
    pub terminated_clients: u64,
}

struct ClientHandle {
    sender: Arc<dyn FrameSender>,
    bogus: u32,
    terminated: bool,
}

struct State {
    clients: HashMap<String, ClientHandle>,
    neighbors: HashMap<String, Arc<dyn FrameSender>>,
    subs: SubscriptionTable,
    internal: HashMap<String, Sender<Message>>,
    owner_keys: HashMap<Uuid, RsaPublicKey>,
    /// Rate limiter for hello replies (prevents two registered peers
    /// from bouncing hellos forever).
    hello_replied_ms: HashMap<String, u64>,
}

struct Inner {
    id: String,
    clock: SharedClock,
    config: BrokerConfig,
    state: Mutex<State>,
    stats: BrokerStats,
    msg_seq: AtomicU64,
}

/// Where a message entered this broker.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Origin {
    Client(String),
    Neighbor(String),
    Internal,
}

/// A broker node. Cheap to clone (shared internals).
#[derive(Clone)]
pub struct Broker {
    inner: Arc<Inner>,
}

impl Broker {
    /// Creates a broker with the given identifier and clock.
    pub fn new(id: impl Into<String>, clock: SharedClock, config: BrokerConfig) -> Self {
        let broker = Broker {
            inner: Arc::new(Inner {
                id: id.into(),
                clock,
                config,
                state: Mutex::new(State {
                    clients: HashMap::new(),
                    neighbors: HashMap::new(),
                    subs: SubscriptionTable::new(),
                    internal: HashMap::new(),
                    owner_keys: HashMap::new(),
                    hello_replied_ms: HashMap::new(),
                }),
                stats: BrokerStats::default(),
                msg_seq: AtomicU64::new(1),
            }),
        };
        if let Some(interval) = broker.inner.config.advert_refresh {
            let weak = Arc::downgrade(&broker.inner);
            std::thread::Builder::new()
                .name(format!("{}-advert-refresh", broker.inner.id))
                .spawn(move || loop {
                    std::thread::sleep(interval);
                    let Some(inner) = weak.upgrade() else { return };
                    refresh_adverts(&inner);
                })
                .expect("spawn advert refresher");
        }
        broker
    }

    /// This broker's identifier.
    pub fn id(&self) -> &str {
        &self.inner.id
    }

    /// Counters snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.inner.stats;
        StatsSnapshot {
            published: s.published.load(Ordering::Relaxed),
            delivered_local: s.delivered_local.load(Ordering::Relaxed),
            forwarded: s.forwarded.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            dropped_spurious: s.dropped_spurious.load(Ordering::Relaxed),
            terminated_clients: s.terminated_clients.load(Ordering::Relaxed),
        }
    }

    /// Allocates a fresh message id.
    pub fn next_message_id(&self) -> u64 {
        self.inner.msg_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers the public key of a trace-topic owner so this broker
    /// can fully verify authorization tokens (signature, not just
    /// expiry). The tracing engine calls this during registration.
    pub fn register_topic_owner(&self, trace_topic: Uuid, key: RsaPublicKey) {
        self.inner.state.lock().owner_keys.insert(trace_topic, key);
    }

    /// Attaches a client over `endpoint`; the first frame must be an
    /// `Attach` payload carrying the client id. Spawns the worker
    /// thread and returns immediately.
    pub fn attach_client(&self, endpoint: Endpoint) {
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name(format!("{}-client-worker", inner.id))
            .spawn(move || client_worker(inner, endpoint))
            .expect("spawn client worker");
    }

    /// Connects a neighbouring broker over `endpoint`. Both sides call
    /// this on their half of the link. Spawns the worker thread.
    pub fn connect_neighbor(&self, endpoint: Endpoint) {
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name(format!("{}-neighbor-worker", inner.id))
            .spawn(move || neighbor_worker(inner, endpoint))
            .expect("spawn neighbor worker");
    }

    /// Registers an in-process consumer (the tracing engine, a hosted
    /// TDN) and returns its message channel.
    pub fn register_internal(&self, consumer: &str) -> Receiver<Message> {
        let (tx, rx) = unbounded();
        self.inner
            .state
            .lock()
            .internal
            .insert(consumer.to_string(), tx);
        rx
    }

    /// Subscribes an in-process consumer (treated as the broker
    /// principal for constraint checks).
    pub fn subscribe_internal(&self, consumer: &str, filter: Topic) -> Result<()> {
        let constrained = ConstrainedTopic::parse(&filter)?;
        if let Some(c) = &constrained {
            if !c.permits(&Actor::Broker, Action::Subscribe) {
                return Err(BrokerError::NotPermitted {
                    topic: filter.to_string(),
                    action: "subscribe",
                });
            }
        }
        let suppress = constrained
            .as_ref()
            .is_some_and(|c| c.suppressed() && c.is_constrainer(&Actor::Broker));
        self.add_subscription(consumer, filter, suppress);
        Ok(())
    }

    /// Removes an internal subscription (propagating withdrawal when
    /// no local interest remains).
    pub fn unsubscribe_internal(&self, consumer: &str, filter: &Topic) {
        let (orphaned, neighbors) = {
            let mut state = self.inner.state.lock();
            let orphaned = state.subs.remove_local(consumer, filter);
            let gone = orphaned && !state.subs.all_filters().contains(filter);
            let neighbors: Vec<_> = if gone {
                state.neighbors.values().cloned().collect()
            } else {
                Vec::new()
            };
            (gone, neighbors)
        };
        if orphaned {
            let msg = self.control_message(Payload::NeighborUnsubscribe {
                filter: filter.clone(),
            });
            let frame = msg.to_bytes();
            for n in neighbors {
                let _ = n.send_frame(&frame);
            }
        }
    }

    fn add_subscription(&self, consumer: &str, filter: Topic, suppress_advert: bool) {
        let (fresh, neighbors) = {
            let mut state = self.inner.state.lock();
            let fresh = state.subs.add_local(consumer, filter.clone(), suppress_advert);
            let neighbors: Vec<_> = if fresh {
                state.neighbors.values().cloned().collect()
            } else {
                Vec::new()
            };
            (fresh, neighbors)
        };
        if fresh {
            let msg = self.control_message(Payload::NeighborSubscribe { filter });
            let frame = msg.to_bytes();
            for n in neighbors {
                let _ = n.send_frame(&frame);
            }
        }
    }

    /// Publishes a message as this broker (the tracing engine path).
    /// The caller is responsible for attaching any required
    /// authorization token before publishing.
    pub fn publish_internal(&self, msg: Message) {
        route(&self.inner, msg, Origin::Internal);
    }

    fn control_message(&self, payload: Payload) -> Message {
        Message::new(
            self.next_message_id(),
            Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
            self.inner.id.clone(),
            self.inner.clock.now_ms(),
            payload,
        )
    }

    /// Number of directly attached clients.
    pub fn client_count(&self) -> usize {
        self.inner.state.lock().clients.len()
    }

    /// Number of neighbouring brokers.
    pub fn neighbor_count(&self) -> usize {
        self.inner.state.lock().neighbors.len()
    }
}

/// Validates a trace publication's authorization token (§4.3, §5.2).
///
/// Returns `false` when the message must be discarded.
fn token_acceptable(inner: &Inner, msg: &Message, constrained: &ConstrainedTopic) -> bool {
    // Only broker-published trace channels require tokens.
    let is_trace_publication = constrained.event_type == EventType::Traces
        && constrained.allowed_actions == AllowedActions::PublishOnly;
    if !is_trace_publication || !inner.config.require_tokens {
        return true;
    }
    let Some(token) = &msg.token else {
        return false;
    };
    let now = inner.clock.now_ms();
    // Expiry/window check is always possible.
    if now > token.valid_until_ms.saturating_add(inner.config.token_skew_ms)
        || now + inner.config.token_skew_ms < token.valid_from_ms
    {
        return false;
    }
    // Full signature verification when this broker knows the topic
    // owner (always true at the hosting broker; transit brokers fall
    // back to the window check).
    let owner_key = inner.state.lock().owner_keys.get(&token.trace_topic).cloned();
    match owner_key {
        Some(key) => token
            .verify(&key, Rights::Publish, now, inner.config.token_skew_ms)
            .is_ok(),
        None => true,
    }
}

fn route(inner: &Inner, msg: Message, origin: Origin) {
    let constrained = match ConstrainedTopic::parse(&msg.topic) {
        Ok(c) => c,
        Err(_) => {
            inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };

    // Enforcement depends on where the message came from.
    match &origin {
        Origin::Client(id) => {
            if let Some(c) = &constrained {
                if !c.permits(&Actor::Entity(id.clone()), Action::Publish) {
                    inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    punish(inner, id);
                    return;
                }
            }
        }
        Origin::Neighbor(_) => {
            if let Some(c) = &constrained {
                if !token_acceptable(inner, &msg, c) {
                    inner.stats.dropped_spurious.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        Origin::Internal => {}
    }
    if matches!(origin, Origin::Client(_) | Origin::Internal) {
        inner.stats.published.fetch_add(1, Ordering::Relaxed);
        // The hosting broker also validates tokens on its own trace
        // publications' ingress from clients (clients can never publish
        // there — permits() already refused — so this is for Internal).
        if let (Origin::Internal, Some(c)) = (&origin, &constrained) {
            if !token_acceptable(inner, &msg, c) {
                inner.stats.dropped_spurious.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    // Distribution suppression: the constrainer's publishes stay local
    // on Suppress links (§3.1 {Distribution}).
    let origin_actor = match &origin {
        Origin::Client(id) => Actor::Entity(id.clone()),
        Origin::Neighbor(_) | Origin::Internal => Actor::Broker,
    };
    let forward_allowed = match &constrained {
        Some(c) => !(c.suppressed() && c.is_constrainer(&origin_actor)),
        None => true,
    };

    // Collect recipients under the lock, deliver outside it.
    let (client_senders, internal_senders, neighbor_senders) = {
        let state = inner.state.lock();
        let locals = state.subs.local_matches(&msg.topic);
        let mut client_senders = Vec::new();
        let mut internal_senders = Vec::new();
        for consumer in locals {
            // Don't echo a message back to its publisher.
            if matches!(&origin, Origin::Client(id) if id == &consumer) {
                continue;
            }
            if let Some(handle) = state.clients.get(&consumer) {
                if !handle.terminated {
                    client_senders.push(Arc::clone(&handle.sender));
                }
            } else if let Some(tx) = state.internal.get(&consumer) {
                internal_senders.push(tx.clone());
            }
        }
        let neighbor_senders: Vec<_> = if forward_allowed {
            state
                .subs
                .remote_matches(&msg.topic)
                .into_iter()
                .filter(|n| !matches!(&origin, Origin::Neighbor(from) if from == n))
                .filter_map(|n| state.neighbors.get(&n).map(Arc::clone))
                .collect()
        } else {
            Vec::new()
        };
        (client_senders, internal_senders, neighbor_senders)
    };

    let frame = msg.to_bytes();
    for sender in &client_senders {
        if sender.send_frame(&frame).is_ok() {
            inner.stats.delivered_local.fetch_add(1, Ordering::Relaxed);
        }
    }
    for tx in &internal_senders {
        if tx.send(msg.clone()).is_ok() {
            inner.stats.delivered_local.fetch_add(1, Ordering::Relaxed);
        }
    }
    for sender in &neighbor_senders {
        if sender.send_frame(&frame).is_ok() {
            inner.stats.forwarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Records a bogus attempt; terminates the client at the limit (§5.2).
fn punish(inner: &Inner, client_id: &str) {
    let mut state = inner.state.lock();
    if let Some(handle) = state.clients.get_mut(client_id) {
        handle.bogus += 1;
        if handle.bogus >= inner.config.bogus_attempt_limit && !handle.terminated {
            handle.terminated = true;
            inner.stats.terminated_clients.fetch_add(1, Ordering::Relaxed);
            let sender = Arc::clone(&handle.sender);
            drop(state);
            let msg = Message::new(
                0,
                Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
                inner.id.clone(),
                inner.clock.now_ms(),
                Payload::Nack {
                    reason: "communications terminated: repeated bogus attempts".to_string(),
                },
            );
            let _ = sender.send_frame(&msg.to_bytes());
            // Remove all state for the client.
            let mut state = inner.state.lock();
            state.clients.remove(client_id);
            state.subs.remove_consumer(client_id);
        }
    }
}

fn is_terminated(inner: &Inner, client_id: &str) -> bool {
    let state = inner.state.lock();
    !state.clients.contains_key(client_id)
}

fn client_worker(inner: Arc<Inner>, endpoint: Endpoint) {
    let inner = &inner;
    // Handshake: first frame must be Attach.
    let client_id = loop {
        let Ok(frame) = endpoint.recv() else { return };
        match Message::from_bytes(&frame) {
            Ok(msg) => {
                if let Payload::Attach { client_id } = &msg.payload {
                    let id = client_id.clone();
                    {
                        let mut state = inner.state.lock();
                        state.clients.insert(
                            id.clone(),
                            ClientHandle {
                                sender: endpoint.sender(),
                                bogus: 0,
                                terminated: false,
                            },
                        );
                    }
                    let ack = Message::new(
                        0,
                        msg.topic.clone(),
                        inner.id.clone(),
                        inner.clock.now_ms(),
                        Payload::Ack,
                    )
                    .correlated(msg.id);
                    let _ = endpoint.send(&ack.to_bytes());
                    break id;
                }
                // Ignore anything before Attach.
            }
            Err(_) => continue,
        }
    };

    loop {
        let Ok(frame) = endpoint.recv() else {
            // Link dropped: clean up.
            let mut state = inner.state.lock();
            state.clients.remove(&client_id);
            state.subs.remove_consumer(&client_id);
            return;
        };
        if is_terminated(inner, &client_id) {
            return;
        }
        let msg = match Message::from_bytes(&frame) {
            Ok(m) => m,
            Err(_) => {
                punish(inner, &client_id);
                continue;
            }
        };
        match &msg.payload {
            Payload::Subscribe { filter } => {
                handle_client_subscribe(inner, &endpoint, &client_id, &msg, filter.clone());
            }
            Payload::Unsubscribe { filter } => {
                let mut state = inner.state.lock();
                state.subs.remove_local(&client_id, filter);
                drop(state);
                let ack = Message::new(
                    0,
                    msg.topic.clone(),
                    inner.id.clone(),
                    inner.clock.now_ms(),
                    Payload::Ack,
                )
                .correlated(msg.id);
                let _ = endpoint.send(&ack.to_bytes());
            }
            Payload::Attach { .. } => {
                // Duplicate attach (client retried over a lossy link):
                // acknowledge again, idempotently.
                let ack = Message::new(
                    0,
                    msg.topic.clone(),
                    inner.id.clone(),
                    inner.clock.now_ms(),
                    Payload::Ack,
                )
                .correlated(msg.id);
                let _ = endpoint.send(&ack.to_bytes());
            }
            _ => {
                route(inner, msg, Origin::Client(client_id.clone()));
            }
        }
    }
}

fn handle_client_subscribe(
    inner: &Arc<Inner>,
    endpoint: &Endpoint,
    client_id: &str,
    msg: &Message,
    filter: Topic,
) {
    let allowed = match ConstrainedTopic::parse(&filter) {
        Ok(Some(c)) => c.permits(&Actor::Entity(client_id.to_string()), Action::Subscribe),
        Ok(None) => true,
        Err(_) => false,
    };
    if !allowed {
        inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
        let nack = Message::new(
            0,
            msg.topic.clone(),
            inner.id.clone(),
            inner.clock.now_ms(),
            Payload::Nack {
                reason: format!("subscribe not permitted on {filter}"),
            },
        )
        .correlated(msg.id);
        let _ = endpoint.send(&nack.to_bytes());
        punish(inner, client_id);
        return;
    }
    let suppress = match ConstrainedTopic::parse(&filter) {
        Ok(Some(c)) => c.suppressed() && c.is_constrainer(&Actor::Entity(client_id.to_string())),
        _ => false,
    };
    // Reuse the broker's advertisement machinery.
    let broker = Broker {
        inner: Arc::clone(inner),
    };
    broker.add_subscription(client_id, filter, suppress);
    let ack = Message::new(
        0,
        msg.topic.clone(),
        inner.id.clone(),
        inner.clock.now_ms(),
        Payload::Ack,
    )
    .correlated(msg.id);
    let _ = endpoint.send(&ack.to_bytes());
}

fn neighbor_worker(inner: Arc<Inner>, endpoint: Endpoint) {
    let inner = &inner;
    // Identify ourselves and advertise all current interest.
    let hello = Message::new(
        0,
        Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
        inner.id.clone(),
        inner.clock.now_ms(),
        Payload::NeighborHello {
            broker_id: inner.id.clone(),
        },
    );
    if endpoint.send(&hello.to_bytes()).is_err() {
        return;
    }
    let filters: Vec<Topic> = {
        let state = inner.state.lock();
        state.subs.advertisable_filters().into_iter().collect()
    };
    for filter in filters {
        let adv = Message::new(
            0,
            Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
            inner.id.clone(),
            inner.clock.now_ms(),
            Payload::NeighborSubscribe { filter },
        );
        if endpoint.send(&adv.to_bytes()).is_err() {
            return;
        }
    }

    // Wait for the peer's hello, buffering anything (e.g. adverts
    // reordered by jitter) that arrives before it. The hello is
    // retransmitted periodically so a lossy link cannot wedge the
    // handshake.
    let mut buffered: Vec<Message> = Vec::new();
    let peer_id = loop {
        match endpoint.recv_timeout(std::time::Duration::from_millis(200)) {
            Ok(frame) => {
                if let Ok(msg) = Message::from_bytes(&frame) {
                    if let Payload::NeighborHello { broker_id } = &msg.payload {
                        let id = broker_id.clone();
                        inner
                            .state
                            .lock()
                            .neighbors
                            .insert(id.clone(), endpoint.sender());
                        break id;
                    }
                    buffered.push(msg);
                }
            }
            Err(nb_transport::TransportError::Timeout) => {
                if endpoint.send(&hello.to_bytes()).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    };
    for msg in buffered {
        handle_neighbor_message(inner, &peer_id, msg);
    }

    loop {
        let Ok(frame) = endpoint.recv() else {
            let mut state = inner.state.lock();
            state.neighbors.remove(&peer_id);
            state.subs.remove_neighbor(&peer_id);
            return;
        };
        let Ok(msg) = Message::from_bytes(&frame) else {
            continue;
        };
        handle_neighbor_message(inner, &peer_id, msg);
    }
}

fn handle_neighbor_message(inner: &Arc<Inner>, peer_id: &str, msg: Message) {
    {
        match &msg.payload {
            Payload::NeighborHello { .. } => {
                // The peer is (re)announcing itself — our own hello may
                // have been lost. Answer with a fresh hello; the
                // exchange quiesces once both sides are registered
                // (peers stop retransmitting after registration).
                let now = inner.clock.now_ms();
                let sender = {
                    let mut state = inner.state.lock();
                    let last = state.hello_replied_ms.get(peer_id).copied().unwrap_or(0);
                    if now.saturating_sub(last) < 1000 {
                        None // rate-limited: at most one reply per second
                    } else {
                        state.hello_replied_ms.insert(peer_id.to_string(), now);
                        state.neighbors.get(peer_id).map(Arc::clone)
                    }
                };
                if let Some(sender) = sender {
                    let hello = Message::new(
                        inner.msg_seq.fetch_add(1, Ordering::Relaxed),
                        Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control")
                            .unwrap(),
                        inner.id.clone(),
                        inner.clock.now_ms(),
                        Payload::NeighborHello {
                            broker_id: inner.id.clone(),
                        },
                    );
                    let _ = sender.send_frame(&hello.to_bytes());
                }
            }
            Payload::NeighborSubscribe { filter } => {
                let (fresh, others) = {
                    let mut state = inner.state.lock();
                    let fresh = !state.subs.all_filters().contains(filter);
                    state.subs.add_remote(peer_id, filter.clone());
                    let others: Vec<_> = if fresh {
                        state
                            .neighbors
                            .iter()
                            .filter(|(n, _)| n.as_str() != peer_id)
                            .map(|(_, s)| Arc::clone(s))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    (fresh, others)
                };
                if fresh {
                    let frame = msg.to_bytes();
                    for s in others {
                        let _ = s.send_frame(&frame);
                    }
                }
            }
            Payload::NeighborUnsubscribe { filter } => {
                let (gone, others) = {
                    let mut state = inner.state.lock();
                    state.subs.remove_remote(peer_id, filter);
                    let gone = !state.subs.all_filters().contains(filter);
                    let others: Vec<_> = if gone {
                        state
                            .neighbors
                            .iter()
                            .filter(|(n, _)| n.as_str() != peer_id)
                            .map(|(_, s)| Arc::clone(s))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    (gone, others)
                };
                if gone {
                    let frame = msg.to_bytes();
                    for s in others {
                        let _ = s.send_frame(&frame);
                    }
                }
            }
            _ => {
                route(inner, msg, Origin::Neighbor(peer_id.to_string()));
            }
        }
    }
}


/// Anti-entropy pass: re-advertise the full interest set to each
/// neighbour. Idempotent at the receiver (set insertion), so repeated
/// adverts are harmless; a single lost advert is repaired within one
/// refresh interval.
fn refresh_adverts(inner: &Arc<Inner>) {
    let per_neighbor: Vec<(Arc<dyn FrameSender>, Vec<Topic>)> = {
        let state = inner.state.lock();
        state
            .neighbors
            .iter()
            .map(|(peer, sender)| {
                (
                    Arc::clone(sender),
                    state.subs.filters_for_neighbor(peer).into_iter().collect(),
                )
            })
            .collect()
    };
    for (sender, filters) in per_neighbor {
        for filter in filters {
            let msg = Message::new(
                inner.msg_seq.fetch_add(1, Ordering::Relaxed),
                Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap(),
                inner.id.clone(),
                inner.clock.now_ms(),
                Payload::NeighborSubscribe { filter },
            );
            let _ = sender.send_frame(&msg.to_bytes());
        }
    }
}
