//! Durable broker state: the journalled ops and snapshot codec for
//! [`nb_store::Durable`].
//!
//! What a broker persists is its **control plane**: which consumer
//! holds which local subscription (and whether its adverts are
//! suppressed), and the trace-topic owner keys used for full token
//! verification. Data frames are never journalled — the paper's
//! delivery model is best-effort pub/sub, and the PR 5 link supervisor
//! already replays in-flight frames across outages — so the WAL stays
//! off the routing fast path entirely.
//!
//! On restart the recovered subscriptions are re-installed before any
//! link comes up, which makes neighbour re-sync automatic: the
//! neighbour handshake advertises `advertisable_filters()` — now
//! including everything recovered — and a client re-attaching under
//! its old id resumes deliveries without re-subscribing.

use nb_crypto::rsa::RsaPublicKey;
use nb_crypto::Uuid;
use nb_store::DurableState;
use nb_wire::codec::{Decode, Encode, Reader, Writer};
use nb_wire::{Topic, WireError};
use std::collections::BTreeMap;

/// One journalled control-plane mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerOp {
    /// A consumer gained a local subscription.
    SubAdd {
        /// Consumer id (attached client or in-process consumer).
        consumer: String,
        /// The subscription filter.
        filter: Topic,
        /// Whether neighbour adverts for it are suppressed
        /// (constrained-topic `{Distribution}` rules).
        suppressed: bool,
    },
    /// A consumer dropped one local subscription.
    SubRemove {
        /// Consumer id.
        consumer: String,
        /// The withdrawn filter.
        filter: Topic,
    },
    /// A consumer detached cleanly (all its subscriptions go with it).
    /// Recorded on orderly disconnect and DoS termination — *not* on
    /// crash, which is what lets a restarted broker restore the
    /// subscriptions of clients that will re-attach.
    ConsumerGone {
        /// Consumer id.
        consumer: String,
    },
    /// A trace-topic owner key was registered for token verification.
    OwnerKey {
        /// The trace topic.
        topic: Uuid,
        /// The owner's public key.
        key: RsaPublicKey,
    },
}

impl Encode for BrokerOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            BrokerOp::SubAdd {
                consumer,
                filter,
                suppressed,
            } => {
                w.put_u8(1);
                w.put_str(consumer);
                filter.encode(w);
                w.put_bool(*suppressed);
            }
            BrokerOp::SubRemove { consumer, filter } => {
                w.put_u8(2);
                w.put_str(consumer);
                filter.encode(w);
            }
            BrokerOp::ConsumerGone { consumer } => {
                w.put_u8(3);
                w.put_str(consumer);
            }
            BrokerOp::OwnerKey { topic, key } => {
                w.put_u8(4);
                w.put_uuid(topic);
                w.put_bytes(&key.to_bytes());
            }
        }
    }
}

impl Decode for BrokerOp {
    fn decode(r: &mut Reader<'_>) -> nb_wire::Result<Self> {
        match r.get_u8()? {
            1 => Ok(BrokerOp::SubAdd {
                consumer: r.get_str()?,
                filter: Topic::decode(r)?,
                suppressed: r.get_bool()?,
            }),
            2 => Ok(BrokerOp::SubRemove {
                consumer: r.get_str()?,
                filter: Topic::decode(r)?,
            }),
            3 => Ok(BrokerOp::ConsumerGone {
                consumer: r.get_str()?,
            }),
            4 => {
                let topic = r.get_uuid()?;
                let key_bytes = r.get_bytes()?;
                let key = RsaPublicKey::from_bytes(&key_bytes).map_err(WireError::Crypto)?;
                Ok(BrokerOp::OwnerKey { topic, key })
            }
            tag => Err(WireError::UnknownTag {
                what: "broker op",
                tag,
            }),
        }
    }
}

/// The broker's durable control-plane state (the replay target).
///
/// Deterministic (`BTreeMap`) so identical histories produce
/// byte-identical snapshots.
#[derive(Debug, Default)]
pub struct BrokerDurableState {
    /// `(consumer, filter)` → advert-suppression flag.
    pub subs: BTreeMap<(String, Topic), bool>,
    /// Trace topic → owner public key.
    pub owner_keys: BTreeMap<Uuid, RsaPublicKey>,
}

impl DurableState for BrokerDurableState {
    type Op = BrokerOp;

    fn apply(&mut self, op: BrokerOp) {
        match op {
            BrokerOp::SubAdd {
                consumer,
                filter,
                suppressed,
            } => {
                self.subs.insert((consumer, filter), suppressed);
            }
            BrokerOp::SubRemove { consumer, filter } => {
                self.subs.remove(&(consumer, filter));
            }
            BrokerOp::ConsumerGone { consumer } => {
                self.subs.retain(|(c, _), _| *c != consumer);
            }
            BrokerOp::OwnerKey { topic, key } => {
                self.owner_keys.insert(topic, key);
            }
        }
    }

    fn snapshot_encode(&self, w: &mut Writer) {
        w.put_varint(self.subs.len() as u64);
        for ((consumer, filter), suppressed) in &self.subs {
            w.put_str(consumer);
            filter.encode(w);
            w.put_bool(*suppressed);
        }
        w.put_varint(self.owner_keys.len() as u64);
        for (topic, key) in &self.owner_keys {
            w.put_uuid(topic);
            w.put_bytes(&key.to_bytes());
        }
    }

    fn snapshot_decode(r: &mut Reader<'_>) -> nb_wire::Result<Self> {
        let mut state = BrokerDurableState::default();
        let n = r.get_varint()?;
        for _ in 0..n {
            let consumer = r.get_str()?;
            let filter = Topic::decode(r)?;
            let suppressed = r.get_bool()?;
            state.subs.insert((consumer, filter), suppressed);
        }
        let n = r.get_varint()?;
        for _ in 0..n {
            let topic = r.get_uuid()?;
            let key_bytes = r.get_bytes()?;
            let key = RsaPublicKey::from_bytes(&key_bytes).map_err(WireError::Crypto)?;
            state.owner_keys.insert(topic, key);
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_store::{Durable, StoreConfig, TempDir};

    fn topic(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    #[test]
    fn ops_round_trip_the_codec() {
        let ops = [
            BrokerOp::SubAdd {
                consumer: "tracker-1".into(),
                filter: topic("Availability/Traces/web"),
                suppressed: true,
            },
            BrokerOp::SubRemove {
                consumer: "tracker-1".into(),
                filter: topic("Availability/Traces/web"),
            },
            BrokerOp::ConsumerGone {
                consumer: "tracker-1".into(),
            },
        ];
        for op in &ops {
            let bytes = op.to_bytes();
            assert_eq!(&BrokerOp::from_bytes(&bytes).unwrap(), op);
        }
    }

    #[test]
    fn state_recovers_across_reopen() {
        let dir = TempDir::new("broker-persist").unwrap();
        {
            let (mut d, mut s, _) =
                Durable::<BrokerDurableState>::open(dir.path(), "broker", StoreConfig::default())
                    .unwrap();
            for op in [
                BrokerOp::SubAdd {
                    consumer: "a".into(),
                    filter: topic("x/y"),
                    suppressed: false,
                },
                BrokerOp::SubAdd {
                    consumer: "b".into(),
                    filter: topic("x/z"),
                    suppressed: false,
                },
                BrokerOp::ConsumerGone {
                    consumer: "b".into(),
                },
            ] {
                d.record(&op).unwrap();
                s.apply(op);
            }
            d.checkpoint(&s).unwrap();
        }
        let (_, s, rec) =
            Durable::<BrokerDurableState>::open(dir.path(), "broker", StoreConfig::default())
                .unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(s.subs.len(), 1);
        assert!(s.subs.contains_key(&("a".to_string(), topic("x/y"))));
    }
}
