//! Topology builders for multi-broker deployments — the shapes used in
//! the paper's benchmarks: chains for the hop-count sweeps (Figure 1),
//! stars for the tracker-scaling runs (Figure 3).
//!
//! Links can run over three media, mirroring the paper's transport
//! comparison: the deterministic simulated network (default), real TCP
//! over loopback, or real UDP over loopback.

use crate::client::BrokerClient;
use crate::node::{Broker, BrokerConfig};
use crate::Result;
use nb_telemetry::NodeSpans;
use nb_transport::clock::SharedClock;
use nb_transport::endpoint::Endpoint;
use nb_transport::sim::{LinkConfig, LinkId, SimNetwork};
use nb_transport::{tcp, udp, TransportError};
use std::time::Duration;

/// The link medium for a broker network.
#[derive(Debug, Clone, Copy)]
pub enum Medium {
    /// In-process simulated links with the given behaviour.
    Sim(LinkConfig),
    /// Real TCP streams over 127.0.0.1 (length-prefixed frames).
    Tcp,
    /// Real UDP datagrams over 127.0.0.1.
    Udp,
}

impl Medium {
    /// Creates one link pair; simulated links also report the
    /// [`LinkId`] handle used for fault injection (real-socket media
    /// return `None` — their faults come from the OS, not a script).
    fn pair(&self, net: &SimNetwork) -> Result<(Endpoint, Endpoint, Option<LinkId>)> {
        match self {
            Medium::Sim(cfg) => {
                let (a, b, id) = net.symmetric_link_with_id(*cfg);
                Ok((a, b, Some(id)))
            }
            Medium::Tcp => {
                let listener = tcp::TcpTransportListener::bind("127.0.0.1:0")?;
                let addr = listener.local_addr()?;
                let client = std::thread::spawn(move || tcp::connect(addr));
                let server = listener.accept()?;
                let client = client
                    .join()
                    .map_err(|_| TransportError::Closed)?
                    .map_err(crate::BrokerError::Transport)?;
                Ok((server, client, None))
            }
            Medium::Udp => {
                let (a, b) = udp::loopback_pair()?;
                Ok((a, b, None))
            }
        }
    }
}

/// A set of brokers wired over one medium.
pub struct BrokerNetwork {
    /// The broker nodes, in construction order.
    pub brokers: Vec<Broker>,
    /// Neighbour count each broker reaches once the mesh is up
    /// (mirrors the links laid down by the topology builder).
    expected_degree: Vec<usize>,
    /// Inter-broker links in construction order (chain: link `i` joins
    /// brokers `i` and `i+1`; star: link `i` joins the hub and spoke
    /// `i+1`). `None` for real-socket media.
    links: Vec<Option<LinkId>>,
    net: SimNetwork,
    clock: SharedClock,
    medium: Medium,
}

impl BrokerNetwork {
    /// Builds a chain `b0 — b1 — … — b(n-1)` over simulated links.
    pub fn chain(
        n: usize,
        link_cfg: LinkConfig,
        clock: SharedClock,
        broker_cfg: BrokerConfig,
    ) -> Self {
        Self::chain_over(n, Medium::Sim(link_cfg), clock, broker_cfg)
            .expect("sim chain construction cannot fail")
    }

    /// Builds a chain over an arbitrary medium.
    pub fn chain_over(
        n: usize,
        medium: Medium,
        clock: SharedClock,
        broker_cfg: BrokerConfig,
    ) -> Result<Self> {
        assert!(n >= 1);
        let net = SimNetwork::new(0x10b0);
        let brokers: Vec<Broker> = (0..n)
            .map(|i| Broker::new(format!("broker-{i}"), clock.clone(), broker_cfg.clone()))
            .collect();
        let mut expected_degree = vec![0usize; n];
        let mut links = Vec::new();
        for i in 0..n.saturating_sub(1) {
            let (a, b, id) = medium.pair(&net)?;
            brokers[i].connect_neighbor(a);
            brokers[i + 1].connect_neighbor(b);
            expected_degree[i] += 1;
            expected_degree[i + 1] += 1;
            links.push(id);
        }
        Ok(BrokerNetwork {
            brokers,
            expected_degree,
            links,
            net,
            clock,
            medium,
        })
    }

    /// Builds a star over simulated links: broker 0 is the hub,
    /// brokers `1..=leaves` are spokes.
    pub fn star(
        leaves: usize,
        link_cfg: LinkConfig,
        clock: SharedClock,
        broker_cfg: BrokerConfig,
    ) -> Self {
        Self::star_over(leaves, Medium::Sim(link_cfg), clock, broker_cfg)
            .expect("sim star construction cannot fail")
    }

    /// Builds a star over an arbitrary medium.
    pub fn star_over(
        leaves: usize,
        medium: Medium,
        clock: SharedClock,
        broker_cfg: BrokerConfig,
    ) -> Result<Self> {
        let net = SimNetwork::new(0x57a7);
        let brokers: Vec<Broker> = (0..=leaves)
            .map(|i| Broker::new(format!("broker-{i}"), clock.clone(), broker_cfg.clone()))
            .collect();
        let mut expected_degree = vec![0usize; leaves + 1];
        let mut links = Vec::new();
        for i in 1..=leaves {
            let (a, b, id) = medium.pair(&net)?;
            brokers[0].connect_neighbor(a);
            brokers[i].connect_neighbor(b);
            expected_degree[0] += 1;
            expected_degree[i] += 1;
            links.push(id);
        }
        Ok(BrokerNetwork {
            brokers,
            expected_degree,
            links,
            net,
            clock,
            medium,
        })
    }

    /// A broker by index.
    pub fn broker(&self, idx: usize) -> &Broker {
        &self.brokers[idx]
    }

    /// Number of brokers.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// Whether the network has no brokers.
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// Attaches a new client to broker `idx` over the network's
    /// default medium.
    pub fn attach_client(&self, idx: usize, client_id: &str) -> Result<BrokerClient> {
        self.attach_client_over(idx, client_id, self.medium)
    }

    /// Attaches a client over a custom-behaviour simulated link.
    pub fn attach_client_with(
        &self,
        idx: usize,
        client_id: &str,
        link_cfg: LinkConfig,
    ) -> Result<BrokerClient> {
        self.attach_client_over(idx, client_id, Medium::Sim(link_cfg))
    }

    /// Attaches a client over an explicit medium.
    pub fn attach_client_over(
        &self,
        idx: usize,
        client_id: &str,
        medium: Medium,
    ) -> Result<BrokerClient> {
        let (broker_side, client_side, _link) = medium.pair(&self.net)?;
        self.brokers[idx].attach_client(broker_side);
        BrokerClient::attach(
            client_side,
            client_id,
            self.clock.clone(),
            Duration::from_secs(5),
        )
    }

    /// Captures every broker's flight recorder, in broker order —
    /// ready for `nb_telemetry::json_lines` / `chrome_trace`.
    pub fn telemetry_spans(&self) -> Vec<NodeSpans> {
        self.brokers
            .iter()
            .map(|b| NodeSpans::capture(b.flight_recorder()))
            .collect()
    }

    /// The [`LinkId`] of inter-broker link `idx` (construction order —
    /// see the `links` field docs). `None` for real-socket media.
    pub fn link_id(&self, idx: usize) -> Option<LinkId> {
        self.links.get(idx).copied().flatten()
    }

    /// Number of inter-broker links laid down by the topology builder.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Severs inter-broker link `idx` (simulated media only): sends
    /// fail and in-flight frames are lost until
    /// [`BrokerNetwork::restore_link`]. Returns whether the link was
    /// scriptable.
    pub fn drop_link(&self, idx: usize) -> bool {
        self.link_id(idx).map(|id| self.net.drop_link(id)).is_some()
    }

    /// Heals inter-broker link `idx`. Returns whether the link was
    /// scriptable.
    pub fn restore_link(&self, idx: usize) -> bool {
        self.link_id(idx).map(|id| self.net.restore(id)).is_some()
    }

    /// Makes inter-broker link `idx` drop frames with probability `p`
    /// for `duration`. Returns whether the link was scriptable.
    pub fn flaky_link(&self, idx: usize, p: f64, duration: Duration) -> bool {
        self.link_id(idx)
            .map(|id| self.net.flaky(id, p, duration))
            .is_some()
    }

    /// Downs every listed inter-broker link at once — a partition.
    /// Returns how many links were scriptable.
    pub fn partition(&self, link_idxs: &[usize]) -> usize {
        link_idxs
            .iter()
            .filter(|&&idx| self.drop_link(idx))
            .count()
    }

    /// Installs a frame-rewriting adversary on inter-broker link `idx`
    /// (simulated media only): every frame crossing the link, in both
    /// directions, passes through `f` before delivery. Returns whether
    /// the link was scriptable. See [`SimNetwork::tamper`].
    pub fn tamper_link<F>(&self, idx: usize, f: F) -> bool
    where
        F: Fn(Vec<u8>) -> Vec<u8> + Send + Sync + 'static,
    {
        self.link_id(idx).map(|id| self.net.tamper(id, f)).is_some()
    }

    /// Installs a replay adversary on inter-broker link `idx`: every
    /// frame is delivered `1 + copies` times. Returns whether the link
    /// was scriptable. See [`SimNetwork::replay`].
    pub fn replay_link(&self, idx: usize, copies: u32) -> bool {
        self.link_id(idx)
            .map(|id| self.net.replay(id, copies))
            .is_some()
    }

    /// Stands down any adversary on inter-broker link `idx`. Returns
    /// whether the link was scriptable.
    pub fn clear_link_adversary(&self, idx: usize) -> bool {
        self.link_id(idx)
            .map(|id| self.net.clear_adversary(id))
            .is_some()
    }

    /// The underlying simulated network (fault scripting against
    /// client links created with
    /// [`BrokerNetwork::attach_client_with`]).
    pub fn sim(&self) -> &SimNetwork {
        &self.net
    }

    /// Waits until every broker has registered its expected
    /// neighbours (startup barrier for tests/benches).
    ///
    /// Event-driven: each broker blocks on
    /// [`Broker::wait_for_neighbors`], which is woken by the neighbour
    /// workers the moment a registration lands — no sleep-polling, so
    /// the barrier releases as soon as the last handshake completes.
    pub fn wait_for_mesh(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        self.brokers
            .iter()
            .zip(&self.expected_degree)
            .all(|(broker, &want)| {
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                broker.wait_for_neighbors(want, remaining)
            })
    }
}
