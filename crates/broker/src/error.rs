//! Broker error type.

use nb_transport::TransportError;
use nb_wire::WireError;
use std::fmt;

/// Errors raised by broker nodes and clients.
#[derive(Debug)]
pub enum BrokerError {
    /// The link to the peer failed.
    Transport(TransportError),
    /// A frame failed to decode.
    Wire(WireError),
    /// The action is not permitted on a constrained topic.
    NotPermitted {
        /// The topic involved.
        topic: String,
        /// What was attempted.
        action: &'static str,
    },
    /// A trace publication lacked a (valid) authorization token.
    TokenRequired(String),
    /// The broker refused a control request.
    Refused(String),
    /// The client was disconnected for repeated bogus attempts (§5.2).
    Terminated,
    /// A request timed out waiting for its response.
    Timeout,
    /// The named client/neighbor is unknown.
    Unknown(String),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Transport(e) => write!(f, "transport: {e}"),
            BrokerError::Wire(e) => write!(f, "wire: {e}"),
            BrokerError::NotPermitted { topic, action } => {
                write!(f, "{action} not permitted on constrained topic {topic}")
            }
            BrokerError::TokenRequired(topic) => {
                write!(f, "authorization token required on {topic}")
            }
            BrokerError::Refused(reason) => write!(f, "refused: {reason}"),
            BrokerError::Terminated => write!(f, "communications terminated (bogus attempts)"),
            BrokerError::Timeout => write!(f, "request timed out"),
            BrokerError::Unknown(who) => write!(f, "unknown peer: {who}"),
        }
    }
}

impl std::error::Error for BrokerError {}

impl From<TransportError> for BrokerError {
    fn from(e: TransportError) -> Self {
        BrokerError::Transport(e)
    }
}

impl From<WireError> for BrokerError {
    fn from(e: WireError) -> Self {
        BrokerError::Wire(e)
    }
}
