//! The broker data plane's fast path: a sharded, versioned routing
//! cache.
//!
//! Routing a data frame through [`crate::node`]'s full path costs a
//! decode of the whole envelope, a `ConstrainedTopic` parse, two
//! subscription-table scans under the broker's single state mutex, and
//! a re-encode — per message. This module caches the *outcome* of all
//! of that per topic, so the steady-state data plane degenerates to:
//! borrow-parse the frame ([`nb_wire::MessageView`]), hash the topic
//! bytes, one sharded read-lock lookup, and a fan-out of the original
//! frame bytes to the cached destinations. No allocation, no state
//! mutex, no re-encode (enforced by `tests/no_alloc_route.rs`).
//!
//! ## Consistency model
//!
//! A single global [`RouteCache::bump`] version is incremented (under
//! the broker state lock) by **every** control-plane mutation that can
//! change a routing decision: client attach/detach, neighbour
//! registration/departure, any subscription add/remove, internal
//! consumer registration, and client termination. Each cache entry
//! records the version observed *while holding the state lock* at fill
//! time; a lookup whose entry version differs from the current global
//! version is treated as a miss and refilled. Entries are therefore
//! never stale: either the version matches and the entry reflects the
//! exact state the control plane last published, or the fast path
//! falls back and refills.
//!
//! ## Locking
//!
//! Lookups take only a shard read lock. Fills take the broker state
//! lock (to snapshot destinations and the version atomically), release
//! it, then take one shard write lock. No path ever holds a shard lock
//! and the state lock simultaneously, so no lock-order cycle exists.

use nb_crypto::Uuid;
use nb_metrics::{Counter, Histogram, Registry};
use nb_transport::endpoint::FrameSender;
use nb_wire::constrained::{
    Action, Actor, AllowedActions, ConstrainedTopic, Constrainer, EventType,
};
use nb_wire::{Topic, TopicView};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independent cache shards. Concurrent routes on different
/// topics contend only when their topic hashes collide modulo this.
const SHARDS: usize = 16;

/// Who may publish on a topic, resolved once at cache-fill time so the
/// fast path never re-parses the constrained-topic grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PublishRule {
    /// Anyone may publish (unconstrained, or publish not reserved).
    Anyone,
    /// Publishing is reserved to brokers; client publishes are bogus.
    BrokerOnly,
    /// Publishing is reserved to this one entity.
    EntityOnly(String),
}

/// Routing-relevant facts about one topic, precomputed at fill time
/// from [`ConstrainedTopic::parse`].
#[derive(Debug, Clone)]
pub(crate) struct TopicPolicy {
    /// Publish permission, per §3.1 constrained-topic enforcement.
    pub publish_rule: PublishRule,
    /// Broker-published trace channel (§4.3): neighbour/internal
    /// ingress must carry a valid token. The fast path defers these to
    /// the full path, which performs signature verification.
    pub requires_token: bool,
    /// Suppress/Limited distribution with a Broker constrainer:
    /// neighbour/internal publishes stay local.
    pub suppress_broker: bool,
    /// Suppress/Limited distribution with an entity constrainer: that
    /// entity's publishes stay local.
    pub suppress_entity: Option<String>,
    /// The trace-topic uuid parsed from the publication suffix, when
    /// the channel requires tokens and the suffix is a uuid. Binds
    /// session keys to the one topic they were minted for: a key for
    /// topic A can never authenticate a frame on topic B.
    pub session_topic: Option<Uuid>,
    /// Bounded-cardinality per-topic metric label (event-type segment,
    /// or `plain`).
    pub family: String,
}

impl TopicPolicy {
    /// Compiles the policy for `topic`. `Err` from the constrained
    /// parser is surfaced so the caller can leave enforcement (reject +
    /// punish) to the full path.
    pub(crate) fn compile(topic: &Topic) -> Result<Self, ()> {
        let constrained = ConstrainedTopic::parse(topic).map_err(|_| ())?;
        Ok(match constrained {
            None => TopicPolicy {
                publish_rule: PublishRule::Anyone,
                requires_token: false,
                suppress_broker: false,
                suppress_entity: None,
                session_topic: None,
                family: "plain".to_string(),
            },
            Some(c) => {
                let publish_rule = if c.permits(&Actor::Entity(String::new()), Action::Publish)
                    && c.permits(&Actor::Broker, Action::Publish)
                {
                    PublishRule::Anyone
                } else {
                    match &c.constrainer {
                        Constrainer::Broker => PublishRule::BrokerOnly,
                        Constrainer::Entity(id) => PublishRule::EntityOnly(id.clone()),
                    }
                };
                let requires_token = c.event_type == EventType::Traces
                    && c.allowed_actions == AllowedActions::PublishOnly;
                let session_topic = if requires_token {
                    c.suffixes.first().and_then(|s| s.parse::<Uuid>().ok())
                } else {
                    None
                };
                let (suppress_broker, suppress_entity) = if c.suppressed() {
                    match &c.constrainer {
                        Constrainer::Broker => (true, None),
                        Constrainer::Entity(id) => (false, Some(id.clone())),
                    }
                } else {
                    (false, None)
                };
                let family = match &c.event_type {
                    EventType::RealTime => "RealTime".to_string(),
                    EventType::Traces => "Traces".to_string(),
                    EventType::Other(s) => s.clone(),
                };
                TopicPolicy {
                    publish_rule,
                    requires_token,
                    suppress_broker,
                    suppress_entity,
                    session_topic,
                    family,
                }
            }
        })
    }

    /// Whether a directly attached client `id` may publish here.
    pub(crate) fn client_may_publish(&self, id: &str) -> bool {
        match &self.publish_rule {
            PublishRule::Anyone => true,
            PublishRule::BrokerOnly => false,
            PublishRule::EntityOnly(owner) => owner == id,
        }
    }
}

/// A cached local-client destination.
pub(crate) struct ClientDest {
    /// Client id (for publisher echo suppression).
    pub id: String,
    /// The client's frame sender.
    pub sender: Arc<dyn FrameSender>,
    /// Live termination flag shared with the client's
    /// [`crate::node`] handle: checked lock-free before each send so a
    /// client terminated for bogus attempts stops receiving
    /// immediately, even through a cached entry.
    pub terminated: Arc<AtomicBool>,
}

/// A cached neighbour-broker destination.
pub(crate) struct NeighborDest {
    /// Neighbour broker id (for ingress echo suppression).
    pub id: String,
    /// The neighbour link's frame sender.
    pub sender: Arc<dyn FrameSender>,
}

/// One compiled routing decision: everything needed to fan a data
/// frame for this topic out to its destinations without touching the
/// broker state lock.
pub(crate) struct RouteEntry {
    /// The owned topic (collision guard: lookups compare the frame's
    /// topic bytes against this, so two topics hashing alike never
    /// share an entry).
    pub topic: Topic,
    /// Precompiled constraint policy, or `None` when the constrained
    /// grammar rejected the topic (the full path handles enforcement).
    pub policy: Option<TopicPolicy>,
    /// Matching directly attached clients.
    pub clients: Vec<ClientDest>,
    /// Matching neighbour brokers.
    pub neighbors: Vec<NeighborDest>,
    /// Whether any in-process consumer matches: those need an owned
    /// [`nb_wire::Message`], so such topics always take the full path.
    pub has_internal: bool,
    /// Whether an attached runtime monitor has at least one delivery
    /// property governing this topic, resolved at fill time (`false`
    /// when no monitor is attached). Attaching a monitor bumps the
    /// cache version, so entries filled before the attach are never
    /// consulted afterwards — unmonitored topics pay one branch here
    /// instead of a lock probe per frame.
    pub monitored: bool,
    /// Whether the broker's session keyring held at least one live key
    /// for this topic's trace-topic uuid at fill time. Installing or
    /// revoking a session key bumps the cache version under the state
    /// lock, so the flag is never stale: `false` means the fast path
    /// skips the keyring entirely and token-bearing channels keep
    /// their slow-path RSA checks.
    pub session_live: bool,
    /// Cached `broker.publish.topic.<family>` handle.
    pub published_family: Counter,
    /// Cached `broker.deliver.topic.<family>` handle.
    pub delivered_family: Counter,
}

type Shard = RwLock<HashMap<u64, Vec<(u64, Arc<RouteEntry>)>>>;

/// The sharded, versioned route cache. One per broker.
pub(crate) struct RouteCache {
    shards: Vec<Shard>,
    version: AtomicU64,
    /// `broker.route.cache_hit` — fast-path lookups served from cache.
    pub hits: Counter,
    /// `broker.route.cache_miss` — lookups that had to fill.
    pub misses: Counter,
    /// `broker.route.cache_stale` — entries invalidated by a version
    /// bump since fill.
    pub stale: Counter,
    /// `broker.route.fastpath` — frames routed without a full decode.
    pub fastpath: Counter,
    /// `broker.route.slowpath` — frames routed through the full path.
    pub slowpath: Counter,
    /// `broker.route.ns` — per-frame routing latency (nanoseconds),
    /// fast path only.
    pub latency_ns: Histogram,
}

impl RouteCache {
    /// Creates the cache and registers its metrics on `registry`.
    pub(crate) fn new(registry: &Registry) -> Self {
        RouteCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            version: AtomicU64::new(0),
            hits: registry.counter("broker.route.cache_hit"),
            misses: registry.counter("broker.route.cache_miss"),
            stale: registry.counter("broker.route.cache_stale"),
            fastpath: registry.counter("broker.route.fastpath"),
            slowpath: registry.counter("broker.route.slowpath"),
            latency_ns: registry.histogram("broker.route.ns"),
        }
    }

    /// Invalidates every cached entry. Called (under the broker state
    /// lock) at each control-plane mutation; O(1).
    pub(crate) fn bump(&self) {
        self.version.fetch_add(1, Ordering::Release);
    }

    /// The current control-plane version. Read under the broker state
    /// lock at fill time so the entry snapshot and version agree.
    pub(crate) fn current_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    #[inline]
    fn shard(&self, hash: u64) -> &Shard {
        &self.shards[(hash as usize) & (SHARDS - 1)]
    }

    /// Looks up the entry for a frame's topic. Returns `None` on miss
    /// or when the entry predates the latest control-plane change.
    /// Allocation-free on the hit path (one `Arc` clone).
    #[inline]
    pub(crate) fn lookup(&self, hash: u64, topic: &TopicView<'_>) -> Option<Arc<RouteEntry>> {
        let current = self.version.load(Ordering::Acquire);
        let shard = self.shard(hash).read();
        let slots = shard.get(&hash)?;
        for (version, entry) in slots {
            if topic.eq_topic(&entry.topic) {
                if *version == current {
                    self.hits.inc();
                    return Some(Arc::clone(entry));
                }
                self.stale.inc();
                return None;
            }
        }
        None
    }

    /// Installs `entry` under `hash` at `version`, replacing any older
    /// entry for the same topic.
    pub(crate) fn insert(&self, hash: u64, version: u64, entry: Arc<RouteEntry>) {
        let mut shard = self.shard(hash).write();
        let slots = shard.entry(hash).or_default();
        slots.retain(|(_, e)| e.topic != entry.topic);
        slots.push((version, entry));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_wire::codec::Encode;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    fn entry(topic: &str, registry: &Registry) -> Arc<RouteEntry> {
        Arc::new(RouteEntry {
            topic: t(topic),
            policy: TopicPolicy::compile(&t(topic)).ok(),
            clients: Vec::new(),
            neighbors: Vec::new(),
            has_internal: false,
            monitored: false,
            session_live: false,
            published_family: registry.counter("test.pub"),
            delivered_family: registry.counter("test.del"),
        })
    }

    fn view_of(topic: &Topic) -> (Vec<u8>, u64) {
        // Round-trip through a v3 frame to get a TopicView.
        let msg = nb_wire::Message::new(
            1,
            topic.clone(),
            "s",
            0,
            nb_wire::Payload::Ping {
                seq: 0,
                sent_at_ms: 0,
            },
        );
        let frame = msg.to_bytes();
        let hash = nb_wire::topic_hash(topic);
        (frame, hash)
    }

    #[test]
    fn lookup_hits_current_version_only() {
        let registry = Registry::new();
        let cache = RouteCache::new(&registry);
        let topic = t("/A/B");
        let (frame, hash) = view_of(&topic);
        let view = nb_wire::MessageView::parse(&frame).unwrap();

        assert!(cache.lookup(hash, &view.topic).is_none());
        cache.insert(hash, cache.current_version(), entry("/A/B", &registry));
        assert!(cache.lookup(hash, &view.topic).is_some());

        cache.bump();
        assert!(cache.lookup(hash, &view.topic).is_none(), "stale after bump");
        assert_eq!(registry.snapshot().counter("broker.route.cache_stale"), Some(1));

        cache.insert(hash, cache.current_version(), entry("/A/B", &registry));
        assert!(cache.lookup(hash, &view.topic).is_some());
    }

    #[test]
    fn colliding_hash_slots_disambiguate_by_topic() {
        let registry = Registry::new();
        let cache = RouteCache::new(&registry);
        let (frame_a, hash_a) = view_of(&t("/A"));
        let view_a = nb_wire::MessageView::parse(&frame_a).unwrap();
        let v = cache.current_version();
        // Force both topics into the same slot key.
        cache.insert(hash_a, v, entry("/Other", &registry));
        // A different topic under the same hash must not match.
        assert!(cache.lookup(hash_a, &view_a.topic).is_none());
    }

    #[test]
    fn insert_replaces_same_topic() {
        let registry = Registry::new();
        let cache = RouteCache::new(&registry);
        let (frame, hash) = view_of(&t("/A"));
        let view = nb_wire::MessageView::parse(&frame).unwrap();
        let v = cache.current_version();
        cache.insert(hash, v, entry("/A", &registry));
        cache.insert(hash, v, entry("/A", &registry));
        let shard = cache.shard(hash).read();
        assert_eq!(shard.get(&hash).unwrap().len(), 1);
        drop(shard);
        assert!(cache.lookup(hash, &view.topic).is_some());
    }

    #[test]
    fn policy_unconstrained_is_anyone() {
        let p = TopicPolicy::compile(&t("/Availability/e1/Load")).unwrap();
        assert_eq!(p.publish_rule, PublishRule::Anyone);
        assert!(!p.requires_token);
        assert!(!p.suppress_broker);
        assert!(p.suppress_entity.is_none());
        assert_eq!(p.family, "plain");
        assert!(p.client_may_publish("anyone"));
    }

    #[test]
    fn policy_broker_reserved_publish() {
        let p = TopicPolicy::compile(&t("/Constrained/Traces/Broker/Publish-Only/tt")).unwrap();
        assert_eq!(p.publish_rule, PublishRule::BrokerOnly);
        assert!(p.requires_token, "broker-published trace channel");
        assert!(!p.client_may_publish("e1"));
        assert_eq!(p.family, "Traces");
    }

    #[test]
    fn policy_entity_constrainer() {
        let p =
            TopicPolicy::compile(&t("/Constrained/Traces/entity-7/Subscribe-Only/tt/s")).unwrap();
        // Subscribe-Only reserves subscribing; publishing is open.
        assert_eq!(p.publish_rule, PublishRule::Anyone);
        let p = TopicPolicy::compile(&t("/Constrained/Traces/entity-7/Publish-Only/tt/s")).unwrap();
        assert_eq!(p.publish_rule, PublishRule::EntityOnly("entity-7".into()));
        assert!(p.client_may_publish("entity-7"));
        assert!(!p.client_may_publish("entity-8"));
    }

    #[test]
    fn policy_session_topic_binds_only_uuid_trace_publications() {
        // A publication topic whose first suffix is the trace-topic
        // uuid binds the session layer to that uuid.
        let uuid: Uuid = "6ba7b810-9dad-11d1-80b4-00c04fd430c8".parse().unwrap();
        let p = TopicPolicy::compile(&t(&format!(
            "/Constrained/Traces/Broker/Publish-Only/{uuid}/AllUpdates"
        )))
        .unwrap();
        assert!(p.requires_token);
        assert_eq!(p.session_topic, Some(uuid));
        // A non-uuid suffix still requires tokens but never a session.
        let p = TopicPolicy::compile(&t("/Constrained/Traces/Broker/Publish-Only/tt")).unwrap();
        assert!(p.requires_token);
        assert_eq!(p.session_topic, None);
        // Tokenless channels never carry a session binding.
        let p = TopicPolicy::compile(&t(&format!(
            "/Constrained/Traces/Broker/Subscribe-Only/{uuid}"
        )))
        .unwrap();
        assert!(!p.requires_token);
        assert_eq!(p.session_topic, None);
    }

    #[test]
    fn policy_suppression_split_by_constrainer() {
        let p = TopicPolicy::compile(&t("/Constrained/Traces/Limited")).unwrap();
        assert!(p.suppress_broker);
        assert!(p.suppress_entity.is_none());
        let p = TopicPolicy::compile(&t("/Constrained/Traces/e1/Publish-Only/Limited/x")).unwrap();
        assert!(!p.suppress_broker);
        assert_eq!(p.suppress_entity.as_deref(), Some("e1"));
    }

    #[test]
    fn policy_matches_full_permits_for_a_corpus() {
        // The compiled publish rule must agree with
        // ConstrainedTopic::permits for every corpus topic and actor.
        let corpus = [
            "/plain/topic",
            "/Constrained",
            "/Constrained/Traces/Limited",
            "/Constrained/RealTime/Broker/PublishSubscribe/Control",
            "/Constrained/Traces/Broker/Publish-Only/tt/Updates",
            "/Constrained/Traces/Broker/Subscribe-Only/Registration",
            "/Constrained/Traces/entity-1/Publish-Only/tt/s",
            "/Constrained/Traces/entity-1/Subscribe-Only/tt/s",
            "/Constrained/Other/entity-2/PublishSubscribe/x",
        ];
        for s in corpus {
            let topic = t(s);
            let policy = TopicPolicy::compile(&topic).unwrap();
            let constrained = ConstrainedTopic::parse(&topic).unwrap();
            for actor_id in ["entity-1", "entity-2", "someone-else"] {
                let expected = match &constrained {
                    Some(c) => c.permits(&Actor::Entity(actor_id.to_string()), Action::Publish),
                    None => true,
                };
                assert_eq!(
                    policy.client_may_publish(actor_id),
                    expected,
                    "topic {s}, actor {actor_id}"
                );
            }
        }
    }
}
