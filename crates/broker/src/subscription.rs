//! Subscription bookkeeping: which local consumers and which
//! neighbouring brokers are interested in which topics.

use nb_wire::Topic;
use std::collections::{HashMap, HashSet};

/// Interest table for one broker.
///
/// *Local* entries map consumer ids (attached clients or in-process
/// engines) to their filters; *remote* entries record which filters
/// each neighbouring broker has advertised interest in.
#[derive(Debug, Default)]
pub struct SubscriptionTable {
    local: HashMap<String, HashSet<Topic>>,
    remote: HashMap<String, HashSet<Topic>>,
    /// Local filters registered with Suppress/Limited distribution:
    /// never advertised to neighbours (§3.1 {Distribution}).
    suppressed: HashSet<Topic>,
}

impl SubscriptionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a local consumer's filter. Returns `true` if this is
    /// a new filter for this broker overall (and thus worth
    /// advertising to neighbours). `suppressed` filters are recorded
    /// but never advertised.
    pub fn add_local(&mut self, consumer: &str, filter: Topic, suppressed: bool) -> bool {
        let fresh = !self.any_local_filter(&filter);
        if suppressed {
            self.suppressed.insert(filter.clone());
        }
        self.local
            .entry(consumer.to_string())
            .or_default()
            .insert(filter);
        fresh && !suppressed
    }

    /// Removes a local filter. Returns `true` if no local consumer
    /// holds it any more (worth un-advertising).
    pub fn remove_local(&mut self, consumer: &str, filter: &Topic) -> bool {
        if let Some(filters) = self.local.get_mut(consumer) {
            filters.remove(filter);
            if filters.is_empty() {
                self.local.remove(consumer);
            }
        }
        !self.any_local_filter(filter)
    }

    /// Drops every filter belonging to `consumer`, returning the
    /// filters that now have no local subscriber.
    pub fn remove_consumer(&mut self, consumer: &str) -> Vec<Topic> {
        let filters = self.local.remove(consumer).unwrap_or_default();
        filters
            .into_iter()
            .filter(|f| !self.any_local_filter(f))
            .collect()
    }

    fn any_local_filter(&self, filter: &Topic) -> bool {
        self.local.values().any(|fs| fs.contains(filter))
    }

    /// Registers a neighbour's advertised interest.
    pub fn add_remote(&mut self, neighbor: &str, filter: Topic) {
        self.remote
            .entry(neighbor.to_string())
            .or_default()
            .insert(filter);
    }

    /// Withdraws a neighbour's interest.
    pub fn remove_remote(&mut self, neighbor: &str, filter: &Topic) {
        if let Some(filters) = self.remote.get_mut(neighbor) {
            filters.remove(filter);
            if filters.is_empty() {
                self.remote.remove(neighbor);
            }
        }
    }

    /// Drops all state for a departed neighbour.
    pub fn remove_neighbor(&mut self, neighbor: &str) {
        self.remote.remove(neighbor);
    }

    /// Whether any neighbour has advertised exactly `filter`. Used by
    /// `Broker::wait_for_remote_subscription` to make subscription
    /// propagation observable without polling.
    pub fn remote_holds(&self, filter: &Topic) -> bool {
        self.remote.values().any(|fs| fs.contains(filter))
    }

    /// Local consumers whose filters match `topic`.
    pub fn local_matches(&self, topic: &Topic) -> Vec<String> {
        self.local
            .iter()
            .filter(|(_, filters)| filters.iter().any(|f| topic.matches_filter(f)))
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Neighbours with at least one filter matching `topic`.
    pub fn remote_matches(&self, topic: &Topic) -> Vec<String> {
        self.remote
            .iter()
            .filter(|(_, filters)| filters.iter().any(|f| topic.matches_filter(f)))
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Every distinct filter known (local and remote) — sent to a
    /// newly connected neighbour so interest reaches it transitively.
    pub fn all_filters(&self) -> HashSet<Topic> {
        self.local
            .values()
            .chain(self.remote.values())
            .flatten()
            .cloned()
            .collect()
    }

    /// Filters advertised by neighbours other than `except` plus all
    /// non-suppressed local filters (what `except` should be told
    /// about).
    pub fn filters_for_neighbor(&self, except: &str) -> HashSet<Topic> {
        self.local
            .values()
            .flatten()
            .filter(|f| !self.suppressed.contains(*f))
            .chain(
                self.remote
                    .iter()
                    .filter(|(n, _)| n.as_str() != except)
                    .flat_map(|(_, fs)| fs),
            )
            .cloned()
            .collect()
    }

    /// Every advertisable filter (non-suppressed local + all remote) —
    /// sent to a newly connected neighbour.
    pub fn advertisable_filters(&self) -> HashSet<Topic> {
        self.local
            .values()
            .flatten()
            .filter(|f| !self.suppressed.contains(*f))
            .chain(self.remote.values().flatten())
            .cloned()
            .collect()
    }

    /// Number of local consumers.
    pub fn local_consumer_count(&self) -> usize {
        self.local.len()
    }

    /// Total local (consumer, filter) registrations.
    pub fn local_filter_count(&self) -> usize {
        self.local.values().map(HashSet::len).sum()
    }

    /// Total remote (neighbour, filter) registrations.
    pub fn remote_filter_count(&self) -> usize {
        self.remote.values().map(HashSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Topic {
        Topic::parse(s).unwrap()
    }

    #[test]
    fn local_matching_by_exact_topic() {
        let mut table = SubscriptionTable::new();
        table.add_local("c1", t("/A/B"), false);
        table.add_local("c2", t("/A/C"), false);
        assert_eq!(table.local_matches(&t("/A/B")), vec!["c1".to_string()]);
        assert!(table.local_matches(&t("/A/X")).is_empty());
    }

    #[test]
    fn wildcard_filters_match() {
        let mut table = SubscriptionTable::new();
        table.add_local("c1", t("/Traces/*/Load"), false);
        table.add_local("c2", t("/Traces/#"), false);
        let hits = table.local_matches(&t("/Traces/e1/Load"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn add_local_reports_freshness() {
        let mut table = SubscriptionTable::new();
        assert!(table.add_local("c1", t("/A"), false));
        assert!(!table.add_local("c2", t("/A"), false)); // already advertised
        assert!(table.add_local("c1", t("/B"), false));
    }

    #[test]
    fn remove_local_reports_last_holder() {
        let mut table = SubscriptionTable::new();
        table.add_local("c1", t("/A"), false);
        table.add_local("c2", t("/A"), false);
        assert!(!table.remove_local("c1", &t("/A"))); // c2 still holds it
        assert!(table.remove_local("c2", &t("/A")));
    }

    #[test]
    fn remove_consumer_returns_orphaned_filters() {
        let mut table = SubscriptionTable::new();
        table.add_local("c1", t("/A"), false);
        table.add_local("c1", t("/B"), false);
        table.add_local("c2", t("/B"), false);
        let orphaned = table.remove_consumer("c1");
        assert_eq!(orphaned, vec![t("/A")]);
        assert_eq!(table.local_consumer_count(), 1);
    }

    #[test]
    fn remote_interest_routing() {
        let mut table = SubscriptionTable::new();
        table.add_remote("b2", t("/A/#"));
        table.add_remote("b3", t("/X"));
        assert_eq!(table.remote_matches(&t("/A/B")), vec!["b2".to_string()]);
        assert_eq!(table.remote_matches(&t("/X")), vec!["b3".to_string()]);
        table.remove_remote("b2", &t("/A/#"));
        assert!(table.remote_matches(&t("/A/B")).is_empty());
    }

    #[test]
    fn neighbor_removal_clears_interest() {
        let mut table = SubscriptionTable::new();
        table.add_remote("b2", t("/A"));
        table.remove_neighbor("b2");
        assert!(table.remote_matches(&t("/A")).is_empty());
    }

    #[test]
    fn remote_holds_sees_only_neighbour_adverts() {
        let mut table = SubscriptionTable::new();
        table.add_local("c1", t("/A"), false);
        assert!(!table.remote_holds(&t("/A"))); // local interest only
        table.add_remote("b2", t("/A"));
        assert!(table.remote_holds(&t("/A")));
        table.remove_remote("b2", &t("/A"));
        assert!(!table.remote_holds(&t("/A")));
    }

    #[test]
    fn filters_for_neighbor_excludes_its_own() {
        let mut table = SubscriptionTable::new();
        table.add_local("c1", t("/L"), false);
        table.add_remote("b2", t("/R2"));
        table.add_remote("b3", t("/R3"));
        let for_b2 = table.filters_for_neighbor("b2");
        assert!(for_b2.contains(&t("/L")));
        assert!(for_b2.contains(&t("/R3")));
        assert!(!for_b2.contains(&t("/R2")));
    }

    #[test]
    fn suppressed_filters_are_never_advertised() {
        let mut table = SubscriptionTable::new();
        assert!(!table.add_local("engine", t("/Reg"), true)); // not advertisable
        assert!(table.add_local("c1", t("/Pub"), false));
        let adv = table.advertisable_filters();
        assert!(adv.contains(&t("/Pub")));
        assert!(!adv.contains(&t("/Reg")));
        let for_b2 = table.filters_for_neighbor("b2");
        assert!(!for_b2.contains(&t("/Reg")));
        // Still matched locally.
        assert_eq!(table.local_matches(&t("/Reg")), vec!["engine".to_string()]);
    }

    #[test]
    fn all_filters_unions_local_and_remote() {
        let mut table = SubscriptionTable::new();
        table.add_local("c1", t("/L"), false);
        table.add_remote("b2", t("/R"));
        let all = table.all_filters();
        assert!(all.contains(&t("/L")) && all.contains(&t("/R")));
        assert_eq!(all.len(), 2);
    }
}
