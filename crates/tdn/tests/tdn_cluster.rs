//! TDN behaviour: authorized creation/discovery, replication,
//! failure tolerance, expiry.

use nb_crypto::cert::{CertificateAuthority, Credential, Validity};
use nb_crypto::Uuid;
use nb_tdn::{Tdn, TdnCluster};
use nb_transport::clock::{Clock, MockClock};
use nb_wire::payload::DiscoveryRestrictions;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const NOW: u64 = 1_700_000_000_000;
const HOUR: u64 = 3_600_000;

struct Fixture {
    ca: CertificateAuthority,
    clock: MockClock,
    cluster: TdnCluster,
    entity: Credential,
    tracker: Credential,
    outsider: Credential,
}

fn fixture(n: usize) -> Fixture {
    let mut rng = StdRng::seed_from_u64(0x7d9);
    let clock = MockClock::new(NOW);
    let validity = Validity::starting_now(NOW - 1000, 365 * 24 * HOUR);
    let mut ca = CertificateAuthority::new("ca", 512, validity, &mut rng).unwrap();
    let shared: Arc<dyn Clock> = Arc::new(clock.clone());
    let cluster = TdnCluster::new(n, &mut ca, validity, shared, &mut rng).unwrap();
    let entity = ca.issue("entity:e1", validity, &mut rng).unwrap();
    let tracker = ca.issue("tracker:t1", validity, &mut rng).unwrap();
    let outsider = ca.issue("outsider:o1", validity, &mut rng).unwrap();
    Fixture {
        ca,
        clock,
        cluster,
        entity,
        tracker,
        outsider,
    }
}

fn restricted_to(subject: &str) -> DiscoveryRestrictions {
    DiscoveryRestrictions::AllowedSubjects(vec![subject.to_string()])
}

#[test]
fn topic_creation_produces_verifiable_advertisement() {
    let fx = fixture(3);
    let advert = fx
        .cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            DiscoveryRestrictions::Open,
            HOUR,
        )
        .unwrap();
    assert_eq!(advert.descriptor, "Availability/Traces/e1");
    assert_eq!(advert.owner_cert.subject, "entity:e1");
    // Verifies against the issuing TDN's key.
    let key = fx.cluster.tdn_key(&advert.tdn_id).unwrap();
    advert.verify(&key).unwrap();
    // UUID is v4 (generated at the TDN).
    assert_eq!(advert.topic_id.version(), 4);
}

#[test]
fn advertisement_replicates_to_all_members() {
    let fx = fixture(3);
    fx.cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            DiscoveryRestrictions::Open,
            HOUR,
        )
        .unwrap();
    for i in 0..3 {
        assert_eq!(fx.cluster.node(i).advert_count(), 1, "node {i}");
    }
}

#[test]
fn discovery_by_liveness_query() {
    let fx = fixture(2);
    fx.cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            DiscoveryRestrictions::Open,
            HOUR,
        )
        .unwrap();
    let found = fx.cluster.discover("/Liveness/e1", &fx.tracker.certificate);
    assert_eq!(found.len(), 1);
    assert!(fx
        .cluster
        .discover("/Liveness/e2", &fx.tracker.certificate)
        .is_empty());
}

#[test]
fn discovery_restrictions_are_enforced_silently() {
    let fx = fixture(2);
    fx.cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            restricted_to("tracker:t1"),
            HOUR,
        )
        .unwrap();
    // Authorized tracker finds it.
    assert_eq!(
        fx.cluster
            .discover("/Liveness/e1", &fx.tracker.certificate)
            .len(),
        1
    );
    // The outsider gets an empty answer, indistinguishable from
    // "no such topic".
    assert!(fx
        .cluster
        .discover("/Liveness/e1", &fx.outsider.certificate)
        .is_empty());
}

#[test]
fn forged_certificates_discover_nothing() {
    let fx = fixture(1);
    fx.cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            DiscoveryRestrictions::Open,
            HOUR,
        )
        .unwrap();
    let mut forged = fx.tracker.certificate.clone();
    forged.subject = "tracker:forged".to_string();
    assert!(fx.cluster.discover("/Liveness/e1", &forged).is_empty());
}

#[test]
fn topic_creation_rejects_bad_credentials() {
    let fx = fixture(1);
    let mut forged = fx.entity.certificate.clone();
    forged.subject = "entity:mallory".to_string();
    assert!(fx
        .cluster
        .create_topic(&forged, "Availability/Traces/m", DiscoveryRestrictions::Open, HOUR)
        .is_err());
}

#[test]
fn cluster_survives_member_failure() {
    let fx = fixture(3);
    fx.cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            DiscoveryRestrictions::Open,
            HOUR,
        )
        .unwrap();
    // The primary (node 0) fails; discovery still works.
    fx.cluster.fail_node(0);
    assert_eq!(
        fx.cluster
            .discover("/Liveness/e1", &fx.tracker.certificate)
            .len(),
        1
    );
    // New topics can still be created and replicate to survivors.
    fx.cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e2",
            DiscoveryRestrictions::Open,
            HOUR,
        )
        .unwrap();
    assert_eq!(fx.cluster.node(1).advert_count(), 2);
    assert_eq!(fx.cluster.node(2).advert_count(), 2);
    // The failed node missed the second advert.
    assert_eq!(fx.cluster.node(0).advert_count(), 1);
}

#[test]
fn revived_member_heals_via_resync() {
    let fx = fixture(3);
    fx.cluster.fail_node(2);
    fx.cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            DiscoveryRestrictions::Open,
            HOUR,
        )
        .unwrap();
    assert_eq!(fx.cluster.node(2).advert_count(), 0);
    fx.cluster.revive_node(2);
    let copied = fx.cluster.resync(2).unwrap();
    assert_eq!(copied, 1);
    assert_eq!(fx.cluster.node(2).advert_count(), 1);
}

#[test]
fn lifetimes_expire_advertisements() {
    let fx = fixture(1);
    fx.cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            DiscoveryRestrictions::Open,
            HOUR,
        )
        .unwrap();
    assert_eq!(
        fx.cluster
            .discover("/Liveness/e1", &fx.tracker.certificate)
            .len(),
        1
    );
    fx.clock.advance(HOUR + 1);
    // Expired advertisements no longer discoverable…
    assert!(fx
        .cluster
        .discover("/Liveness/e1", &fx.tracker.certificate)
        .is_empty());
    // …and are physically purged on demand.
    assert_eq!(fx.cluster.node(0).purge_expired(), 1);
    assert_eq!(fx.cluster.node(0).advert_count(), 0);
}

#[test]
fn replication_rejects_unknown_or_tampered_peers() {
    let fx = fixture(2);
    let advert = fx
        .cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            DiscoveryRestrictions::Open,
            HOUR,
        )
        .unwrap();

    // A standalone TDN that never met the cluster.
    let mut rng = StdRng::seed_from_u64(0x111);
    let validity = Validity::starting_now(NOW - 1000, 365 * 24 * HOUR);
    let mut other_ca = CertificateAuthority::new("other-ca", 512, validity, &mut rng).unwrap();
    let cred = other_ca.issue("tdn:stranger", validity, &mut rng).unwrap();
    let stranger = Tdn::new(
        "tdn-stranger",
        cred,
        other_ca.certificate().public_key.clone(),
        Arc::new(fx.clock.clone()),
        1,
    );
    assert!(stranger.replicate(advert.clone()).is_err());

    // A tampered advert fails signature verification at a peer.
    let mut tampered = advert;
    tampered.descriptor = "Availability/Traces/hijacked".to_string();
    assert!(fx.cluster.node(1).replicate(tampered).is_err());
}

#[test]
fn compromised_topic_can_be_replaced() {
    // §5.2: "In the unlikely event that this trace topic was
    // compromised, a trace entity can register another trace topic."
    let fx = fixture(2);
    let first = fx
        .cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            restricted_to("tracker:t1"),
            HOUR,
        )
        .unwrap();
    let second = fx
        .cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            restricted_to("tracker:t1"),
            HOUR,
        )
        .unwrap();
    assert_ne!(first.topic_id, second.topic_id);
    // Both advertise the same descriptor; discovery returns both.
    assert_eq!(
        fx.cluster
            .discover("/Liveness/e1", &fx.tracker.certificate)
            .len(),
        2
    );
}

#[test]
fn lookup_by_uuid_bypasses_descriptor_search() {
    let fx = fixture(1);
    let advert = fx
        .cluster
        .create_topic(
            &fx.entity.certificate,
            "Availability/Traces/e1",
            DiscoveryRestrictions::Open,
            HOUR,
        )
        .unwrap();
    assert!(fx.cluster.node(0).advertisement(&advert.topic_id).is_some());
    let mut rng = StdRng::seed_from_u64(5);
    assert!(fx
        .cluster
        .node(0)
        .advertisement(&Uuid::new_v4(&mut rng))
        .is_none());
}

// Silence the unused-field warning: the CA is part of the fixture API
// for tests that extend it.
#[test]
fn fixture_ca_issues_further_credentials() {
    let mut fx = fixture(1);
    let mut rng = StdRng::seed_from_u64(0x222);
    let validity = Validity::starting_now(NOW - 1000, HOUR);
    let cred = fx.ca.issue("entity:extra", validity, &mut rng).unwrap();
    assert_eq!(cred.subject(), "entity:extra");
}
