//! Discovery-query evaluation.
//!
//! The paper keeps trace-topic descriptors deliberately simple —
//! `Availability/Traces/{Entity-ID}` — "so that trackers can construct
//! appropriate discovery queries simply by utilizing the Entity-ID".
//! Trackers issue queries of the form `/Liveness/{Entity-ID}` (§3.4).
//! We support three query shapes:
//!
//! * `/Liveness/{entity}` — rewritten to the canonical availability
//!   descriptor,
//! * an exact descriptor string,
//! * a descriptor prefix ending in `*` (e.g. `Availability/Traces/*`).

/// Rewrites a query into descriptor-matching form.
fn canonical_query(query: &str) -> String {
    let trimmed = query.trim();
    if let Some(entity) = trimmed
        .strip_prefix("/Liveness/")
        .or_else(|| trimmed.strip_prefix("Liveness/"))
    {
        return format!("Availability/Traces/{entity}");
    }
    trimmed.strip_prefix('/').unwrap_or(trimmed).to_string()
}

/// Whether `query` matches `descriptor`.
pub fn matches_descriptor(query: &str, descriptor: &str) -> bool {
    let q = canonical_query(query);
    if let Some(prefix) = q.strip_suffix('*') {
        descriptor.starts_with(prefix)
    } else {
        descriptor == q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liveness_query_rewrites_to_availability_descriptor() {
        assert!(matches_descriptor(
            "/Liveness/worker-3",
            "Availability/Traces/worker-3"
        ));
        assert!(matches_descriptor(
            "Liveness/worker-3",
            "Availability/Traces/worker-3"
        ));
        assert!(!matches_descriptor(
            "/Liveness/worker-3",
            "Availability/Traces/worker-4"
        ));
    }

    #[test]
    fn exact_descriptor_match() {
        assert!(matches_descriptor(
            "Availability/Traces/e1",
            "Availability/Traces/e1"
        ));
        assert!(matches_descriptor(
            "/Availability/Traces/e1",
            "Availability/Traces/e1"
        ));
        assert!(!matches_descriptor(
            "Availability/Traces/e1",
            "Availability/Traces/e10"
        ));
    }

    #[test]
    fn prefix_wildcard() {
        assert!(matches_descriptor(
            "Availability/Traces/*",
            "Availability/Traces/anything"
        ));
        assert!(!matches_descriptor("Other/*", "Availability/Traces/x"));
    }

    #[test]
    fn whitespace_is_tolerated() {
        assert!(matches_descriptor(
            "  /Liveness/e1  ",
            "Availability/Traces/e1"
        ));
    }
}
