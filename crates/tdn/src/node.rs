//! A single Topic Discovery Node.

use crate::persist::{TdnDurableState, TdnOp};
use crate::query::matches_descriptor;
use crate::Result;
use nb_crypto::cert::{Certificate, Credential};
use nb_crypto::digest::DigestAlgorithm;
use nb_crypto::rsa::RsaPublicKey;
use nb_crypto::{CryptoError, Uuid};
use nb_metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
use nb_store::{Durable, DurableState, Recovery, StoreConfig};
use nb_telemetry::{fresh_span_id, now_ns, FlightRecorder, SpanEvent, Stage, TraceContext};
use nb_obs::{NodeKind, ObsSink, PublisherConfig, TelemetryPublisher};
use nb_transport::clock::SharedClock;
use nb_wire::payload::{DiscoveryRestrictions, TopicAdvertisement};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// TDN errors.
#[derive(Debug)]
pub enum TdnError {
    /// The requester's certificate failed verification.
    BadCredentials(CryptoError),
    /// The advertisement's TDN signature failed verification.
    BadAdvertisement(&'static str),
    /// Replication received an advertisement from an unknown TDN.
    UnknownPeer(String),
}

impl fmt::Display for TdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdnError::BadCredentials(e) => write!(f, "bad credentials: {e}"),
            TdnError::BadAdvertisement(why) => write!(f, "bad advertisement: {why}"),
            TdnError::UnknownPeer(id) => write!(f, "unknown peer TDN: {id}"),
        }
    }
}

impl std::error::Error for TdnError {}

struct Store {
    adverts: HashMap<Uuid, TopicAdvertisement>,
    /// Public keys of peer TDNs (for verifying replicas).
    peer_keys: HashMap<String, RsaPublicKey>,
    /// Journal + mirror, when durability is enabled.
    persist: Option<PersistHandle>,
    /// What recovery found when storage was attached.
    recovery: Option<Recovery>,
}

/// The journal plus a mirror of the durable registry. The mirror is
/// what gets snapshotted; it stays in lock-step with `Store::adverts`
/// because every mutation runs [`Store::journal`] under the same lock.
struct PersistHandle {
    durable: Durable<TdnDurableState>,
    mirror: TdnDurableState,
}

impl Store {
    /// Journals one registry op (no-op when durability is off).
    fn journal(&mut self, op: TdnOp) {
        if let Some(p) = self.persist.as_mut() {
            if p.durable.record(&op).is_ok() {
                p.mirror.apply(op);
                let _ = p.durable.maybe_checkpoint(&p.mirror);
            }
        }
    }
}

/// Cached handles on a TDN's per-instance registry (`tdn.*` metric
/// family; see `docs/OBSERVABILITY.md`).
struct TdnMetrics {
    registry: Registry,
    topics_created: Counter,
    discovery_queries: Counter,
    discovery_denied: Counter,
    replicas_accepted: Counter,
    replicas_rejected: Counter,
    /// Age of an advertisement when its replica lands here — the
    /// cluster's replication lag.
    replication_lag_ms: Histogram,
    adverts: Gauge,
}

impl TdnMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        TdnMetrics {
            topics_created: registry.counter("tdn.topics.created"),
            discovery_queries: registry.counter("tdn.discovery.queries"),
            discovery_denied: registry.counter("tdn.discovery.denied"),
            replicas_accepted: registry.counter("tdn.replicas.accepted"),
            replicas_rejected: registry.counter("tdn.replicas.rejected"),
            replication_lag_ms: registry.histogram("tdn.replication.lag_ms"),
            adverts: registry.gauge("tdn.adverts"),
            registry,
        }
    }
}

/// A Topic Discovery Node.
pub struct Tdn {
    id: String,
    credential: Credential,
    ca_key: RsaPublicKey,
    clock: SharedClock,
    store: Mutex<Store>,
    metrics: TdnMetrics,
    /// Causal-tracing span ring for the discovery control plane.
    /// TDN operations are rare (topic creation, discovery,
    /// replication), so they are always recorded, each as the root of
    /// its own one-span trace.
    recorder: FlightRecorder,
    rng: Mutex<StdRng>,
}

/// Ring capacity for the TDN control-plane recorder. Operations are
/// orders of magnitude rarer than data-plane messages.
const TDN_RECORDER_CAPACITY: usize = 1024;

impl Tdn {
    /// Creates a TDN with its own credential and the CA key used to
    /// validate requester certificates.
    pub fn new(
        id: impl Into<String>,
        credential: Credential,
        ca_key: RsaPublicKey,
        clock: SharedClock,
        seed: u64,
    ) -> Self {
        let id = id.into();
        let recorder = FlightRecorder::new(id.clone(), TDN_RECORDER_CAPACITY);
        Tdn {
            id,
            credential,
            ca_key,
            clock,
            store: Mutex::new(Store {
                adverts: HashMap::new(),
                peer_keys: HashMap::new(),
                persist: None,
                recovery: None,
            }),
            metrics: TdnMetrics::new(),
            recorder,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// This TDN's causal-tracing flight recorder (one root span per
    /// create/discover/replicate operation).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Records a control-plane operation as the single span of a fresh
    /// trace.
    fn record_op(&self, stage: Stage, start_ns: u64) {
        let ctx = TraceContext::root(fresh_span_id(), true);
        self.recorder
            .record(SpanEvent::new(&ctx, stage, start_ns, now_ns()));
    }

    /// This TDN's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The public key trackers use to verify this TDN's signatures.
    pub fn public_key(&self) -> RsaPublicKey {
        self.credential.certificate.public_key.clone()
    }

    /// Attaches durable storage under `dir` and recovers any registry
    /// a previous incarnation journalled there: recovered
    /// advertisements are installed (they carry their original TDN
    /// signatures, so provenance survives the restart) and the
    /// replication epoch resumes where it left off.
    ///
    /// Call before the node starts serving; mutations from then on are
    /// journalled to `dir/tdn.{wal,snap}`.
    pub fn persist_to(&self, dir: impl AsRef<Path>, cfg: StoreConfig) -> nb_store::Result<Recovery> {
        let (durable, state, recovery) =
            Durable::<TdnDurableState>::open(dir.as_ref(), "tdn", cfg)?;
        let mut store = self.store.lock();
        for (id, advert) in &state.adverts {
            store.adverts.insert(*id, advert.clone());
        }
        store.persist = Some(PersistHandle {
            durable,
            mirror: state,
        });
        store.recovery = Some(recovery.clone());
        Ok(recovery)
    }

    /// What recovery found when storage was attached, if it was.
    pub fn recovery(&self) -> Option<Recovery> {
        self.store.lock().recovery.clone()
    }

    /// The replication epoch: total advertisements this member has
    /// ever installed (survives restarts; `0` without storage).
    pub fn replication_epoch(&self) -> u64 {
        self.store
            .lock()
            .persist
            .as_ref()
            .map_or(0, |p| p.mirror.epoch)
    }

    /// Forces a snapshot checkpoint now (durable nodes only). Returns
    /// whether a snapshot was written.
    pub fn checkpoint_now(&self) -> bool {
        let mut store = self.store.lock();
        let Some(p) = store.persist.as_mut() else {
            return false;
        };
        p.durable.checkpoint(&p.mirror).is_ok()
    }

    /// Introduces a peer TDN (enables replica verification).
    pub fn add_peer(&self, peer_id: &str, key: RsaPublicKey) {
        self.store
            .lock()
            .peer_keys
            .insert(peer_id.to_string(), key);
    }

    /// Handles a topic creation request (§3.1): verifies credentials,
    /// generates the UUID *here*, signs and stores the advertisement.
    pub fn create_topic(
        &self,
        credentials: &Certificate,
        descriptor: &str,
        restrictions: DiscoveryRestrictions,
        lifetime_ms: u64,
    ) -> Result<TopicAdvertisement> {
        let t0 = now_ns();
        let now = self.clock.now_ms();
        credentials
            .verify(&self.ca_key, now)
            .map_err(TdnError::BadCredentials)?;

        let topic_id = Uuid::new_v4(&mut *self.rng.lock());
        let mut advert = TopicAdvertisement {
            topic_id,
            descriptor: descriptor.to_string(),
            owner_cert: credentials.clone(),
            restrictions,
            created_ms: now,
            lifetime_ms,
            tdn_id: self.id.clone(),
            signature: Vec::new(),
        };
        advert.signature = self
            .credential
            .private_key
            .sign(DigestAlgorithm::Sha256, &advert.tbs_bytes())
            .map_err(TdnError::BadCredentials)?;
        {
            let mut store = self.store.lock();
            store.adverts.insert(advert.topic_id, advert.clone());
            store.journal(TdnOp::AdvertPut(Box::new(advert.clone())));
        }
        self.metrics.topics_created.inc();
        self.record_op(Stage::TdnCreate, t0);
        Ok(advert)
    }

    /// Accepts a replica from a peer TDN, verifying the peer's
    /// signature before storing.
    pub fn replicate(&self, advert: TopicAdvertisement) -> Result<()> {
        let t0 = now_ns();
        let peer_key = {
            let store = self.store.lock();
            store.peer_keys.get(&advert.tdn_id).cloned()
        };
        let key = match peer_key {
            Some(k) => k,
            None if advert.tdn_id == self.id => self.public_key(),
            None => {
                self.metrics.replicas_rejected.inc();
                return Err(TdnError::UnknownPeer(advert.tdn_id.clone()));
            }
        };
        if advert.verify(&key).is_err() {
            self.metrics.replicas_rejected.inc();
            return Err(TdnError::BadAdvertisement("signature"));
        }
        self.metrics
            .replication_lag_ms
            .record(self.clock.now_ms().saturating_sub(advert.created_ms));
        {
            let mut store = self.store.lock();
            store.adverts.insert(advert.topic_id, advert.clone());
            store.journal(TdnOp::AdvertPut(Box::new(advert)));
        }
        self.metrics.replicas_accepted.inc();
        self.record_op(Stage::TdnReplicate, t0);
        Ok(())
    }

    /// Evaluates a discovery query (§3.4). Unauthorized or
    /// badly-credentialed requests return an **empty** result — the
    /// paper's TDN silently ignores them rather than revealing that a
    /// matching topic exists.
    pub fn discover(&self, query: &str, credentials: &Certificate) -> Vec<TopicAdvertisement> {
        let t0 = now_ns();
        self.metrics.discovery_queries.inc();
        let now = self.clock.now_ms();
        let matches = if credentials.verify(&self.ca_key, now).is_err() {
            self.metrics.discovery_denied.inc();
            Vec::new()
        } else {
            let store = self.store.lock();
            store
                .adverts
                .values()
                .filter(|a| !a.is_expired(now))
                .filter(|a| matches_descriptor(query, &a.descriptor))
                .filter(|a| a.restrictions.permits(credentials))
                .cloned()
                .collect()
        };
        // Denied queries are recorded too — the span's duration shows
        // the cost of the (failed) certificate check.
        self.record_op(Stage::TdnDiscover, t0);
        matches
    }

    /// Looks up an advertisement by topic id (no restriction check —
    /// used by holders of the UUID itself, e.g. brokers validating
    /// ownership during registration).
    pub fn advertisement(&self, topic_id: &Uuid) -> Option<TopicAdvertisement> {
        self.store.lock().adverts.get(topic_id).cloned()
    }

    /// Removes expired advertisements; returns how many were purged.
    pub fn purge_expired(&self) -> usize {
        let now = self.clock.now_ms();
        let mut store = self.store.lock();
        let before = store.adverts.len();
        store.adverts.retain(|_, a| !a.is_expired(now));
        let purged = before - store.adverts.len();
        if purged > 0 {
            store.journal(TdnOp::Purge { now_ms: now });
        }
        purged
    }

    /// All stored advertisements (used by cluster resync).
    pub fn all_advertisements(&self) -> Vec<TopicAdvertisement> {
        self.store.lock().adverts.values().cloned().collect()
    }

    /// Number of stored advertisements.
    pub fn advert_count(&self) -> usize {
        self.store.lock().adverts.len()
    }

    /// Captures every `tdn.*` metric of this node (the advert-count
    /// gauge is sampled at call time).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.adverts.set(self.advert_count() as i64);
        self.metrics.registry.snapshot()
    }

    /// Builds this TDN's telemetry publisher. Unlike brokers and
    /// engines, a TDN holds no broker handle, so the caller supplies
    /// the `sink` that carries frames into the mesh (typically a
    /// broker's `publish_internal`).
    pub fn telemetry_publisher(
        self: &Arc<Self>,
        sink: ObsSink,
        config: PublisherConfig,
    ) -> TelemetryPublisher {
        let source = Arc::clone(self);
        TelemetryPublisher::new(
            self.id.clone(),
            NodeKind::Tdn,
            Arc::new(move || source.metrics_snapshot()),
            sink,
            self.clock.clone(),
            config,
        )
    }
}

impl fmt::Debug for Tdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tdn({}, {} adverts)", self.id, self.advert_count())
    }
}
