//! Durable TDN state: the journalled registry ops and snapshot codec
//! for [`nb_store::Durable`].
//!
//! A TDN's registry is the cluster's source of truth for topic
//! provenance: the signed advertisements themselves. Losing it on
//! restart would orphan every live trace topic whose owner is not
//! around to re-create it, so each accepted mutation — a creation, an
//! accepted replica, an expiry purge — is journalled.
//!
//! The state also carries a **replication epoch**: a counter bumped on
//! every advertisement installed. After a restart the epoch tells
//! peers (and tests) how much registry history this member has folded
//! in, so a recovered node can be compared against its peers before it
//! serves discovery again.

use nb_crypto::Uuid;
use nb_store::DurableState;
use nb_wire::codec::{Decode, Encode, Reader, Writer};
use nb_wire::payload::TopicAdvertisement;
use nb_wire::WireError;
use std::collections::BTreeMap;

/// One journalled registry mutation.
#[derive(Debug, Clone)]
pub enum TdnOp {
    /// An advertisement entered the registry (local creation or an
    /// accepted, signature-verified replica).
    AdvertPut(Box<TopicAdvertisement>),
    /// An expiry sweep ran at `now_ms`; replay re-evaluates the same
    /// deterministic `is_expired(now_ms)` predicate.
    Purge {
        /// Clock reading the sweep used.
        now_ms: u64,
    },
}

impl Encode for TdnOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            TdnOp::AdvertPut(advert) => {
                w.put_u8(1);
                advert.encode(w);
            }
            TdnOp::Purge { now_ms } => {
                w.put_u8(2);
                w.put_u64(*now_ms);
            }
        }
    }
}

impl Decode for TdnOp {
    fn decode(r: &mut Reader<'_>) -> nb_wire::Result<Self> {
        match r.get_u8()? {
            1 => Ok(TdnOp::AdvertPut(Box::new(TopicAdvertisement::decode(r)?))),
            2 => Ok(TdnOp::Purge {
                now_ms: r.get_u64()?,
            }),
            tag => Err(WireError::UnknownTag {
                what: "tdn op",
                tag,
            }),
        }
    }
}

/// The TDN's durable registry (the replay target).
///
/// Deterministic (`BTreeMap` keyed by topic id) so identical histories
/// produce byte-identical snapshots.
#[derive(Debug, Default)]
pub struct TdnDurableState {
    /// Topic id → signed advertisement.
    pub adverts: BTreeMap<Uuid, TopicAdvertisement>,
    /// Replication epoch: total advertisements ever installed (not
    /// decremented by purges).
    pub epoch: u64,
}

impl DurableState for TdnDurableState {
    type Op = TdnOp;

    fn apply(&mut self, op: TdnOp) {
        match op {
            TdnOp::AdvertPut(advert) => {
                self.adverts.insert(advert.topic_id, *advert);
                self.epoch += 1;
            }
            TdnOp::Purge { now_ms } => {
                self.adverts.retain(|_, a| !a.is_expired(now_ms));
            }
        }
    }

    fn snapshot_encode(&self, w: &mut Writer) {
        w.put_varint(self.adverts.len() as u64);
        for advert in self.adverts.values() {
            advert.encode(w);
        }
        w.put_u64(self.epoch);
    }

    fn snapshot_decode(r: &mut Reader<'_>) -> nb_wire::Result<Self> {
        let mut state = TdnDurableState::default();
        let n = r.get_varint()?;
        for _ in 0..n {
            let advert = TopicAdvertisement::decode(r)?;
            state.adverts.insert(advert.topic_id, advert);
        }
        state.epoch = r.get_u64()?;
        Ok(state)
    }
}
