//! A replicated set of TDNs.
//!
//! "Since a given topic advertisement will be stored at multiple TDN
//! nodes, this scheme sustains the loss of TDN nodes due to failures
//! or downtimes" (§2.2). The cluster replicates every advertisement
//! created at any member to all live members, and lets callers mark
//! members failed to exercise exactly that property.

use crate::node::{Tdn, TdnError};
use crate::Result;
use nb_crypto::cert::{Certificate, CertificateAuthority, Validity};
use nb_crypto::rsa::RsaPublicKey;
use nb_crypto::Uuid;
use nb_transport::clock::SharedClock;
use nb_wire::payload::{DiscoveryRestrictions, TopicAdvertisement};
use rand::Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct Member {
    tdn: Arc<Tdn>,
    alive: AtomicBool,
}

/// A cluster of replicating TDNs.
pub struct TdnCluster {
    members: Vec<Member>,
}

impl TdnCluster {
    /// Stands up `n` TDNs with credentials issued by `ca`, all knowing
    /// each other's keys.
    pub fn new(
        n: usize,
        ca: &mut CertificateAuthority,
        validity: Validity,
        clock: SharedClock,
        rng: &mut dyn Rng,
    ) -> Result<Self> {
        assert!(n >= 1);
        let ca_key = ca.certificate().public_key.clone();
        let mut tdns = Vec::with_capacity(n);
        for i in 0..n {
            let cred = ca
                .issue(&format!("tdn:{i}"), validity, rng)
                .map_err(TdnError::BadCredentials)?;
            tdns.push(Arc::new(Tdn::new(
                format!("tdn-{i}"),
                cred,
                ca_key.clone(),
                clock.clone(),
                0x7d7 + i as u64,
            )));
        }
        // Full-mesh key exchange.
        for a in &tdns {
            for b in &tdns {
                if a.id() != b.id() {
                    a.add_peer(b.id(), b.public_key());
                }
            }
        }
        Ok(TdnCluster {
            members: tdns
                .into_iter()
                .map(|tdn| Member {
                    tdn,
                    alive: AtomicBool::new(true),
                })
                .collect(),
        })
    }

    /// Number of members (alive or not).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// A member TDN handle.
    pub fn node(&self, idx: usize) -> Arc<Tdn> {
        Arc::clone(&self.members[idx].tdn)
    }

    /// Marks a member failed: it stops receiving replicas and serving
    /// queries through the cluster API.
    pub fn fail_node(&self, idx: usize) {
        self.members[idx].alive.store(false, Ordering::SeqCst);
    }

    /// Brings a failed member back (it will have missed replicas —
    /// call [`TdnCluster::resync`] to heal it).
    pub fn revive_node(&self, idx: usize) {
        self.members[idx].alive.store(true, Ordering::SeqCst);
    }

    fn alive_members(&self) -> impl Iterator<Item = &Member> {
        self.members
            .iter()
            .filter(|m| m.alive.load(Ordering::SeqCst))
    }

    /// Creates a topic at the first live TDN and replicates the
    /// advertisement to every other live member.
    pub fn create_topic(
        &self,
        credentials: &Certificate,
        descriptor: &str,
        restrictions: DiscoveryRestrictions,
        lifetime_ms: u64,
    ) -> Result<TopicAdvertisement> {
        let primary = self
            .alive_members()
            .next()
            .ok_or(TdnError::BadAdvertisement("no live TDN"))?;
        let advert =
            primary
                .tdn
                .create_topic(credentials, descriptor, restrictions, lifetime_ms)?;
        for m in self.alive_members() {
            if m.tdn.id() != primary.tdn.id() {
                m.tdn.replicate(advert.clone())?;
            }
        }
        Ok(advert)
    }

    /// Runs a discovery query against any live TDN.
    pub fn discover(&self, query: &str, credentials: &Certificate) -> Vec<TopicAdvertisement> {
        match self.alive_members().next() {
            Some(m) => m.tdn.discover(query, credentials),
            None => Vec::new(),
        }
    }

    /// The public key a tracker should use to verify an advertisement
    /// signed by `tdn_id`, if that member exists.
    pub fn tdn_key(&self, tdn_id: &str) -> Option<RsaPublicKey> {
        self.members
            .iter()
            .find(|m| m.tdn.id() == tdn_id)
            .map(|m| m.tdn.public_key())
    }

    /// Captures every member's causal-tracing flight recorder, in
    /// member order — ready for the `nb_telemetry` exporters.
    pub fn telemetry_spans(&self) -> Vec<nb_telemetry::NodeSpans> {
        self.members
            .iter()
            .map(|m| nb_telemetry::NodeSpans::capture(m.tdn.flight_recorder()))
            .collect()
    }

    /// Captures every member's `tdn.*` metrics, namespaced by TDN id.
    pub fn metrics_snapshot(&self) -> nb_metrics::Snapshot {
        self.members
            .iter()
            .fold(nb_metrics::Snapshot::default(), |acc, m| {
                acc.merge(m.tdn.metrics_snapshot().prefixed(m.tdn.id()))
            })
    }

    /// Copies every advertisement known to live members onto `idx`
    /// (healing after revival).
    pub fn resync(&self, idx: usize) -> Result<usize> {
        let target = Arc::clone(&self.members[idx].tdn);
        let mut copied = 0;
        // Collect distinct advertisements from live members.
        let mut seen: Vec<Uuid> = Vec::new();
        for m in self.alive_members() {
            if m.tdn.id() == target.id() {
                continue;
            }
            for advert in m.tdn.all_advertisements() {
                if !seen.contains(&advert.topic_id) {
                    seen.push(advert.topic_id);
                    if target.advertisement(&advert.topic_id).is_none() {
                        target.replicate(advert)?;
                        copied += 1;
                    }
                }
            }
        }
        Ok(copied)
    }
}
