//! # nb-tdn — Topic Discovery Nodes
//!
//! The topic creation and discovery subsystem (paper §2.2 and §3.1,
//! Ref \[2\]). A TDN:
//!
//! * accepts **topic creation requests** carrying the requester's
//!   credentials, a descriptor, discovery restrictions, and a
//!   lifetime;
//! * generates the topic's 128-bit UUID **at the TDN** — "so that no
//!   entity is able to claim some other entity's topic as its own";
//! * mints a **cryptographically signed topic advertisement** binding
//!   all of the above, establishing provenance;
//! * **replicates** advertisements to its peer TDNs so the scheme
//!   "sustains the loss of TDN nodes due to failures or downtimes";
//! * answers **discovery queries** only when the presented credentials
//!   satisfy the advertisement's discovery restrictions — unauthorized
//!   queries are silently ignored (no response reveals the topic's
//!   existence).

pub mod cluster;
pub mod node;
pub mod persist;
pub mod query;

pub use cluster::TdnCluster;
pub use node::{Tdn, TdnError};
pub use query::matches_descriptor;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, TdnError>;
