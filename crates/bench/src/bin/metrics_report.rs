//! **Metrics report** — drives a small end-to-end deployment and dumps
//! the complete observability surface.
//!
//! Stands up a 3-broker chain with one traced entity (secured tracing,
//! so the crypto path is exercised end to end) and two trackers, lets
//! traces flow, injects a failure, and then prints the merged
//! deployment snapshot twice: as the aligned human-readable table and
//! as the line-oriented `key value` dump (the machine-readable form
//! described in `docs/OBSERVABILITY.md`).
//!
//! The report covers every instrumented layer: `broker.*`,
//! `tracing.*`, `tdn.*`, and the process-wide `transport.*`, `token.*`
//! and `crypto.*` families.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_tracing::view::EntityStatus;
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::{EntityState, LoadInformation, TraceCategory};
use std::time::{Duration, Instant};

fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn main() {
    println!("== metrics report: 3-broker chain, 1 secured entity, 2 trackers ==");
    let mut config = TracingConfig::for_tests();
    config.auto_tick = true;
    config.tick = Duration::from_millis(10);

    let dep = Deployment::new(
        Topology::Chain(3),
        LinkConfig::default(),
        system_clock(),
        config,
    )
    .expect("deployment");

    let entity = dep
        .traced_entity(
            0,
            "report-svc",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            true, // secured: exercise trace encryption + key delivery
        )
        .expect("traced entity");
    let far_tracker = dep
        .tracker(
            2,
            "far-watcher",
            "report-svc",
            vec![
                TraceCategory::ChangeNotifications,
                TraceCategory::AllUpdates,
                TraceCategory::Load,
            ],
        )
        .expect("far tracker");
    let near_tracker = dep
        .tracker(
            0,
            "near-watcher",
            "report-svc",
            vec![TraceCategory::ChangeNotifications],
        )
        .expect("near tracker");

    // Drive real traffic: availability, state changes, load reports.
    assert!(
        wait_until(Duration::from_secs(15), || {
            far_tracker.view().status("report-svc") == Some(EntityStatus::Available)
        }),
        "entity never became available at the far tracker"
    );
    entity.set_state(EntityState::Ready).expect("state report");
    for i in 0..5u64 {
        entity
            .report_load(LoadInformation {
                cpu_percent: 10.0 * i as f64,
                memory_used_bytes: 1 << 28,
                memory_total_bytes: 1 << 30,
                workload: i,
            })
            .expect("load report");
        std::thread::sleep(Duration::from_millis(30));
    }
    assert!(wait_until(Duration::from_secs(15), || {
        entity.pings_answered() >= 3
    }));

    // Inject a failure so the detector pipeline (suspicion → failed →
    // time-to-detection histogram) shows up in the report.
    entity.stop();
    wait_until(Duration::from_secs(30), || {
        far_tracker.view().status("report-svc") == Some(EntityStatus::Failed)
    });

    let snapshot = dep.metrics_snapshot();
    println!("\n-- table form --");
    println!("{}", snapshot.to_table());
    println!("-- dump form (key value) --");
    println!("{}", snapshot.to_dump());

    // Keep the report honest: every instrumented layer must be present.
    for family in [
        "broker-0.broker.",
        "broker-0.tracing.",
        "tdn-0.tdn.",
        "transport.",
        "token.",
        "crypto.",
    ] {
        assert!(
            snapshot.entries().iter().any(|e| e.name.starts_with(family)),
            "metrics report is missing the {family}* family"
        );
    }
    let _ = near_tracker;
    println!("all layers reporting: broker, tracing, tdn, transport, token, crypto");

    // Epilogue: the same numbers again, but collected over the mesh —
    // every node self-publishes on the Obs topic and the cluster
    // aggregator reassembles per-node and cluster-summed views.
    let obs = dep
        .telemetry(nb_obs::PublisherConfig::default())
        .expect("telemetry plane");
    assert!(
        wait_until(Duration::from_secs(15), || {
            obs.publish_all();
            obs.pump();
            obs.aggregator().nodes().len() == obs.publishers().len()
        }),
        "not every node reached the aggregator"
    );
    println!("\n-- per-node view (aggregated over the mesh) --");
    println!("{}", obs.aggregator().per_node().to_table());
    println!("-- cluster rollup (summed across nodes) --");
    let rollup = obs.aggregator().rollup();
    println!("{}", rollup.to_table());
    for family in ["broker.", "tracing.", "tdn."] {
        assert!(
            rollup.entries().iter().any(|e| e.name.starts_with(family)),
            "cluster rollup is missing the {family}* family"
        );
    }
    println!(
        "telemetry plane: {} nodes aggregated, {} frames accepted",
        obs.aggregator().nodes().len(),
        obs.aggregator()
            .metrics_snapshot()
            .counter("obs.frames.accepted")
            .unwrap_or(0)
    );
}
