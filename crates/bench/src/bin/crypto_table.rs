//! **Table 3 (lower half)** — "Security and Authorization related
//! costs": token generation and signing, token verification, trace
//! encryption/decryption, trace signing/verification, and the
//! encrypted-trace variants.
//!
//! Configuration matches the paper: 1024-bit RSA with SHA-1 +
//! PKCS#1 padding for signatures, 192-bit AES for symmetric work.
//!
//! Expected shape (paper): RSA signing ≫ RSA verification ≫ AES
//! encrypt/decrypt; token generation ≈ signing cost plus key
//! generation.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_bench::{print_header, print_row, sample_count, Stats};
use nb_crypto::cert::{CertificateAuthority, Validity};
use nb_crypto::modes::{cbc_decrypt, cbc_encrypt};
use nb_crypto::rsa::RsaKeyPair;
use nb_crypto::DigestAlgorithm;
use nb_crypto::Uuid;
use nb_wire::codec::Encode;
use nb_wire::token::{AuthorizationToken, Rights};
use nb_wire::trace::{TraceEvent, TraceKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn time_op(samples: usize, mut op: impl FnMut()) -> Stats {
    // Warm-up.
    for _ in 0..3 {
        op();
    }
    let mut v = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        op();
        v.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    Stats::from_samples(&v)
}

fn main() {
    let samples = sample_count(200);
    let mut rng = StdRng::seed_from_u64(0xc0de);
    let now: u64 = 1_700_000_000_000;

    // Fixtures: the paper's 1024-bit RSA owner credential and a
    // representative trace message.
    let mut ca = CertificateAuthority::new(
        "bench-ca",
        1024,
        Validity::starting_now(now, 1 << 40),
        &mut rng,
    )
    .unwrap();
    let owner = ca
        .issue("entity:bench", Validity::starting_now(now, 1 << 40), &mut rng)
        .unwrap();
    let owner_key = owner.certificate.public_key.clone();
    let trace_topic = Uuid::new_v4(&mut rng);
    let delegate = RsaKeyPair::generate(1024, &mut rng).unwrap();

    let event = TraceEvent {
        entity_id: "entity:bench".to_string(),
        trace_topic,
        seq: 42,
        timestamp_ms: now,
        kind: TraceKind::AllsWell,
    };
    let trace_bytes = event.to_bytes();
    let aes_key = [0x42u8; 24]; // 192-bit, the paper's choice
    let iv = [7u8; 16];
    let encrypted = cbc_encrypt(&aes_key, &iv, &trace_bytes).unwrap();
    let signature = owner.sign(&trace_bytes).unwrap();
    let enc_signature = owner.sign(&encrypted).unwrap();
    let token = AuthorizationToken::issue(
        &owner,
        trace_topic,
        delegate.public.clone(),
        Rights::Publish,
        now,
        now + 60_000,
    )
    .unwrap();

    println!("== Table 3 (lower half): security & authorization costs ==");
    println!("(1024-bit RSA + SHA-1 + PKCS#1; 192-bit AES-CBC; {samples} samples)");
    print_header("Security and Authorization related costs", "ms");

    // "Token Generation and Signing" — the paper's token generation
    // includes creating the random key pair and signing the token.
    let mut kg_rng = StdRng::seed_from_u64(1);
    print_row(
        "Token Generation and Signing",
        &time_op(samples.min(40), || {
            let kp = RsaKeyPair::generate(1024, &mut kg_rng).unwrap();
            let _ = AuthorizationToken::issue(
                &owner,
                trace_topic,
                kp.public,
                Rights::Publish,
                now,
                now + 60_000,
            )
            .unwrap();
        }),
    );

    print_row(
        "Verifying Authorization Token",
        &time_op(samples, || {
            token
                .verify(&owner_key, Rights::Publish, now, 100)
                .unwrap();
        }),
    );

    print_row(
        "Encrypting Trace Message",
        &time_op(samples, || {
            let _ = cbc_encrypt(&aes_key, &iv, &trace_bytes).unwrap();
        }),
    );

    print_row(
        "Decrypting Trace Message",
        &time_op(samples, || {
            let _ = cbc_decrypt(&aes_key, &iv, &encrypted).unwrap();
        }),
    );

    print_row(
        "Sign Trace Message",
        &time_op(samples, || {
            let _ = owner.sign(&trace_bytes).unwrap();
        }),
    );

    print_row(
        "Verify Signature in Trace Message",
        &time_op(samples, || {
            owner_key
                .verify(DigestAlgorithm::Sha1, &trace_bytes, &signature)
                .unwrap();
        }),
    );

    print_row(
        "Sign Encrypted Trace Message",
        &time_op(samples, || {
            let _ = owner.sign(&encrypted).unwrap();
        }),
    );

    print_row(
        "Verify Signature in Encrypted Trace Message",
        &time_op(samples, || {
            owner_key
                .verify(DigestAlgorithm::Sha1, &encrypted, &enc_signature)
                .unwrap();
        }),
    );

    // §6.3 rationale in one line: symmetric auth vs RSA signing.
    let mut mac_data = trace_bytes.clone();
    print_row(
        "HMAC-SHA256 authenticate (6.3 optimization)",
        &time_op(samples, || {
            mac_data[0] ^= 1;
            let _ = nb_crypto::hmac::hmac::<nb_crypto::sha256::Sha256>(&aes_key, &mac_data);
        }),
    );

    // Ablation: Montgomery vs generic modular exponentiation, and
    // CRT vs plain private-key operation (DESIGN.md design choices).
    let m = nb_crypto::BigUint::from_bytes_be(&{
        let mut b = vec![0u8; 128];
        rng.fill_bytes(&mut b);
        b[0] |= 0x80;
        b[127] |= 1; // odd
        b
    });
    let base = nb_crypto::BigUint::from_u64(0x1234_5678_9abc_def1);
    let exp = nb_crypto::BigUint::from_u64(65537);
    print_header("Ablations (design choices)", "ms");
    print_row(
        "modpow 1024-bit (Montgomery)",
        &time_op(samples, || {
            let _ = base.modpow(&exp, &m).unwrap();
        }),
    );
    print_row(
        "modpow 1024-bit (schoolbook reduction)",
        &time_op(samples.min(50), || {
            let _ = base.modpow_generic(&exp, &m).unwrap();
        }),
    );
    let c = nb_crypto::BigUint::from_u64(0xdead_beef);
    print_row(
        "RSA private op (no CRT)",
        &time_op(samples, || {
            let _ = delegate.private.raw_no_crt(&c).unwrap();
        }),
    );
    print_row(
        "RSA private op (CRT, via sign)",
        &time_op(samples, || {
            let _ = delegate.private.sign(DigestAlgorithm::Sha1, b"x").unwrap();
        }),
    );
}
