//! **Table 3 (bottom)** — key distribution overhead at 2, 3 and 4
//! hops.
//!
//! Secured tracing requires the broker to deliver the secret trace key
//! to each authorized tracker (§5.1): the tracker's interest response
//! travels to the hosting broker, which seals the key to the tracker's
//! public key and publishes it back. We measure tracker start →
//! key-in-hand, per fresh tracker.
//!
//! Expected shape (paper): grows with hops and shows much higher
//! variance than plain trace routing (it includes an RSA seal/unseal
//! per tracker plus a full round trip).

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_bench::{print_header, print_row, sample_count, wait_trace_key, Stats};
use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;
use std::time::Duration;

fn run_hops(hops: usize, samples: usize) -> Option<Stats> {
    let mut config = TracingConfig::default();
    config.rsa_bits = 1024;
    let dep = Deployment::new(
        Topology::Chain(hops),
        LinkConfig::default(),
        system_clock(),
        config,
    )
    .ok()?;
    let _entity = dep
        .traced_entity(
            0,
            "keyed-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            true, // secured: trace key exists and must be distributed
        )
        .ok()?;

    let mut latencies = Vec::with_capacity(samples);
    for i in 0..samples {
        // Each sample is a brand-new tracker receiving the key.
        let tracker = dep
            .tracker(
                hops - 1,
                &format!("key-tracker-{i}"),
                "keyed-entity",
                vec![TraceCategory::AllUpdates],
            )
            .ok()?;
        if let Some(ms) = wait_trace_key(&tracker, Duration::from_secs(20)) {
            latencies.push(ms);
        }
        tracker.stop();
    }
    if latencies.is_empty() {
        None
    } else {
        Some(Stats::from_samples(&latencies))
    }
}

fn main() {
    let samples = sample_count(20);
    println!("== Table 3 (bottom): key distribution overhead ==");
    println!("(tracker start → sealed trace key unsealed; {samples} fresh trackers per point)");
    print_header("Key Distribution Overhead", "ms");
    for hops in 2..=4 {
        match run_hops(hops, samples) {
            Some(stats) => print_row(&format!("{hops}-hops"), &stats),
            None => println!("{hops}-hops: MEASUREMENT FAILED"),
        }
    }
}
