//! **Throughput report** — saturates a loopback broker's data plane
//! and writes `BENCH_throughput.json` (see `docs/PERFORMANCE.md`).
//!
//! Two configurations of the same broker are driven back to back:
//!
//! * **baseline** — `data_plane_cache = false`: every frame takes the
//!   historical decode → state-lock → match path;
//! * **overhauled** — `data_plane_cache = true`: steady-state frames
//!   ride the zero-copy fast path through the sharded route cache.
//!
//! Each configuration gets a multi-threaded saturation phase (the
//! msgs/sec headline) and a single-threaded timed phase (per-message
//! route latency percentiles, measured uniformly for both modes so the
//! comparison is honest). Delivery counts are asserted exact — a
//! throughput number that loses messages is not a throughput number.
//!
//! Run with `--quick` (CI) for a shorter drive with the same
//! assertions and JSON shape.

use nb_broker::{Broker, BrokerConfig};
use nb_transport::clock::system_clock;
use nb_transport::endpoint::{Endpoint, FrameSender};
use nb_wire::codec::Encode;
use nb_wire::{Message, Payload, Topic};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Broker-side sender for the subscriber endpoint: swallows frames
/// after counting them, so the bench measures routing, not a consumer.
#[derive(Default)]
struct SinkSender {
    delivered: AtomicU64,
}

impl FrameSender for SinkSender {
    fn send_frame(&self, _frame: &[u8]) -> nb_transport::Result<()> {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

fn topic() -> Topic {
    Topic::parse("/Bench/Throughput/Loopback").unwrap()
}

fn data_frame(sender: &str, seq: u64) -> Vec<u8> {
    Message::new(
        seq,
        topic(),
        sender,
        0,
        Payload::Ping { seq, sent_at_ms: 0 },
    )
    .to_bytes()
}

/// Idle subscribers populating the broker: a realistic data plane is
/// never matching against one filter. Each idle client carries
/// [`IDLE_FILTERS`] disjoint filters the hot topic must be matched
/// against (and rejected by) on every decode-path route.
const IDLE_SUBSCRIBERS: usize = 64;
const IDLE_FILTERS: usize = 4;

/// Attaches one sink-backed client and registers its filters, waiting
/// for every control ack. Returns the sink and the client's uplink —
/// dropping the uplink reads as a link failure and detaches the
/// client, so callers must hold it.
fn attach_sink_client(
    broker: &Broker,
    id: &str,
    filters: &[Topic],
) -> (Arc<SinkSender>, crossbeam::channel::Sender<Vec<u8>>) {
    let sink = Arc::new(SinkSender::default());
    let (frames_tx, frames_rx) = crossbeam::channel::unbounded::<Vec<u8>>();
    broker.attach_client(Endpoint::from_parts(
        Arc::clone(&sink) as Arc<dyn FrameSender>,
        frames_rx,
    ));
    let control = Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap();
    frames_tx
        .send(
            Message::new(
                1,
                control.clone(),
                id,
                0,
                Payload::Attach { client_id: id.to_string() },
            )
            .to_bytes(),
        )
        .expect("attach frame");
    for (i, filter) in filters.iter().enumerate() {
        frames_tx
            .send(
                Message::new(
                    2 + i as u64,
                    control.clone(),
                    id,
                    0,
                    Payload::Subscribe { filter: filter.clone() },
                )
                .to_bytes(),
            )
            .expect("subscribe frame");
    }
    // One ack per control message proves the worker registered them.
    let expected = 1 + filters.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while sink.delivered.load(Ordering::Relaxed) < expected {
        assert!(Instant::now() < deadline, "client {id} never finished its handshake");
        std::thread::sleep(Duration::from_millis(1));
    }
    (sink, frames_tx)
}

/// Stands up a loopback broker carrying a populated subscription table
/// (one hot-topic subscriber plus the idle fleet) and blocks until the
/// hot subscription is routable.
fn routable_broker(
    cache: bool,
) -> (Broker, Arc<SinkSender>, Vec<crossbeam::channel::Sender<Vec<u8>>>) {
    let cfg = BrokerConfig {
        advert_refresh: None,
        data_plane_cache: cache,
        ..BrokerConfig::default()
    };
    let broker = Broker::new(if cache { "hot" } else { "base" }, system_clock(), cfg);

    let mut uplinks = Vec::new();
    for i in 0..IDLE_SUBSCRIBERS {
        let filters: Vec<Topic> = (0..IDLE_FILTERS)
            .map(|j| Topic::parse(&format!("/Bench/Idle/{i}/{j}")).unwrap())
            .collect();
        let (_, uplink) = attach_sink_client(&broker, &format!("idle-{i}"), &filters);
        uplinks.push(uplink);
    }
    let (sink, uplink) = attach_sink_client(&broker, "sub", &[topic()]);
    uplinks.push(uplink);

    // Probe-publish until the first copy lands behind the control
    // acks, proving the hot subscription is live.
    let acks = sink.delivered.load(Ordering::Relaxed);
    let mut probe = data_frame("probe", 1);
    let deadline = Instant::now() + Duration::from_secs(10);
    while sink.delivered.load(Ordering::Relaxed) <= acks {
        assert!(Instant::now() < deadline, "subscription never became routable");
        broker.ingest_client_frame("probe", &mut probe);
        std::thread::sleep(Duration::from_millis(2));
    }
    (broker, sink, uplinks)
}

struct RunStats {
    msgs_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    delivered: u64,
    fastpath: u64,
    slowpath: u64,
    cache_hits: u64,
    cache_stale: u64,
}

/// Drives one broker configuration: a multi-threaded saturation phase
/// for throughput, then a single-threaded timed phase for latency.
fn run_config(cache: bool, threads: usize, per_thread: u64, timed: u64) -> RunStats {
    let (broker, sink, _uplinks) = routable_broker(cache);
    let broker = Arc::new(broker);
    let delivered_start = sink.delivered.load(Ordering::Relaxed);

    // Saturation phase: untimed tight loops, wall-clocked end to end.
    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let broker = Arc::clone(&broker);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let id = format!("pub-{t}");
                let mut frame = data_frame(&id, t as u64 + 10);
                barrier.wait();
                for _ in 0..per_thread {
                    broker.ingest_client_frame(&id, &mut frame);
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for w in workers {
        w.join().expect("publisher thread");
    }
    let elapsed = t0.elapsed();
    let msgs = threads as u64 * per_thread;
    let msgs_per_sec = msgs as f64 / elapsed.as_secs_f64();

    // Latency phase: per-message timing, one thread, no contention.
    let mut frame = data_frame("pub-timed", 7);
    let mut lat_ns: Vec<u64> = Vec::with_capacity(timed as usize);
    for _ in 0..timed {
        let t = Instant::now();
        broker.ingest_client_frame("pub-timed", &mut frame);
        lat_ns.push(t.elapsed().as_nanos() as u64);
    }
    lat_ns.sort_unstable();
    let pct = |q: f64| lat_ns[((lat_ns.len() - 1) as f64 * q) as usize];

    let delivered = sink.delivered.load(Ordering::Relaxed) - delivered_start;
    assert_eq!(
        delivered,
        msgs + timed,
        "lost or duplicated deliveries (cache={cache})"
    );

    let snap = broker.metrics_snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    RunStats {
        msgs_per_sec,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        delivered,
        fastpath: counter("broker.route.fastpath"),
        slowpath: counter("broker.route.slowpath"),
        cache_hits: counter("broker.route.cache_hit"),
        cache_stale: counter("broker.route.cache_stale"),
    }
}

fn json_section(s: &RunStats) -> String {
    format!(
        "{{\n    \"msgs_per_sec\": {:.0},\n    \"p50_route_ns\": {},\n    \"p99_route_ns\": {},\n    \"delivered\": {},\n    \"fastpath\": {},\n    \"slowpath\": {},\n    \"cache_hits\": {},\n    \"cache_stale\": {}\n  }}",
        s.msgs_per_sec, s.p50_ns, s.p99_ns, s.delivered, s.fastpath, s.slowpath, s.cache_hits, s.cache_stale
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let (per_thread, timed) = if quick { (50_000, 20_000) } else { (500_000, 200_000) };
    println!(
        "== throughput report: loopback broker, {threads} publishers x {per_thread} msgs ({}) ==",
        if quick { "quick" } else { "full" }
    );

    let base = run_config(false, threads, per_thread, timed);
    println!(
        "baseline   (cache off): {:>12.0} msgs/sec   p50 {:>6} ns   p99 {:>6} ns",
        base.msgs_per_sec, base.p50_ns, base.p99_ns
    );
    let hot = run_config(true, threads, per_thread, timed);
    println!(
        "overhauled (cache on) : {:>12.0} msgs/sec   p50 {:>6} ns   p99 {:>6} ns",
        hot.msgs_per_sec, hot.p50_ns, hot.p99_ns
    );
    let speedup = hot.msgs_per_sec / base.msgs_per_sec;
    println!(
        "speedup: {speedup:.2}x   (fast path took {} of {} routed frames)",
        hot.fastpath,
        hot.fastpath + hot.slowpath
    );

    // Shape checks backing the CI smoke run.
    assert!(hot.fastpath >= threads as u64 * per_thread, "fast path was bypassed");
    assert!(hot.cache_hits > 0, "route cache never hit");
    assert!(
        speedup > 1.0,
        "overhaul is slower than the baseline ({speedup:.2}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"throughput_report\",\n  \"mode\": \"{}\",\n  \"threads\": {},\n  \"saturation_msgs_per_config\": {},\n  \"timed_msgs_per_config\": {},\n  \"baseline\": {},\n  \"overhauled\": {},\n  \"speedup\": {:.2}\n}}\n",
        if quick { "quick" } else { "full" },
        threads,
        threads as u64 * per_thread,
        timed,
        json_section(&base),
        json_section(&hot),
        speedup
    );
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json ({} bytes)", json.len());
}
