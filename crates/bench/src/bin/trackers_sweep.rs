//! **Figure 4** — tracing while increasing the number of trackers.
//!
//! The paper's topology (Figure 3): one traced entity; trackers are
//! added 10 at a time, with each group of 10 behind its own broker
//! (they were "hosted on different machines"). The measuring tracker
//! reports the trace time as the fleet grows.
//!
//! Expected shape (paper): "the trace time increases very slowly with
//! an increase in the number of trackers" — fan-out happens inside the
//! broker network, not at the traced entity.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_bench::{measure_trace_latencies, print_header, print_row, sample_count, wait_interest, Stats};
use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;

fn main() {
    let samples = sample_count(30);
    let max_groups: usize = std::env::var("NB_BENCH_GROUPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    println!("== Figure 4: trace time while increasing trackers ==");
    println!("(star topology: hub + {max_groups} leaf brokers, 10 trackers per group; {samples} samples per point)");

    let mut config = TracingConfig::default();
    config.rsa_bits = 1024;
    let dep = Deployment::new(
        Topology::Star(max_groups),
        LinkConfig::default(),
        system_clock(),
        config,
    )
    .expect("deployment");

    // The traced entity lives on the hub; the measuring tracker too
    // (same process ⇒ same clock, mirroring the paper's setup).
    let entity = dep
        .traced_entity(
            0,
            "sweep-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .expect("entity");
    let measuring = dep
        .tracker(
            0,
            "measuring-tracker",
            "sweep-entity",
            vec![TraceCategory::Load, TraceCategory::ChangeNotifications],
        )
        .expect("measuring tracker");
    assert!(wait_interest(&dep, 0, "sweep-entity", 1));

    print_header("Trace time vs number of trackers", "ms");
    let mut fleet = Vec::new();
    for group in 1..=max_groups {
        // Add 10 trackers on leaf broker `group`.
        for t in 0..10 {
            let tracker = dep
                .tracker(
                    group,
                    &format!("tracker-{group}-{t}"),
                    "sweep-entity",
                    vec![
                        TraceCategory::Load,
                        TraceCategory::AllUpdates,
                        TraceCategory::ChangeNotifications,
                    ],
                )
                .expect("fleet tracker");
            fleet.push(tracker);
        }
        // +1 for the measuring tracker.
        assert!(wait_interest(&dep, 0, "sweep-entity", fleet.len() + 1));

        let latencies = measure_trace_latencies(&entity, &measuring, samples, 3);
        let stats = Stats::from_samples(&latencies);
        print_row(&format!("{} trackers", fleet.len()), &stats);
    }

    // One long-lived deployment ⇒ the merged snapshot includes every
    // broker's and engine's view of the sweep, plus process-wide
    // crypto/token/transport totals.
    nb_bench::print_metrics_epilogue("full deployment", &dep.metrics_snapshot());
}
