//! **Table 4** — trace routing overhead while increasing the number of
//! traced entities.
//!
//! The paper's setup: 1 broker, 30 trackers held constant, traced
//! entities ∈ {10, 20, 30}, all entities and trackers co-resident (the
//! co-residency is also why the paper's absolute numbers degrade: all
//! per-trace security operations contend on one host).
//!
//! Expected shape (paper): mean and standard deviation grow
//! super-linearly with the entity count as per-trace crypto work
//! contends on the shared host.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_bench::{measure_trace_latencies, print_header, print_row, sample_count, wait_interest, Stats};
use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;

fn run_point(entities: usize, trackers: usize, samples: usize) -> Option<Stats> {
    let mut config = TracingConfig::default();
    config.rsa_bits = 1024;
    // Active tracing: brisk heartbeats keep every entity's security
    // pipeline busy, as in the paper's "traced actively".
    config.ping_interval = std::time::Duration::from_millis(100);
    let dep = Deployment::new(
        Topology::Chain(1),
        LinkConfig::default(),
        system_clock(),
        config,
    )
    .ok()?;

    // The measured entity plus (entities-1) background entities.
    let measured = dep
        .traced_entity(
            0,
            "entity-0",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            false,
        )
        .ok()?;
    let mut background = Vec::new();
    for i in 1..entities {
        background.push(
            dep.traced_entity(
                0,
                &format!("entity-{i}"),
                DiscoveryRestrictions::Open,
                SigningMode::RsaSign,
                false,
            )
            .ok()?,
        );
    }

    // 30 trackers, spread across the entities round-robin; tracker 0
    // is the measuring tracker on entity-0.
    let measuring = dep
        .tracker(
            0,
            "tracker-0",
            "entity-0",
            vec![
                TraceCategory::Load,
                TraceCategory::AllUpdates,
                TraceCategory::ChangeNotifications,
            ],
        )
        .ok()?;
    let mut fleet = Vec::new();
    for t in 1..trackers {
        let target = format!("entity-{}", t % entities);
        fleet.push(
            dep.tracker(
                0,
                &format!("tracker-{t}"),
                &target,
                vec![TraceCategory::AllUpdates, TraceCategory::ChangeNotifications],
            )
            .ok()?,
        );
    }
    wait_interest(&dep, 0, "entity-0", 1).then_some(())?;

    let latencies = measure_trace_latencies(&measured, &measuring, samples, 3);
    // Keep the background alive until measurement ends.
    drop(background);
    drop(fleet);
    if latencies.is_empty() {
        None
    } else {
        Some(Stats::from_samples(&latencies))
    }
}

fn main() {
    let samples = sample_count(40);
    println!("== Table 4: trace routing overhead vs number of traced entities ==");
    println!("(1 broker, 30 trackers, all co-resident; {samples} samples per point)");
    print_header("Traced entities (TCP-equivalent, co-resident)", "ms");
    for entities in [10usize, 20, 30] {
        match run_point(entities, 30, samples) {
            Some(stats) => print_row(&format!("{entities} entities"), &stats),
            None => println!("{entities} entities: MEASUREMENT FAILED"),
        }
    }
    nb_bench::print_metrics_epilogue(
        "process-wide totals across all points",
        &nb_metrics::global().snapshot(),
    );
}
