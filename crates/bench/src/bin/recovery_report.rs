//! **Recovery report** — measures the durability subsystem and writes
//! `BENCH_recovery.json` (see `docs/PERFORMANCE.md`).
//!
//! Three measurements:
//!
//! * **WAL append throughput** — raw [`Durable::record`] rate over the
//!   tracker's availability ledger (trace events, buffered fsync
//!   policy): appends/sec and MB/sec;
//! * **recovery time vs log length** — logs of increasing length are
//!   written, closed, and reopened with the open timed: the replay
//!   cost a crashed node pays at restart, plus the same store after a
//!   checkpoint to show compaction collapsing the curve;
//! * **steady-state fast-path overhead** — the loopback broker from
//!   the throughput report driven volatile and durable back to back.
//!   Publishes never touch the WAL (only control-plane mutations are
//!   journalled), so durability must cost < 5% of data-plane
//!   throughput — asserted here and re-checked by CI against the JSON.
//!
//! Run with `--quick` (CI) for a shorter drive with the same
//! assertions and JSON shape.

use nb_broker::persist::BrokerDurableState;
use nb_broker::{Broker, BrokerConfig};
use nb_crypto::Uuid;
use nb_store::{Durable, StoreConfig, TempDir};
use nb_tracing::persist::TrackerDurableState;
use nb_transport::clock::system_clock;
use nb_transport::endpoint::{Endpoint, FrameSender};
use nb_wire::codec::Encode;
use nb_wire::trace::{TraceEvent, TraceKind};
use nb_wire::{Message, Payload, Topic};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Store tuning for the append/recovery phases: auto-checkpointing off
/// so the measured log length is exactly what the phase wrote.
fn no_checkpoint() -> StoreConfig {
    StoreConfig {
        checkpoint_every: u64::MAX,
        ..StoreConfig::default()
    }
}

fn event(seq: u64) -> TraceEvent {
    TraceEvent {
        entity_id: "bench-entity".to_string(),
        trace_topic: Uuid::nil(),
        seq,
        timestamp_ms: 1_700_000_000_000 + seq,
        kind: TraceKind::AllsWell,
    }
}

struct AppendStats {
    records: u64,
    bytes: u64,
    appends_per_sec: f64,
    mb_per_sec: f64,
}

/// Raw append rate: `records` trace events through [`Durable::record`].
fn wal_append(records: u64) -> AppendStats {
    let dir = TempDir::new("bench-wal-append").unwrap();
    let (mut durable, _, _) =
        Durable::<TrackerDurableState>::open(dir.path(), "append", no_checkpoint()).unwrap();
    let op_bytes = event(0).to_bytes().len() as u64;
    let t0 = Instant::now();
    for seq in 0..records {
        durable.record(&event(seq)).expect("append");
    }
    let secs = t0.elapsed().as_secs_f64();
    AppendStats {
        records,
        bytes: op_bytes * records,
        appends_per_sec: records as f64 / secs,
        mb_per_sec: (op_bytes * records) as f64 / secs / 1e6,
    }
}

struct RecoveryPoint {
    log_records: u64,
    replayed: u64,
    recovery_ms: f64,
    replay_per_sec: f64,
}

/// Writes a log of `len` events, drops the store, and times the
/// reopen — the restart cost at that log length.
fn recovery_at(len: u64) -> RecoveryPoint {
    let dir = TempDir::new("bench-recovery").unwrap();
    let (mut durable, _, _) =
        Durable::<TrackerDurableState>::open(dir.path(), "curve", no_checkpoint()).unwrap();
    for seq in 0..len {
        durable.record(&event(seq)).expect("append");
    }
    drop(durable);

    let t0 = Instant::now();
    let (_, _, rec) =
        Durable::<TrackerDurableState>::open(dir.path(), "curve", no_checkpoint()).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(rec.records_replayed, len, "replay must cover the whole log");
    assert!(!rec.repaired(), "clean log must not need repair");
    RecoveryPoint {
        log_records: len,
        replayed: rec.records_replayed,
        recovery_ms: secs * 1e3,
        replay_per_sec: len as f64 / secs,
    }
}

struct CheckpointPoint {
    log_records: u64,
    replayed: u64,
    snapshot_seq: u64,
    recovery_ms: f64,
}

/// The same log length, but checkpointed before the kill: compaction
/// replaces replay with one snapshot load.
fn recovery_checkpointed(len: u64) -> CheckpointPoint {
    let dir = TempDir::new("bench-recovery-ckpt").unwrap();
    let (mut durable, state, _) =
        Durable::<TrackerDurableState>::open(dir.path(), "ckpt", no_checkpoint()).unwrap();
    for seq in 0..len {
        let ev = event(seq);
        state.view.apply(&ev);
        durable.record(&ev).expect("append");
    }
    durable.checkpoint(&state).expect("checkpoint");
    drop(durable);

    let t0 = Instant::now();
    let (_, _, rec) =
        Durable::<TrackerDurableState>::open(dir.path(), "ckpt", no_checkpoint()).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    assert!(rec.snapshot_loaded, "checkpoint must leave a snapshot");
    assert_eq!(rec.records_replayed, 0, "compaction must empty the log");
    CheckpointPoint {
        log_records: len,
        replayed: rec.records_replayed,
        snapshot_seq: rec.snapshot_seq,
        recovery_ms: secs * 1e3,
    }
}

// ---------------------------------------------------------------------
// Steady-state fast-path overhead: the throughput report's loopback
// broker, volatile vs durable.
// ---------------------------------------------------------------------

/// Broker-side sender for a subscriber endpoint: swallows frames after
/// counting them, so the bench measures routing, not a consumer.
#[derive(Default)]
struct SinkSender {
    delivered: AtomicU64,
}

impl FrameSender for SinkSender {
    fn send_frame(&self, _frame: &[u8]) -> nb_transport::Result<()> {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

fn topic() -> Topic {
    Topic::parse("/Bench/Recovery/Loopback").unwrap()
}

fn data_frame(sender: &str, seq: u64) -> Vec<u8> {
    Message::new(
        seq,
        topic(),
        sender,
        0,
        Payload::Ping { seq, sent_at_ms: 0 },
    )
    .to_bytes()
}

/// Idle subscribers populating the broker, as in the throughput
/// report: a realistic data plane is never matching one filter. Every
/// idle subscription is also a journalled op in the durable run.
const IDLE_SUBSCRIBERS: usize = 64;
const IDLE_FILTERS: usize = 4;

/// Attaches one sink-backed client and registers its filters, waiting
/// for every control ack. The uplink must be held — dropping it reads
/// as a link failure and detaches the client.
fn attach_sink_client(
    broker: &Broker,
    id: &str,
    filters: &[Topic],
) -> (Arc<SinkSender>, crossbeam::channel::Sender<Vec<u8>>) {
    let sink = Arc::new(SinkSender::default());
    let (frames_tx, frames_rx) = crossbeam::channel::unbounded::<Vec<u8>>();
    broker.attach_client(Endpoint::from_parts(
        Arc::clone(&sink) as Arc<dyn FrameSender>,
        frames_rx,
    ));
    let control = Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap();
    frames_tx
        .send(
            Message::new(
                1,
                control.clone(),
                id,
                0,
                Payload::Attach { client_id: id.to_string() },
            )
            .to_bytes(),
        )
        .expect("attach frame");
    for (i, filter) in filters.iter().enumerate() {
        frames_tx
            .send(
                Message::new(
                    2 + i as u64,
                    control.clone(),
                    id,
                    0,
                    Payload::Subscribe { filter: filter.clone() },
                )
                .to_bytes(),
            )
            .expect("subscribe frame");
    }
    let expected = 1 + filters.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while sink.delivered.load(Ordering::Relaxed) < expected {
        assert!(Instant::now() < deadline, "client {id} never finished its handshake");
        std::thread::sleep(Duration::from_millis(1));
    }
    (sink, frames_tx)
}

struct SteadyRun {
    msgs_per_sec: f64,
    delivered: u64,
}

/// Saturates one broker configuration's fast path. `data_dir = Some`
/// journals every control-plane mutation; publishes are identical in
/// both modes.
fn run_fast_path(data_dir: Option<PathBuf>, threads: usize, per_thread: u64) -> SteadyRun {
    let cfg = BrokerConfig {
        advert_refresh: None,
        data_plane_cache: true,
        data_dir: data_dir.clone(),
        ..BrokerConfig::default()
    };
    let broker = Broker::new(
        if data_dir.is_some() { "durable" } else { "volatile" },
        system_clock(),
        cfg,
    );

    let mut uplinks = Vec::new();
    for i in 0..IDLE_SUBSCRIBERS {
        let filters: Vec<Topic> = (0..IDLE_FILTERS)
            .map(|j| Topic::parse(&format!("/Bench/Idle/{i}/{j}")).unwrap())
            .collect();
        let (_, uplink) = attach_sink_client(&broker, &format!("idle-{i}"), &filters);
        uplinks.push(uplink);
    }
    let (sink, uplink) = attach_sink_client(&broker, "sub", &[topic()]);
    uplinks.push(uplink);

    // Probe-publish until the hot subscription is routable.
    let acks = sink.delivered.load(Ordering::Relaxed);
    let mut probe = data_frame("probe", 1);
    let deadline = Instant::now() + Duration::from_secs(10);
    while sink.delivered.load(Ordering::Relaxed) <= acks {
        assert!(Instant::now() < deadline, "subscription never became routable");
        broker.ingest_client_frame("probe", &mut probe);
        std::thread::sleep(Duration::from_millis(2));
    }
    let delivered_start = sink.delivered.load(Ordering::Relaxed);

    let broker = Arc::new(broker);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let broker = Arc::clone(&broker);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let id = format!("pub-{t}");
                let mut frame = data_frame(&id, t as u64 + 10);
                barrier.wait();
                for _ in 0..per_thread {
                    broker.ingest_client_frame(&id, &mut frame);
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for w in workers {
        w.join().expect("publisher thread");
    }
    let elapsed = t0.elapsed();

    let msgs = threads as u64 * per_thread;
    let delivered = sink.delivered.load(Ordering::Relaxed) - delivered_start;
    assert_eq!(delivered, msgs, "lost or duplicated deliveries");
    // End the run as a crash, not an orderly teardown: otherwise the
    // dying client workers journal ConsumerGone for every subscriber
    // and the log reopened below shows an empty table. No-op when
    // volatile.
    broker.simulate_crash();
    SteadyRun {
        msgs_per_sec: msgs as f64 / elapsed.as_secs_f64(),
        delivered,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let (append_n, curve, ckpt_n, per_thread) = if quick {
        (100_000u64, vec![1_000u64, 10_000, 50_000], 50_000u64, 50_000u64)
    } else {
        (1_000_000, vec![1_000, 10_000, 100_000, 500_000], 500_000, 500_000)
    };
    println!(
        "== recovery report: WAL + restart + fast-path overhead ({}) ==",
        if quick { "quick" } else { "full" }
    );

    // Phase 1: raw append throughput.
    let append = wal_append(append_n);
    println!(
        "wal append: {:>12.0} appends/sec   {:>8.1} MB/sec   ({} records, {} payload bytes)",
        append.appends_per_sec, append.mb_per_sec, append.records, append.bytes
    );

    // Phase 2: recovery time vs log length, then the checkpointed
    // store showing compaction collapsing the curve.
    println!("\n-- recovery time vs log length --");
    let points: Vec<RecoveryPoint> = curve.iter().map(|&len| recovery_at(len)).collect();
    for p in &points {
        println!(
            "{:>8} records: {:>9.2} ms   ({:>11.0} replays/sec)",
            p.log_records, p.recovery_ms, p.replay_per_sec
        );
    }
    let ckpt = recovery_checkpointed(ckpt_n);
    println!(
        "{:>8} records checkpointed: {:>7.2} ms   (snapshot seq {}, {} replayed)",
        ckpt.log_records, ckpt.recovery_ms, ckpt.snapshot_seq, ckpt.replayed
    );

    // Phase 3: steady-state overhead on the throughput fast path.
    // Best of two rounds per mode damps scheduler noise; the claim
    // under test is architectural (publishes never touch the WAL), not
    // a micro-optimisation.
    println!("\n-- steady-state fast-path overhead --");
    let volatile = (0..2)
        .map(|_| run_fast_path(None, threads, per_thread))
        .max_by(|a, b| a.msgs_per_sec.total_cmp(&b.msgs_per_sec))
        .unwrap();
    let dir = TempDir::new("bench-durable-broker").unwrap();
    let durable = (0..2)
        .map(|i| {
            // A fresh subdirectory per round: each round is a fresh
            // first boot, not a recovery.
            run_fast_path(Some(dir.path().join(format!("round-{i}"))), threads, per_thread)
        })
        .max_by(|a, b| a.msgs_per_sec.total_cmp(&b.msgs_per_sec))
        .unwrap();
    let overhead_pct = (1.0 - durable.msgs_per_sec / volatile.msgs_per_sec) * 100.0;
    println!(
        "volatile: {:>12.0} msgs/sec\ndurable : {:>12.0} msgs/sec   overhead {overhead_pct:.2}%",
        volatile.msgs_per_sec, durable.msgs_per_sec
    );

    // The durable broker's log must actually hold the control plane:
    // reopen the last round's store and count what a restart replays.
    let (_, state, rec) = Durable::<BrokerDurableState>::open(
        &dir.path().join("round-1"),
        "broker",
        StoreConfig::default(),
    )
    .expect("reopen durable broker log");
    let wal_records = rec.snapshot_seq + rec.records_replayed;
    let expected_subs = (IDLE_SUBSCRIBERS * IDLE_FILTERS + 1) as u64;
    println!(
        "durable broker log: {wal_records} journalled ops, {} recovered subscriptions",
        state.subs.len()
    );

    // Assertions backing the CI smoke run.
    assert!(
        overhead_pct < 5.0,
        "durability costs {overhead_pct:.2}% of fast-path throughput (budget 5%)"
    );
    assert!(
        wal_records >= expected_subs,
        "durable broker journalled {wal_records} ops, expected >= {expected_subs}"
    );
    assert_eq!(
        state.subs.len() as u64,
        expected_subs,
        "recovered subscription table incomplete"
    );

    let curve_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{ \"log_records\": {}, \"replayed\": {}, \"recovery_ms\": {:.3}, \"replay_per_sec\": {:.0} }}",
                p.log_records, p.replayed, p.recovery_ms, p.replay_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"recovery_report\",\n  \"mode\": \"{}\",\n  \"threads\": {},\n  \"wal_append\": {{\n    \"records\": {},\n    \"bytes\": {},\n    \"appends_per_sec\": {:.0},\n    \"mb_per_sec\": {:.2}\n  }},\n  \"recovery_curve\": [\n    {}\n  ],\n  \"checkpointed\": {{ \"log_records\": {}, \"replayed\": {}, \"snapshot_seq\": {}, \"recovery_ms\": {:.3} }},\n  \"steady_state\": {{\n    \"volatile_msgs_per_sec\": {:.0},\n    \"durable_msgs_per_sec\": {:.0},\n    \"overhead_pct\": {:.2},\n    \"delivered_per_mode\": {},\n    \"wal_records\": {}\n  }}\n}}\n",
        if quick { "quick" } else { "full" },
        threads,
        append.records,
        append.bytes,
        append.appends_per_sec,
        append.mb_per_sec,
        curve_json.join(",\n    "),
        ckpt.log_records,
        ckpt.replayed,
        ckpt.snapshot_seq,
        ckpt.recovery_ms,
        volatile.msgs_per_sec,
        durable.msgs_per_sec,
        overhead_pct,
        durable.delivered,
        wal_records
    );
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!("\nwrote BENCH_recovery.json ({} bytes)", json.len());
}
