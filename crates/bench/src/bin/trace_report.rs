//! **Trace report** — drives a secured multi-broker deployment with
//! head sampling at 100% and prints per-hop latency attribution from
//! the causal traces (see `docs/OBSERVABILITY.md`, "Causal tracing").
//!
//! Stands up a 3-broker chain with one secured traced entity at broker
//! 0 and a tracker at broker 2, lets traces flow end to end, then:
//!
//! * groups the recorded spans by trace id and prints, for each hop,
//!   where the time went — authorization, routing, queueing, forwarding
//!   and the transit gap to the next hop;
//! * writes the raw spans as JSON lines
//!   (`target/trace_report/spans.jsonl`) and as a Chrome
//!   `trace_event` file (`target/trace_report/trace.json`, loadable in
//!   `chrome://tracing` / Perfetto);
//! * measures the unsampled fast path so the "tracing off" cost stays
//!   honest.
//!
//! Run with `--smoke` (CI) for a shorter drive with the same
//! assertions: non-empty exports and at least one complete
//! publish → hop 0 → hop 1 → hop 2 → tracker-apply chain.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_telemetry::{chrome_trace, json_lines, HeadSampler, NodeSpans, SpanEvent, Stage, TraceContext};
use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_tracing::view::EntityStatus;
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::{LoadInformation, TraceCategory};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Per-hop duration buckets, in nanoseconds, accumulated over every
/// sampled trace that reached the hop.
#[derive(Default)]
struct HopBucket {
    auth: Vec<u64>,
    route: Vec<u64>,
    queue: Vec<u64>,
    forward: Vec<u64>,
    /// Gap between this hop's forward completing and the next hop's
    /// auth check starting: wire + framing + ingress queueing.
    transit: Vec<u64>,
}

fn mean_us(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<u64>() as f64 / xs.len() as f64 / 1_000.0
}

/// Groups every captured span by trace id, keeping the capturing node.
fn by_trace(nodes: &[NodeSpans]) -> BTreeMap<u128, Vec<(&str, SpanEvent)>> {
    let mut traces: BTreeMap<u128, Vec<(&str, SpanEvent)>> = BTreeMap::new();
    for node in nodes {
        for span in &node.spans {
            traces
                .entry(span.trace_id)
                .or_default()
                .push((node.node.as_str(), *span));
        }
    }
    for spans in traces.values_mut() {
        spans.sort_by_key(|(_, s)| (s.start_ns, s.span_id));
    }
    traces
}

/// Folds one trace's spans into the per-hop buckets.
fn attribute(spans: &[(&str, SpanEvent)], hops: &mut BTreeMap<u8, HopBucket>) {
    for (_, s) in spans {
        let bucket = hops.entry(s.hop).or_default();
        match s.stage {
            Stage::AuthCheck => bucket.auth.push(s.dur_ns()),
            Stage::Route => bucket.route.push(s.dur_ns()),
            Stage::Enqueue | Stage::Deliver => bucket.queue.push(s.dur_ns()),
            Stage::Forward => bucket.forward.push(s.dur_ns()),
            _ => {}
        }
    }
    // Transit: forward at hop h → auth check at hop h + 1.
    for (_, fwd) in spans.iter().filter(|(_, s)| s.stage == Stage::Forward) {
        if let Some((_, next)) = spans
            .iter()
            .find(|(_, s)| s.stage == Stage::AuthCheck && s.hop == fwd.hop + 1)
        {
            hops.entry(fwd.hop)
                .or_default()
                .transit
                .push(next.start_ns.saturating_sub(fwd.end_ns));
        }
    }
}

/// Whether one trace covers the full publish → 2-hop → apply chain.
fn complete_chain(spans: &[(&str, SpanEvent)]) -> bool {
    let has = |stage, hop| spans.iter().any(|(_, s)| s.stage == stage && s.hop == hop);
    has(Stage::TracePublish, 0)
        && has(Stage::AuthCheck, 0)
        && has(Stage::Forward, 0)
        && has(Stage::AuthCheck, 1)
        && has(Stage::AuthCheck, 2)
        && has(Stage::TrackerApply, 2)
}

/// Measures the per-message cost of the tracing guard when nothing is
/// sampled: the branch every unsampled hot-path message pays.
fn unsampled_guard_ns() -> (f64, f64) {
    const N: u64 = 4_000_000;
    let sampler = HeadSampler::new(0);
    let ctx = TraceContext::root(1, false);
    let mut acc = 0u64;
    let t = Instant::now();
    for i in 0..N {
        acc = acc.wrapping_add(i);
    }
    let base = t.elapsed().as_nanos() as f64 / N as f64;
    std::hint::black_box(acc);
    let mut hits = 0u64;
    let t = Instant::now();
    for i in 0..N {
        acc = acc.wrapping_add(i);
        if ctx.sampled && sampler.decide(ctx.trace_id) {
            hits += 1;
        }
    }
    let guarded = t.elapsed().as_nanos() as f64 / N as f64;
    std::hint::black_box((acc, hits));
    (base, guarded)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("== trace report: 3-broker chain, secured entity, 100% head sampling ==");

    let mut config = TracingConfig::for_tests();
    config.auto_tick = true;
    config.tick = Duration::from_millis(10);
    config.telemetry.sample_ppm = 1_000_000; // sample every message

    let dep = Deployment::new(
        Topology::Chain(3),
        LinkConfig::default(),
        system_clock(),
        config,
    )
    .expect("deployment");

    let entity = dep
        .traced_entity(
            0,
            "traced-svc",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            true, // secured: the auth column includes real token checks
        )
        .expect("traced entity");
    let tracker = dep
        .tracker(
            2,
            "hop2-watcher",
            "traced-svc",
            vec![
                TraceCategory::ChangeNotifications,
                TraceCategory::AllUpdates,
                TraceCategory::Load,
            ],
        )
        .expect("tracker");

    // Drive traffic until the far tracker has applied real traces.
    assert!(
        wait_until(Duration::from_secs(15), || {
            tracker.view().status("traced-svc") == Some(EntityStatus::Available)
        }),
        "entity never became available at the hop-2 tracker"
    );
    let load_reports = if smoke { 3 } else { 10 };
    for i in 0..load_reports {
        entity
            .report_load(LoadInformation {
                cpu_percent: 7.0 * i as f64,
                memory_used_bytes: 1 << 28,
                memory_total_bytes: 1 << 30,
                workload: i,
            })
            .expect("load report");
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(wait_until(Duration::from_secs(15), || {
        entity.pings_answered() >= if smoke { 2 } else { 5 }
    }));
    // Let in-flight publications finish their last hop before capture.
    assert!(wait_until(Duration::from_secs(15), || {
        tracker.traces_applied() >= load_reports
    }));

    // Capture every recorder: brokers, engines, TDNs, plus the tracker.
    let mut nodes = dep.telemetry_spans();
    nodes.push(NodeSpans::capture(tracker.flight_recorder()));
    let total_spans: usize = nodes.iter().map(|n| n.spans.len()).sum();
    println!(
        "captured {total_spans} spans across {} recorders",
        nodes.len()
    );

    let traces = by_trace(&nodes);
    let mut hops: BTreeMap<u8, HopBucket> = BTreeMap::new();
    let mut complete = 0usize;
    for spans in traces.values() {
        attribute(spans, &mut hops);
        if complete_chain(spans) {
            complete += 1;
        }
    }

    println!("\n-- per-hop latency attribution (mean µs over {} traces) --", traces.len());
    println!(
        "{:>4}  {:>10}  {:>10}  {:>10}  {:>10}  {:>12}",
        "hop", "auth", "route", "queue", "forward", "transit→next"
    );
    for (hop, b) in &hops {
        println!(
            "{hop:>4}  {:>10.2}  {:>10.2}  {:>10.2}  {:>10.2}  {:>12.2}",
            mean_us(&b.auth),
            mean_us(&b.route),
            mean_us(&b.queue),
            mean_us(&b.forward),
            mean_us(&b.transit),
        );
    }
    println!(
        "complete publish→hop2→apply chains: {complete} of {} traces",
        traces.len()
    );

    // Exports.
    let dir = std::path::Path::new("target/trace_report");
    std::fs::create_dir_all(dir).expect("create target/trace_report");
    let jsonl = json_lines(&nodes);
    let chrome = chrome_trace(&nodes);
    std::fs::write(dir.join("spans.jsonl"), &jsonl).expect("write spans.jsonl");
    std::fs::write(dir.join("trace.json"), &chrome).expect("write trace.json");
    println!(
        "wrote {} ({} bytes) and {} ({} bytes)",
        dir.join("spans.jsonl").display(),
        jsonl.len(),
        dir.join("trace.json").display(),
        chrome.len()
    );

    // Unsampled fast-path cost.
    let (base, guarded) = unsampled_guard_ns();
    println!(
        "unsampled guard: {base:.2} ns/op baseline vs {guarded:.2} ns/op guarded \
         ({:+.2} ns/message when tracing is idle)",
        guarded - base
    );

    // Keep the report honest — these also back the CI smoke run.
    assert!(total_spans > 0, "no spans were recorded");
    assert!(!jsonl.is_empty(), "JSON-lines export is empty");
    assert!(
        chrome.contains("\"traceEvents\""),
        "Chrome trace export is malformed"
    );
    assert!(
        complete >= 1,
        "no trace covered the complete publish→hop2→apply chain"
    );
    println!("trace report OK: {complete} complete chains, exports written");
}
