//! **Monitor overhead report** — measures what online runtime
//! verification costs the broker fast path and writes
//! `BENCH_monitor.json` (see `docs/OBSERVABILITY.md`).
//!
//! Three configurations of the same loopback broker are driven back to
//! back with the route cache on (the overhauled fast path):
//!
//! * **monitors_off** — no monitors attached: the PR 6 fast-path
//!   baseline;
//! * **monitors_on** — the standard property set attached, traffic on
//!   an unmonitored topic: the cost every routed frame pays (one
//!   branch on the `monitored` flag cached in its route entry);
//! * **monitored_topic** — same monitors, traffic on a constrained
//!   trace topic with a token and a trace context attached, unique
//!   message ids: every frame runs the full auth + TTL + exactly-once
//!   check battery, reported as per-event check overhead.
//!
//! Delivery counts are asserted exact, the clean traffic must produce
//! zero violations, and attaching monitors must cost less than 10% of
//! the fast-path throughput — all asserted inside the binary so the CI
//! smoke run fails loudly. Run with `--quick` (CI) for a shorter drive
//! with the same assertions and JSON shape.

use nb_broker::{Broker, BrokerConfig};
use nb_crypto::cert::{CertificateAuthority, Credential, Validity};
use nb_crypto::Uuid;
use nb_monitor::MonitorSet;
use nb_transport::clock::system_clock;
use nb_transport::endpoint::{Endpoint, FrameSender};
use nb_wire::codec::Encode;
use nb_wire::token::{AuthorizationToken, Rights};
use nb_wire::{Message, Payload, Topic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Broker-side sender for the subscriber endpoint: swallows frames
/// after counting them, so the bench measures routing, not a consumer.
#[derive(Default)]
struct SinkSender {
    delivered: AtomicU64,
}

impl FrameSender for SinkSender {
    fn send_frame(&self, _frame: &[u8]) -> nb_transport::Result<()> {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// The unmonitored hot topic (matches no property pattern).
fn plain_topic() -> Topic {
    Topic::parse("/Bench/Monitor/Loopback").unwrap()
}

/// The entity that constrains (and may publish on) the monitored
/// topic — every monitored-run frame is ingested under this identity.
const PUBLISHER: &str = "bench-entity";

/// A canonical constrained trace-publication topic every data-plane
/// property (auth, TTL, exactly-once) matches. Constrained by
/// [`PUBLISHER`] so client publishes pass the broker's Publish-Only
/// enforcement.
fn monitored_topic() -> Topic {
    Topic::parse(&format!(
        "/Constrained/Traces/{PUBLISHER}/Publish-Only/Disseminate/t1/AllUpdates"
    ))
    .unwrap()
}

/// Issues the bench credentials from a throwaway 512-bit CA (size is
/// irrelevant here: the monitor only window-checks the token because
/// no owner key is registered).
fn credentials() -> (Credential, Credential) {
    let mut rng = StdRng::seed_from_u64(0xb41c);
    let validity = Validity::starting_now(0, u64::MAX / 2);
    let mut ca = CertificateAuthority::new("bench-ca", 512, validity, &mut rng)
        .expect("bench CA");
    let monitor = ca.issue("Monitor", validity, &mut rng).expect("monitor cred");
    let owner = ca.issue("entity:bench", validity, &mut rng).expect("owner cred");
    (monitor, owner)
}

/// Pre-encodes one data frame for `topic`; monitored frames carry an
/// authorization token and a trace context like real trace traffic.
fn data_frame(sender: &str, topic: Topic, monitored: bool, owner: &Credential) -> Vec<u8> {
    let mut msg = Message::new(10, topic, sender, 0, Payload::Ping { seq: 1, sent_at_ms: 0 });
    if monitored {
        let token = AuthorizationToken::issue(
            owner,
            Uuid::from_bytes([7; 16]),
            owner.certificate.public_key.clone(),
            Rights::Publish,
            0,
            u64::MAX / 2,
        )
        .expect("bench token");
        msg = msg
            .with_token(token)
            .with_trace(nb_telemetry::TraceContext::root(0, false));
    }
    msg.to_bytes()
}

/// Attaches one sink-backed client and registers its filters, waiting
/// for every control ack. Returns the sink and the client's uplink —
/// dropping the uplink reads as a link failure and detaches the
/// client, so callers must hold it.
fn attach_sink_client(
    broker: &Broker,
    id: &str,
    filters: &[Topic],
) -> (Arc<SinkSender>, crossbeam::channel::Sender<Vec<u8>>) {
    let sink = Arc::new(SinkSender::default());
    let (frames_tx, frames_rx) = crossbeam::channel::unbounded::<Vec<u8>>();
    broker.attach_client(Endpoint::from_parts(
        Arc::clone(&sink) as Arc<dyn FrameSender>,
        frames_rx,
    ));
    let control = Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap();
    frames_tx
        .send(
            Message::new(1, control.clone(), id, 0, Payload::Attach { client_id: id.to_string() })
                .to_bytes(),
        )
        .expect("attach frame");
    for (i, filter) in filters.iter().enumerate() {
        frames_tx
            .send(
                Message::new(
                    2 + i as u64,
                    control.clone(),
                    id,
                    0,
                    Payload::Subscribe { filter: filter.clone() },
                )
                .to_bytes(),
            )
            .expect("subscribe frame");
    }
    let expected = 1 + filters.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while sink.delivered.load(Ordering::Relaxed) < expected {
        assert!(Instant::now() < deadline, "client {id} never finished its handshake");
        std::thread::sleep(Duration::from_millis(1));
    }
    (sink, frames_tx)
}

/// Stands up a fast-path loopback broker subscribed to `topic`,
/// optionally with the standard monitors attached, and blocks until
/// the subscription is routable.
#[allow(clippy::type_complexity)]
fn routable_broker(
    topic: &Topic,
    monitor: Option<&MonitorSet>,
    monitored_frames: bool,
    owner: &Credential,
) -> (Broker, Arc<SinkSender>, Vec<crossbeam::channel::Sender<Vec<u8>>>) {
    let cfg = BrokerConfig {
        advert_refresh: None,
        data_plane_cache: true,
        require_tokens: false,
        // Keep traced frames on the fast path: broker-side span
        // recording is not what this bench measures.
        telemetry: nb_telemetry::TelemetryConfig { enabled: false, ..Default::default() },
        ..BrokerConfig::default()
    };
    let broker = Broker::new("bench", system_clock(), cfg);
    if let Some(m) = monitor {
        broker.attach_monitor(m.clone());
    }
    let (sink, uplink) = attach_sink_client(&broker, "sub", std::slice::from_ref(topic));

    // Probe-publish (fresh id each attempt — exactly-once monitoring
    // is live) until the first copy lands behind the control acks.
    let acks = sink.delivered.load(Ordering::Relaxed);
    let mut probe = data_frame(PUBLISHER, topic.clone(), monitored_frames, owner);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut probe_id = u64::MAX;
    while sink.delivered.load(Ordering::Relaxed) <= acks {
        assert!(Instant::now() < deadline, "subscription never became routable");
        probe[1..9].copy_from_slice(&probe_id.to_be_bytes());
        probe_id -= 1;
        broker.ingest_client_frame(PUBLISHER, &mut probe);
        std::thread::sleep(Duration::from_millis(2));
    }
    (broker, sink, vec![uplink])
}

struct RunStats {
    msgs_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    delivered: u64,
}

/// Drives one configuration: a multi-threaded saturation phase for
/// throughput, then a single-threaded timed phase for latency. Each
/// publisher patches a fresh big-endian message id into its
/// pre-encoded frame so exactly-once tracking sees unique ids.
fn run_config(
    topic: &Topic,
    monitor: Option<&MonitorSet>,
    monitored_frames: bool,
    owner: &Credential,
    threads: usize,
    per_thread: u64,
    timed: u64,
) -> RunStats {
    let (broker, sink, _uplinks) = routable_broker(topic, monitor, monitored_frames, owner);
    let broker = Arc::new(broker);
    let delivered_start = sink.delivered.load(Ordering::Relaxed);

    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let broker = Arc::clone(&broker);
            let barrier = Arc::clone(&barrier);
            let topic = topic.clone();
            let owner = owner.clone();
            std::thread::spawn(move || {
                // Monitored frames publish as the topic's constrainer
                // (Publish-Only enforcement); plain frames use
                // per-thread identities.
                let id =
                    if monitored_frames { PUBLISHER.to_string() } else { format!("pub-{t}") };
                let mut frame = data_frame(&id, topic, monitored_frames, &owner);
                barrier.wait();
                for seq in 0..per_thread {
                    // Message id sits after the version byte (offset
                    // 1..9, big-endian) — patch it in place.
                    frame[1..9].copy_from_slice(&(t as u64 * per_thread + seq).to_be_bytes());
                    broker.ingest_client_frame(&id, &mut frame);
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for w in workers {
        w.join().expect("publisher thread");
    }
    let elapsed = t0.elapsed();
    let msgs = threads as u64 * per_thread;
    let msgs_per_sec = msgs as f64 / elapsed.as_secs_f64();

    let timed_id = if monitored_frames { PUBLISHER } else { "pub-timed" };
    let mut frame = data_frame(timed_id, topic.clone(), monitored_frames, owner);
    let mut lat_ns: Vec<u64> = Vec::with_capacity(timed as usize);
    for seq in 0..timed {
        frame[1..9].copy_from_slice(&(u64::MAX / 2 + seq).to_be_bytes());
        let t = Instant::now();
        broker.ingest_client_frame(timed_id, &mut frame);
        lat_ns.push(t.elapsed().as_nanos() as u64);
    }
    lat_ns.sort_unstable();
    let pct = |q: f64| lat_ns[((lat_ns.len() - 1) as f64 * q) as usize];

    let delivered = sink.delivered.load(Ordering::Relaxed) - delivered_start;
    assert_eq!(delivered, msgs + timed, "lost or duplicated deliveries on {topic}");

    RunStats {
        msgs_per_sec,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        delivered,
    }
}

fn json_section(s: &RunStats) -> String {
    format!(
        "{{\n    \"msgs_per_sec\": {:.0},\n    \"p50_route_ns\": {},\n    \"p99_route_ns\": {},\n    \"delivered\": {}\n  }}",
        s.msgs_per_sec, s.p50_ns, s.p99_ns, s.delivered
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let (per_thread, timed) = if quick { (50_000, 20_000) } else { (500_000, 200_000) };
    println!(
        "== monitor report: loopback broker, {threads} publishers x {per_thread} msgs ({}) ==",
        if quick { "quick" } else { "full" }
    );

    let (monitor_cred, owner) = credentials();
    let specs = nb_monitor::standard_properties(BrokerConfig::default().max_hops, true);
    let monitor = MonitorSet::new(specs, monitor_cred, 100);

    let off = run_config(&plain_topic(), None, false, &owner, threads, per_thread, timed);
    println!(
        "monitors off       : {:>12.0} msgs/sec   p50 {:>6} ns   p99 {:>6} ns",
        off.msgs_per_sec, off.p50_ns, off.p99_ns
    );
    let on = run_config(&plain_topic(), Some(&monitor), false, &owner, threads, per_thread, timed);
    println!(
        "monitors on        : {:>12.0} msgs/sec   p50 {:>6} ns   p99 {:>6} ns",
        on.msgs_per_sec, on.p50_ns, on.p99_ns
    );
    let events_before = monitor.metrics_snapshot().counter("monitor.events").unwrap_or(0);
    let hot = run_config(
        &monitored_topic(),
        Some(&monitor),
        true,
        &owner,
        threads,
        per_thread,
        timed,
    );
    println!(
        "monitored topic    : {:>12.0} msgs/sec   p50 {:>6} ns   p99 {:>6} ns",
        hot.msgs_per_sec, hot.p50_ns, hot.p99_ns
    );

    // Clean traffic: every frame checked, nothing flagged.
    let snap = monitor.metrics_snapshot();
    let events = snap.counter("monitor.events").unwrap_or(0) - events_before;
    assert!(
        events >= threads as u64 * per_thread + timed,
        "monitors missed events: {events}"
    );
    assert_eq!(monitor.violation_count(), 0, "{:?}", monitor.violations());

    // Per-event check overhead, two ways: the sampled in-monitor
    // timing, and the end-to-end throughput delta per message.
    let check = snap.histogram("monitor.check_ns").expect("check_ns sampled");
    let check_ns_mean = check.mean();
    let overhead_pct = (off.msgs_per_sec - on.msgs_per_sec) / off.msgs_per_sec * 100.0;
    let checked_overhead_ns = 1e9 / hot.msgs_per_sec - 1e9 / off.msgs_per_sec;
    println!(
        "prefilter overhead: {overhead_pct:.1}%   full-check overhead: {checked_overhead_ns:.0} ns/msg (sampled mean {check_ns_mean:.0} ns)"
    );

    // The acceptance bar: enabling monitors costs < 10% of the
    // fast-path msgs/sec on unmonitored traffic.
    assert!(
        on.msgs_per_sec >= off.msgs_per_sec * 0.9,
        "monitors cost {overhead_pct:.1}% of fast-path throughput (budget 10%)"
    );

    let json = format!(
        "{{\n  \"bench\": \"monitor_report\",\n  \"mode\": \"{}\",\n  \"threads\": {},\n  \"saturation_msgs_per_config\": {},\n  \"timed_msgs_per_config\": {},\n  \"monitors_off\": {},\n  \"monitors_on\": {},\n  \"monitored_topic\": {},\n  \"monitor_events\": {},\n  \"violations\": {},\n  \"prefilter_overhead_pct\": {:.2},\n  \"per_event_check_ns\": {:.0},\n  \"sampled_check_ns_mean\": {:.0}\n}}\n",
        if quick { "quick" } else { "full" },
        threads,
        threads as u64 * per_thread,
        timed,
        json_section(&off),
        json_section(&on),
        json_section(&hot),
        events,
        monitor.violation_count(),
        overhead_pct,
        checked_overhead_ns.max(0.0),
        check_ns_mean
    );
    std::fs::write("BENCH_monitor.json", &json).expect("write BENCH_monitor.json");
    println!("wrote BENCH_monitor.json ({} bytes)", json.len());
}
