//! **Chaos report** — measures time-to-reconverge through repeated
//! link outages on a supervised 3-broker chain (see
//! `docs/ARCHITECTURE.md`, "Fault tolerance").
//!
//! Stands up the chain with link supervision enabled — entity at
//! broker 0, tracker at broker 2 — then repeatedly severs the middle
//! link mid-trace, heals it, and measures how long the far tracker
//! takes to see fresh traces again. Prints per-cycle reconvergence
//! times and the supervised-link counters (repair cycles, frames
//! buffered / replayed / shed) from the merged metrics snapshot.
//!
//! Run with `--smoke` (CI) for fewer cycles with the same assertions:
//! every cycle reconverges inside the budget and the repair cycles are
//! visible in `broker.link.reconnects`.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_tracing::view::EntityStatus;
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_transport::supervisor::{LinkState, SupervisorConfig};
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;
use std::time::{Duration, Instant};

/// Per-cycle ceiling on reconvergence; generous against scheduler
/// noise — typical times are tens of milliseconds.
const RECONVERGE_BUDGET: Duration = Duration::from_secs(10);

fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cycles = if smoke { 2 } else { 5 };
    println!("== chaos report: supervised 3-broker chain, {cycles} outage cycles ==");

    let mut config = TracingConfig::for_tests();
    config.auto_tick = true;
    config.tick = Duration::from_millis(10);
    config.link_supervision = Some(SupervisorConfig::fast());
    let dep = Deployment::new(
        Topology::Chain(3),
        LinkConfig::instant(),
        system_clock(),
        config,
    )
    .expect("deployment");

    let entity = dep
        .traced_entity(
            0,
            "chaos-svc",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            true, // secured: outages must not corrupt the sealed flow
        )
        .expect("traced entity");
    let tracker = dep
        .tracker(
            2,
            "chaos-watcher",
            "chaos-svc",
            vec![TraceCategory::ChangeNotifications, TraceCategory::AllUpdates],
        )
        .expect("tracker");

    assert!(
        tracker.wait_for_status(EntityStatus::Available, Duration::from_secs(15)),
        "tracker never converged before the first fault"
    );

    // Counters are cumulative across cycles, so outage detection is
    // measured against a per-cycle baseline: either a fresh send
    // failure or a link visibly out of the Up state.
    let total_send_failures = |dep: &Deployment| -> u64 {
        dep.network
            .brokers
            .iter()
            .flat_map(|b| b.link_stats())
            .map(|s| s.send_failures)
            .sum()
    };
    let any_link_not_up = |dep: &Deployment| {
        dep.network
            .brokers
            .iter()
            .any(|b| b.link_stats().iter().any(|s| s.state != LinkState::Up))
    };
    let total_reconnects = |dep: &Deployment| -> u64 {
        dep.network
            .brokers
            .iter()
            .flat_map(|b| b.link_stats())
            .map(|s| s.reconnects)
            .sum()
    };

    println!("\n-- per-cycle time-to-reconverge --");
    let mut times = Vec::with_capacity(cycles);
    for cycle in 0..cycles {
        let before = tracker
            .view()
            .get("chaos-svc")
            .map(|r| r.traces_seen)
            .unwrap_or(0);
        let reconnects_before = total_reconnects(&dep);
        let failures_before = total_send_failures(&dep);

        assert!(dep.network.drop_link(1), "middle link must be droppable");
        assert!(
            wait_until(Duration::from_secs(10), || {
                total_send_failures(&dep) > failures_before || any_link_not_up(&dep)
            }),
            "cycle {cycle}: no supervisor observed the outage"
        );

        assert!(dep.network.restore_link(1));
        let healed_at = Instant::now();
        let reconverged = wait_until(RECONVERGE_BUDGET, || {
            tracker.view().get("chaos-svc").is_some_and(|r| {
                r.status == EntityStatus::Available && r.traces_seen >= before + 2
            })
        });
        let elapsed = healed_at.elapsed();
        assert!(
            reconverged,
            "cycle {cycle}: tracker did not reconverge within {RECONVERGE_BUDGET:?}"
        );
        // The repair cycle itself must also have completed.
        assert!(
            wait_until(Duration::from_secs(10), || {
                total_reconnects(&dep) > reconnects_before
            }),
            "cycle {cycle}: no supervised link completed a repair cycle"
        );
        println!("cycle {cycle}: reconverged in {:>8.2} ms", elapsed.as_secs_f64() * 1e3);
        times.push(elapsed);
    }

    let mean_ms =
        times.iter().map(Duration::as_secs_f64).sum::<f64>() / times.len() as f64 * 1e3;
    let max_ms = times
        .iter()
        .map(Duration::as_secs_f64)
        .fold(0.0f64, f64::max)
        * 1e3;
    println!("mean {mean_ms:.2} ms, max {max_ms:.2} ms over {cycles} cycles");

    println!("\n-- supervised-link counters --");
    let snap = dep.metrics_snapshot();
    let mut reconnects = 0u64;
    for broker in &dep.network.brokers {
        let id = broker.id();
        let c = |name: &str| snap.counter(&format!("{id}.{name}")).unwrap_or(0);
        reconnects += c("broker.link.reconnects");
        println!(
            "{id}: supervised={} reconnects={} state_changes={} down_events={}",
            snap.gauge(&format!("{id}.broker.links.supervised")).unwrap_or(0),
            c("broker.link.reconnects"),
            c("broker.link.state_changes"),
            c("broker.link.down_events"),
        );
    }
    for name in [
        "transport.link.reconnects",
        "transport.link.frames.buffered",
        "transport.link.frames.replayed",
        "transport.link.frames.shed",
        "transport.sim.fault.rejected",
    ] {
        println!("{name} {}", snap.counter(name).unwrap_or(0));
    }

    // Keep the report honest — these also back the CI smoke run.
    assert!(reconnects >= cycles as u64, "repair cycles missing from metrics");
    assert!(entity.pings_answered() > 0, "entity stopped answering pings");
    println!("\nchaos report OK: {cycles} cycles, mean reconverge {mean_ms:.2} ms");
}
