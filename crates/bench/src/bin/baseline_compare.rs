//! **§1 ablation** — message complexity of the naive all-to-all
//! heartbeat scheme vs the interest-gated tracing scheme, plus the
//! gossip baseline from the related-work section.
//!
//! The paper's motivating claim: the naive scheme costs N×(N−1)
//! messages per period and "the limits of this approach become
//! apparent since every entity within the system would be inundated
//! with messages". The tracing scheme issues traces *only* to
//! interested trackers and stays silent when there is no interest.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_baseline::{GossipConfig, GossipFailureDetector, NaiveConfig, NaiveHeartbeatSystem};
use nb_bench::sample_count;
use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;
use std::time::Duration;

fn main() {
    let rounds = sample_count(10) as u64;

    println!("== Baseline comparison: message complexity ==\n");
    println!("Naive all-to-all heartbeats (paper §1: N×(N−1) per period):");
    println!("{:<12} {:>18} {:>22}", "N entities", "msgs/period", format!("msgs over {rounds} periods"));
    for n in [10usize, 30, 50, 100] {
        let mut sys = NaiveHeartbeatSystem::new(n, NaiveConfig::default());
        for _ in 0..rounds {
            sys.run_round();
        }
        println!(
            "{:<12} {:>18} {:>22}",
            n,
            sys.messages_per_round(),
            sys.messages_sent()
        );
    }

    println!("\nGossip failure detection (related work §7; fanout 2):");
    println!(
        "{:<12} {:>18} {:>26}",
        "N members", "msgs/round", "rounds to majority suspicion"
    );
    for n in [10usize, 30, 50, 100] {
        let mut g = GossipFailureDetector::new(n, GossipConfig::default());
        for _ in 0..rounds {
            g.run_round();
        }
        let per_round = g.messages_sent() / g.round();
        g.kill(n / 2);
        let detect = g.rounds_until_majority_suspicion(n / 2, 200);
        println!("{:<12} {:>18} {:>26}", n, per_round, detect);
    }

    // The tracing scheme: broker message counts with vs without
    // tracker interest (the §3.5 gate).
    println!("\nTracing scheme (1 entity, heartbeats @100ms, 3 s window):");
    for interested in [false, true] {
        let mut config = TracingConfig::default();
        config.rsa_bits = 512; // speed; message counting only
        config.ping_interval = Duration::from_millis(100);
        let dep = Deployment::new(
            Topology::Chain(2),
            LinkConfig::instant(),
            system_clock(),
            config,
        )
        .expect("deployment");
        let _entity = dep
            .traced_entity(
                0,
                "cmp-entity",
                DiscoveryRestrictions::Open,
                SigningMode::RsaSign,
                false,
            )
            .expect("entity");
        let _tracker = interested.then(|| {
            dep.tracker(
                1,
                "cmp-tracker",
                "cmp-entity",
                vec![TraceCategory::AllUpdates, TraceCategory::ChangeNotifications],
            )
            .expect("tracker")
        });
        std::thread::sleep(Duration::from_secs(3));
        let stats = dep.engine(0).stats();
        println!(
            "  interest={:<5} pings={} traces_published={} traces_gated={}",
            interested, stats.pings_sent, stats.traces_published, stats.traces_gated
        );
    }
    println!("\nShape check: naive grows quadratically with N; gossip linear;");
    println!("the tracing scheme publishes ZERO heartbeat traces when nobody is interested.");
}
