//! **Session-key report** — measures what the session layer buys the
//! per-trace hot path and writes `BENCH_session.json` (see
//! `docs/PERFORMANCE.md`).
//!
//! The contention workload mirrors Table 4's setup: one hosting broker,
//! N co-resident traced entities (one publisher thread each, all
//! per-trace security work contending on one host), every publication
//! delivered to a subscribed sink and inspected by the standard monitor
//! battery with the topic owners' keys registered. Three auth regimes
//! are driven back to back on identically configured brokers:
//!
//! * **rsa_signed** — every trace is RSA-signed at issue and carries an
//!   authorization token that the broker and the monitor each
//!   RSA-verify: the paper's §6.3 per-trace RSA regime the session
//!   layer exists to replace;
//! * **rsa_token** — traces carry only the (pre-issued) token, still
//!   RSA-verified per frame at the broker and the monitor: the
//!   pre-session data plane of this codebase;
//! * **session** — traces carry a `SessionTag` and nothing else: one
//!   HMAC-SHA256 at issue, one keyring HMAC at admission, token checks
//!   skipped end to end.
//!
//! Delivery counts are asserted exact, the clean runs must leave the
//! monitors silent, every session frame must authenticate through the
//! keyring (zero fallbacks), and the session regime must beat the
//! per-trace RSA regime by ≥10× — all asserted inside the binary so
//! the CI smoke run fails loudly.
//!
//! A final segment guards the unrelated traffic: the cached data-plane
//! fast path is saturated with plain frames against an empty keyring
//! and against a keyring holding every entity's key, and the delta must
//! stay under 5% — the session gate is one flag resolved at route-entry
//! fill time, not a per-frame tax.
//!
//! Run with `--quick` (CI) for a shorter drive with the same
//! assertions and JSON shape.

use nb_broker::{Broker, BrokerConfig};
use nb_crypto::cert::{CertificateAuthority, Credential, Validity};
use nb_crypto::{SessionKey, Uuid};
use nb_monitor::MonitorSet;
use nb_transport::clock::{system_clock, SharedClock};
use nb_transport::endpoint::{Endpoint, FrameSender};
use nb_wire::codec::Encode;
use nb_wire::token::{AuthorizationToken, Rights};
use nb_wire::trace::{topics, TraceCategory, TraceEvent, TraceKind};
use nb_wire::{Message, Payload, SessionTag, Topic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Broker-side sender for the subscriber endpoint: swallows frames
/// after counting them, so the bench measures the trace path, not a
/// consumer.
#[derive(Default)]
struct SinkSender {
    delivered: AtomicU64,
}

impl FrameSender for SinkSender {
    fn send_frame(&self, _frame: &[u8]) -> nb_transport::Result<()> {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// How each published trace authenticates itself.
#[derive(Clone, Copy, PartialEq)]
enum Auth {
    /// RSA signature on the message + RSA-verified token (§6.3 regime).
    RsaSigned,
    /// RSA-verified token only (the pre-session data plane).
    RsaToken,
    /// Session tag only: HMAC at issue, keyring HMAC at admission.
    Session,
}

impl Auth {
    fn label(self) -> &'static str {
        match self {
            Auth::RsaSigned => "rsa_signed (sign+verify)",
            Auth::RsaToken => "rsa_token  (verify only)",
            Auth::Session => "session    (HMAC tag)   ",
        }
    }
}

/// One co-resident traced entity: its topic, 1024-bit credential, the
/// pre-issued publication token and its negotiated session key.
struct EntityCtx {
    name: String,
    pub_topic: Topic,
    credential: Credential,
    token: AuthorizationToken,
    key: SessionKey,
}

/// Mints the shared fixtures once: a 1024-bit CA (EXPERIMENTS.md's
/// measured key size), one credential + trace topic + token + session
/// key per entity, and the monitor credential.
fn mint_entities(count: usize, now: u64) -> (Vec<EntityCtx>, Credential) {
    let mut rng = StdRng::seed_from_u64(0x5e5510);
    let validity = Validity::starting_now(0, u64::MAX / 2);
    let mut ca =
        CertificateAuthority::new("bench-ca", 1024, validity, &mut rng).expect("bench CA");
    let monitor_cred = ca.issue("Monitor", validity, &mut rng).expect("monitor cred");
    let entities = (0..count)
        .map(|i| {
            let name = format!("entity-{i}");
            let credential = ca.issue(&name, validity, &mut rng).expect("entity cred");
            let trace_topic = Uuid::new_v4(&mut rng);
            // Issued once per entity — token issue is the amortized
            // cost in *both* RSA regimes; what differs per message is
            // the verification (and, in rsa_signed, the signature).
            let token = AuthorizationToken::issue(
                &credential,
                trace_topic,
                credential.certificate.public_key.clone(),
                Rights::Publish,
                0,
                u64::MAX / 2,
            )
            .expect("publication token");
            let key = SessionKey::mint(trace_topic, now, u64::MAX / 4, u64::MAX / 2, &mut rng);
            EntityCtx {
                name,
                pub_topic: topics::publication(&trace_topic, TraceCategory::AllUpdates),
                credential,
                token,
                key,
            }
        })
        .collect();
    (entities, monitor_cred)
}

/// Builds one authenticated trace publication for `entity` — the
/// per-message work a publisher pays under the given regime.
fn trace_message(broker: &Broker, entity: &EntityCtx, auth: Auth, seq: u64, now: u64) -> Message {
    let event = TraceEvent {
        entity_id: entity.name.clone(),
        trace_topic: entity.key.topic,
        seq,
        timestamp_ms: now,
        kind: TraceKind::AllsWell,
    };
    let mut msg = Message::new(
        broker.next_message_id(),
        entity.pub_topic.clone(),
        broker.id().to_string(),
        now,
        Payload::Trace { event },
    );
    match auth {
        Auth::RsaSigned => {
            msg = msg.with_token(entity.token.clone());
            msg.sign(&entity.credential).expect("per-trace RSA sign");
        }
        Auth::RsaToken => {
            msg = msg.with_token(entity.token.clone());
        }
        Auth::Session => {
            let signable = msg.signable_bytes();
            let mac = entity.key.mac(seq, &[&signable]);
            msg = msg.with_session(SessionTag {
                key_id: entity.key.key_id,
                seq,
                mac,
            });
        }
    }
    msg
}

/// Attaches one sink-backed client and registers its filters, waiting
/// for every control ack. Returns the sink and the client's uplink —
/// dropping the uplink reads as a link failure and detaches the
/// client, so callers must hold it.
fn attach_sink_client(
    broker: &Broker,
    id: &str,
    filters: &[Topic],
) -> (Arc<SinkSender>, crossbeam::channel::Sender<Vec<u8>>) {
    let sink = Arc::new(SinkSender::default());
    let (frames_tx, frames_rx) = crossbeam::channel::unbounded::<Vec<u8>>();
    broker.attach_client(Endpoint::from_parts(
        Arc::clone(&sink) as Arc<dyn FrameSender>,
        frames_rx,
    ));
    let control = Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap();
    frames_tx
        .send(
            Message::new(1, control.clone(), id, 0, Payload::Attach { client_id: id.to_string() })
                .to_bytes(),
        )
        .expect("attach frame");
    for (i, filter) in filters.iter().enumerate() {
        frames_tx
            .send(
                Message::new(
                    2 + i as u64,
                    control.clone(),
                    id,
                    0,
                    Payload::Subscribe { filter: filter.clone() },
                )
                .to_bytes(),
            )
            .expect("subscribe frame");
    }
    let expected = 1 + filters.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while sink.delivered.load(Ordering::Relaxed) < expected {
        assert!(Instant::now() < deadline, "client {id} never finished its handshake");
        std::thread::sleep(Duration::from_millis(1));
    }
    (sink, frames_tx)
}

struct RunStats {
    msgs_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    delivered: u64,
}

/// Per-run counters the report surfaces beyond the routing stats.
#[derive(Default)]
struct SessionCounters {
    verified: u64,
    fallbacks: u64,
    monitor_events: u64,
    violations: u64,
}

/// Drives one auth regime on a fresh hosting broker: the standard
/// monitors attached with every topic owner's key registered (so both
/// RSA regimes pay real signature verification per frame), a
/// multi-threaded saturation phase (one thread per co-resident
/// entity), then a single-threaded timed phase for latency.
fn run_trace_config(
    auth: Auth,
    entities: &Arc<Vec<EntityCtx>>,
    monitor_cred: &Credential,
    per_thread: u64,
    timed: u64,
) -> (RunStats, SessionCounters) {
    let cfg = BrokerConfig {
        advert_refresh: None,
        data_plane_cache: true,
        // Keep trace publications off the span recorder: broker-side
        // telemetry is not what this bench measures.
        telemetry: nb_telemetry::TelemetryConfig { enabled: false, ..Default::default() },
        ..BrokerConfig::default()
    };
    let clock: SharedClock = system_clock();
    let broker = Arc::new(Broker::new("host", clock.clone(), cfg));
    // The hosting-broker posture: every topic owner registered (full
    // RSA token verification, not just the window check), the standard
    // monitor battery attached, and — in the session regime — every
    // entity's key installed in the keyring.
    for e in entities.iter() {
        broker.register_topic_owner(e.key.topic, e.credential.certificate.public_key.clone());
        if auth == Auth::Session {
            broker.install_session_key(e.key.clone());
        }
    }
    let specs = nb_monitor::standard_properties(BrokerConfig::default().max_hops, true);
    let monitor = MonitorSet::new(specs, monitor_cred.clone(), 100);
    broker.attach_monitor(monitor.clone());

    let filters: Vec<Topic> = entities.iter().map(|e| e.pub_topic.clone()).collect();
    let (sink, _uplink) = attach_sink_client(&broker, "console", &filters);

    // Prove every subscription is live: one admissible probe per
    // entity, delivered before the clock starts.
    let mut probe_seq = 1_000_000u64;
    for e in entities.iter() {
        let before = sink.delivered.load(Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_secs(10);
        while sink.delivered.load(Ordering::Relaxed) == before {
            assert!(Instant::now() < deadline, "{} never became routable", e.name);
            probe_seq += 1;
            broker.publish_internal(trace_message(&broker, e, auth, probe_seq, clock.now_ms()));
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let delivered_start = sink.delivered.load(Ordering::Relaxed);
    let counters_start = {
        let snap = broker.metrics_snapshot();
        (
            snap.counter("broker.session.verified").unwrap_or(0),
            snap.counter("broker.session.fallback").unwrap_or(0),
        )
    };
    let events_start = monitor.metrics_snapshot().counter("monitor.events").unwrap_or(0);

    // Saturation phase: every thread is one co-resident traced entity
    // issuing authenticated traces as fast as the regime allows.
    let threads = entities.len();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let broker = Arc::clone(&broker);
            let barrier = Arc::clone(&barrier);
            let entities = Arc::clone(entities);
            let clock = clock.clone();
            std::thread::spawn(move || {
                let e = &entities[t];
                barrier.wait();
                for seq in 1..=per_thread {
                    let msg = trace_message(&broker, e, auth, seq, clock.now_ms());
                    broker.publish_internal(msg);
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for w in workers {
        w.join().expect("publisher thread");
    }
    let elapsed = t0.elapsed();
    let msgs = threads as u64 * per_thread;
    let msgs_per_sec = msgs as f64 / elapsed.as_secs_f64();

    // Latency phase: one entity, one thread, per-message timing of the
    // full issue + admission + delivery path.
    let e = &entities[0];
    let mut lat_ns: Vec<u64> = Vec::with_capacity(timed as usize);
    for seq in 0..timed {
        let t = Instant::now();
        let msg = trace_message(&broker, e, auth, per_thread + 1 + seq, clock.now_ms());
        broker.publish_internal(msg);
        lat_ns.push(t.elapsed().as_nanos() as u64);
    }
    lat_ns.sort_unstable();
    let pct = |q: f64| lat_ns[((lat_ns.len() - 1) as f64 * q) as usize];

    let delivered = sink.delivered.load(Ordering::Relaxed) - delivered_start;
    assert_eq!(delivered, msgs + timed, "lost or duplicated deliveries ({})", auth.label());

    let snap = broker.metrics_snapshot();
    let counters = SessionCounters {
        verified: snap.counter("broker.session.verified").unwrap_or(0) - counters_start.0,
        fallbacks: snap.counter("broker.session.fallback").unwrap_or(0) - counters_start.1,
        monitor_events: monitor.metrics_snapshot().counter("monitor.events").unwrap_or(0)
            - events_start,
        violations: monitor.violation_count() as u64,
    };
    (
        RunStats { msgs_per_sec, p50_ns: pct(0.50), p99_ns: pct(0.99), delivered },
        counters,
    )
}

/// Saturates the cached data-plane fast path with plain frames — the
/// traffic the session layer must not tax. `keys` installs every
/// entity key before the drive (the keyring-populated posture).
fn run_fastpath(
    keys: Option<&[SessionKey]>,
    threads: usize,
    per_thread: u64,
    timed: u64,
) -> RunStats {
    let cfg = BrokerConfig {
        advert_refresh: None,
        data_plane_cache: true,
        ..BrokerConfig::default()
    };
    let broker = Broker::new("fast", system_clock(), cfg);
    if let Some(keys) = keys {
        for k in keys {
            broker.install_session_key(k.clone());
        }
    }
    let topic = Topic::parse("/Bench/Session/Fastpath").unwrap();
    let (sink, _uplink) = attach_sink_client(&broker, "sub", std::slice::from_ref(&topic));
    let frame_for = |sender: &str| {
        Message::new(7, topic.clone(), sender, 0, Payload::Ping { seq: 1, sent_at_ms: 0 })
            .to_bytes()
    };

    // Probe-publish until the first copy lands behind the control acks.
    let acks = sink.delivered.load(Ordering::Relaxed);
    let mut probe = frame_for("probe");
    let deadline = Instant::now() + Duration::from_secs(10);
    while sink.delivered.load(Ordering::Relaxed) <= acks {
        assert!(Instant::now() < deadline, "subscription never became routable");
        broker.ingest_client_frame("probe", &mut probe);
        std::thread::sleep(Duration::from_millis(2));
    }
    let delivered_start = sink.delivered.load(Ordering::Relaxed);

    let broker = Arc::new(broker);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let broker = Arc::clone(&broker);
            let barrier = Arc::clone(&barrier);
            let mut frame = frame_for(&format!("pub-{t}"));
            std::thread::spawn(move || {
                let id = format!("pub-{t}");
                barrier.wait();
                for _ in 0..per_thread {
                    broker.ingest_client_frame(&id, &mut frame);
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for w in workers {
        w.join().expect("publisher thread");
    }
    let elapsed = t0.elapsed();
    let msgs = threads as u64 * per_thread;

    let mut frame = frame_for("pub-timed");
    let mut lat_ns: Vec<u64> = Vec::with_capacity(timed as usize);
    for _ in 0..timed {
        let t = Instant::now();
        broker.ingest_client_frame("pub-timed", &mut frame);
        lat_ns.push(t.elapsed().as_nanos() as u64);
    }
    lat_ns.sort_unstable();
    let pct = |q: f64| lat_ns[((lat_ns.len() - 1) as f64 * q) as usize];

    let delivered = sink.delivered.load(Ordering::Relaxed) - delivered_start;
    assert_eq!(delivered, msgs + timed, "lost or duplicated fast-path deliveries");
    let fastpath = broker.metrics_snapshot().counter("broker.route.fastpath").unwrap_or(0);
    assert!(fastpath >= msgs, "plain frames left the cached fast path");

    RunStats {
        msgs_per_sec: msgs as f64 / elapsed.as_secs_f64(),
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        delivered,
    }
}

fn json_section(s: &RunStats) -> String {
    format!(
        "{{\n    \"msgs_per_sec\": {:.0},\n    \"p50_route_ns\": {},\n    \"p99_route_ns\": {},\n    \"delivered\": {}\n  }}",
        s.msgs_per_sec, s.p50_ns, s.p99_ns, s.delivered
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // At least four co-resident entities even on small hosts — the
    // contention (Table 4's co-residency) is the workload, not an
    // artifact of core count.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().clamp(4, 8))
        .unwrap_or(4);
    // Per-regime message counts scale with the regime's expected rate
    // so every phase runs long enough to measure without the RSA
    // regimes dominating wall-clock (an RSA-1024 sign is ~0.5 ms).
    let (signed_n, signed_t, token_n, token_t, session_n, session_t, fast_n, fast_t) = if quick {
        (300u64, 100u64, 3_000u64, 1_000u64, 30_000u64, 10_000u64, 50_000u64, 20_000u64)
    } else {
        (2_000, 300, 20_000, 5_000, 200_000, 50_000, 300_000, 100_000)
    };
    println!(
        "== session report: 1 hosting broker, {threads} co-resident entities ({}) ==",
        if quick { "quick" } else { "full" }
    );

    let clock: SharedClock = system_clock();
    let (entities, monitor_cred) = mint_entities(threads, clock.now_ms());
    let entities = Arc::new(entities);

    let (signed, signed_c) =
        run_trace_config(Auth::RsaSigned, &entities, &monitor_cred, signed_n, signed_t);
    println!(
        "{}: {:>12.0} msgs/sec   p50 {:>9} ns   p99 {:>9} ns",
        Auth::RsaSigned.label(),
        signed.msgs_per_sec,
        signed.p50_ns,
        signed.p99_ns
    );
    let (token, token_c) =
        run_trace_config(Auth::RsaToken, &entities, &monitor_cred, token_n, token_t);
    println!(
        "{}: {:>12.0} msgs/sec   p50 {:>9} ns   p99 {:>9} ns",
        Auth::RsaToken.label(),
        token.msgs_per_sec,
        token.p50_ns,
        token.p99_ns
    );
    let (session, session_c) =
        run_trace_config(Auth::Session, &entities, &monitor_cred, session_n, session_t);
    println!(
        "{}: {:>12.0} msgs/sec   p50 {:>9} ns   p99 {:>9} ns",
        Auth::Session.label(),
        session.msgs_per_sec,
        session.p50_ns,
        session.p99_ns
    );

    // Clean runs: every monitor stayed silent, every session frame
    // authenticated through the keyring with zero RSA fallbacks.
    let violations = signed_c.violations + token_c.violations + session_c.violations;
    assert_eq!(violations, 0, "clean traffic must leave the monitors silent");
    let monitor_events = signed_c.monitor_events + token_c.monitor_events + session_c.monitor_events;
    assert!(monitor_events > 0, "monitors never saw the traffic");
    assert!(
        session_c.verified >= threads as u64 * session_n + session_t,
        "session frames bypassed the keyring: {} verified",
        session_c.verified
    );
    assert_eq!(session_c.fallbacks, 0, "session frames fell back to RSA");
    assert_eq!(signed_c.verified, 0, "RSA frames must not consult the keyring");

    let speedup_signed = session.msgs_per_sec / signed.msgs_per_sec;
    let speedup_token = session.msgs_per_sec / token.msgs_per_sec;
    println!(
        "speedup: {speedup_signed:.1}x vs per-trace RSA sign+verify, {speedup_token:.1}x vs token verify"
    );
    // The acceptance bar: ≥10× trace-issue throughput over the
    // per-trace RSA regime on the contention workload.
    assert!(
        speedup_signed >= 10.0,
        "session regime is only {speedup_signed:.1}x over per-trace RSA (bar: 10x)"
    );
    assert!(
        speedup_token > 1.0,
        "session regime is slower than the token path ({speedup_token:.2}x)"
    );

    // Fast-path guard: installing session keys must not tax unrelated
    // traffic — the gate is resolved at route-entry fill time.
    let keys: Vec<SessionKey> = entities.iter().map(|e| e.key.clone()).collect();
    let fast_none = run_fastpath(None, threads, fast_n, fast_t);
    let fast_keys = run_fastpath(Some(&keys), threads, fast_n, fast_t);
    let overhead_pct =
        (fast_none.msgs_per_sec - fast_keys.msgs_per_sec) / fast_none.msgs_per_sec * 100.0;
    println!(
        "fastpath: {:>12.0} msgs/sec (no keys)  {:>12.0} msgs/sec (keys registered)  overhead {overhead_pct:.1}%",
        fast_none.msgs_per_sec, fast_keys.msgs_per_sec
    );
    assert!(
        overhead_pct < 5.0,
        "session gate costs {overhead_pct:.1}% of fast-path throughput (budget 5%)"
    );

    let json = format!(
        "{{\n  \"bench\": \"session_report\",\n  \"mode\": \"{}\",\n  \"threads\": {},\n  \"entities\": {},\n  \"rsa_signed\": {},\n  \"rsa_token\": {},\n  \"session\": {},\n  \"fastpath_no_keys\": {},\n  \"fastpath_keys\": {},\n  \"session_verified\": {},\n  \"session_fallbacks\": {},\n  \"monitor_events\": {},\n  \"violations\": {},\n  \"speedup_vs_rsa_signed\": {:.2},\n  \"speedup_vs_rsa_token\": {:.2},\n  \"session_fastpath_overhead_pct\": {:.2}\n}}\n",
        if quick { "quick" } else { "full" },
        threads,
        threads,
        json_section(&signed),
        json_section(&token),
        json_section(&session),
        json_section(&fast_none),
        json_section(&fast_keys),
        session_c.verified,
        session_c.fallbacks,
        monitor_events,
        violations,
        speedup_signed,
        speedup_token,
        overhead_pct
    );
    std::fs::write("BENCH_session.json", &json).expect("write BENCH_session.json");
    println!("wrote BENCH_session.json ({} bytes)", json.len());
}
