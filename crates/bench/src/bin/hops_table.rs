//! **Table 3 / Figure 2** — trace routing overhead for different hop
//! counts, per transport, with authorization only vs authorization +
//! security.
//!
//! Topology mirrors the paper's Figure 1: a broker chain with the
//! traced entity attached at one end and the measuring tracker at the
//! other, both in this process (no clock-synchronization issues). The
//! simulated medium models the paper's 100 Mbps LAN with 1–2 ms
//! per-hop broker latency; real TCP and UDP run over loopback for the
//! transport-ordering comparison.
//!
//! Expected shape (paper): latency grows roughly linearly with hops;
//! UDP < TCP; authorization+security costs more than authorization
//! only by about the symmetric-crypto delta.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_bench::{measure_trace_latencies, print_header, print_row, sample_count, wait_interest, Stats};
use nb_broker::network::Medium;
use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;

fn run_point(medium: Medium, hops: usize, secured: bool, samples: usize) -> Option<Stats> {
    let mut config = TracingConfig::default();
    config.rsa_bits = 1024; // the paper's configuration
    config.ping_interval = std::time::Duration::from_millis(500);
    let dep = Deployment::over(Topology::Chain(hops), medium, system_clock(), config).ok()?;
    let entity = dep
        .traced_entity(
            0,
            "bench-entity",
            DiscoveryRestrictions::Open,
            SigningMode::RsaSign,
            secured,
        )
        .ok()?;
    let tracker = dep
        .tracker(
            hops - 1,
            "measuring-tracker",
            "bench-entity",
            vec![TraceCategory::Load, TraceCategory::ChangeNotifications],
        )
        .ok()?;
    if !wait_interest(&dep, 0, "bench-entity", 1) {
        return None;
    }
    if secured {
        // The trace key must be in place before encrypted loads decode.
        nb_bench::wait_trace_key(&tracker, std::time::Duration::from_secs(20))?;
    }
    let latencies = measure_trace_latencies(&entity, &tracker, samples, 3);
    if latencies.is_empty() {
        return None;
    }
    Some(Stats::from_samples(&latencies))
}

fn main() {
    let samples = sample_count(50);
    println!("== Table 3 / Figure 2: trace routing overhead vs hops ==");
    println!("(all values milliseconds; {samples} samples per point)");

    let media: [(&str, Medium); 3] = [
        ("SIM 1.5ms/hop", Medium::Sim(LinkConfig::default())),
        ("TCP loopback", Medium::Tcp),
        ("UDP loopback", Medium::Udp),
    ];
    for (medium_name, medium) in media {
        for secured in [false, true] {
            let mode = if secured {
                "Authorization & Security"
            } else {
                "Authorization Only"
            };
            print_header(
                &format!("Trace Routing Overhead ({medium_name}) — {mode}"),
                "ms",
            );
            for hops in 2..=6 {
                match run_point(medium, hops, secured, samples) {
                    Some(stats) => print_row(&format!("{hops} hops"), &stats),
                    None => println!("{hops} hops: MEASUREMENT FAILED"),
                }
            }
        }
    }
    println!("\nFigure 2 series = the four (transport, mode) curves above.");
    // Deployments are torn down per point; the process-wide registry
    // keeps the crypto/token/transport totals for the whole run.
    nb_bench::print_metrics_epilogue(
        "process-wide totals across all points",
        &nb_metrics::global().snapshot(),
    );
}
