//! **Figure 5** — reduction of signing costs (§6.3).
//!
//! The optimization replaces per-message RSA signatures on the
//! entity→broker path with symmetric authentication under a shared
//! session key, "since the encryption/decryption costs are cheaper
//! than the corresponding signing/verification cost". We measure the
//! end-to-end trace time per hop count in both modes.
//!
//! Expected shape (paper): the symmetric mode is strictly cheaper at
//! every hop count; the gap is the per-message RSA cost.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use nb_bench::{measure_trace_latencies, print_header, print_row, sample_count, wait_interest, Stats};
use nb_tracing::config::{SigningMode, TracingConfig};
use nb_tracing::harness::{Deployment, Topology};
use nb_transport::clock::system_clock;
use nb_transport::sim::LinkConfig;
use nb_wire::payload::DiscoveryRestrictions;
use nb_wire::trace::TraceCategory;

fn run_point(hops: usize, mode: SigningMode, samples: usize) -> Option<Stats> {
    let mut config = TracingConfig::default();
    config.rsa_bits = 1024;
    let dep = Deployment::new(
        Topology::Chain(hops),
        LinkConfig::default(),
        system_clock(),
        config,
    )
    .ok()?;
    let entity = dep
        .traced_entity(
            0,
            "opt-entity",
            DiscoveryRestrictions::Open,
            mode,
            false,
        )
        .ok()?;
    let tracker = dep
        .tracker(
            hops - 1,
            "opt-tracker",
            "opt-entity",
            vec![TraceCategory::Load, TraceCategory::ChangeNotifications],
        )
        .ok()?;
    if !wait_interest(&dep, 0, "opt-entity", 1) {
        return None;
    }
    let latencies = measure_trace_latencies(&entity, &tracker, samples, 3);
    if latencies.is_empty() {
        return None;
    }
    Some(Stats::from_samples(&latencies))
}

fn main() {
    let samples = sample_count(50);
    println!("== Figure 5: reduction of signing costs (§6.3) ==");
    println!("(entity→broker authentication: RSA signature vs shared-key HMAC; {samples} samples per point)");

    for (label, mode) in [
        ("Per-message RSA signing (base scheme)", SigningMode::RsaSign),
        ("Symmetric-key authentication (optimized)", SigningMode::SymmetricKey),
    ] {
        print_header(label, "ms");
        for hops in 2..=6 {
            match run_point(hops, mode, samples) {
                Some(stats) => print_row(&format!("{hops} hops"), &stats),
                None => println!("{hops} hops: MEASUREMENT FAILED"),
            }
        }
    }
}
