//! **Telemetry overhead report** — measures what the cluster
//! telemetry plane costs the broker fast path and writes
//! `BENCH_obs.json` (see `docs/OBSERVABILITY.md`).
//!
//! Two configurations of the same loopback broker are driven back to
//! back with the route cache on:
//!
//! * **telemetry_off** — no publisher attached: the bare fast-path
//!   baseline;
//! * **telemetry_on** — the broker's own `TelemetryPublisher` pumping
//!   signed frames every 100 ms onto the constrained Obs topic, with a
//!   `ClusterAggregator` subscribed on the same broker ingesting them
//!   live.
//!
//! Each configuration runs three times and reports its best
//! saturation throughput (the bound is tight, so per-run scheduler
//! noise must not decide it). The acceptance bar — asserted inside the
//! binary so the CI smoke run fails loudly — is that telemetry-on
//! costs **less than 2%** of the fast-path msgs/sec. The report also
//! proves the plane worked: frames were accepted, the per-node totals
//! carry the broker families, and both expositions render. Run with
//! `--quick` (CI) for a shorter drive with the same assertions and
//! JSON shape.

use nb_broker::{Broker, BrokerConfig};
use nb_crypto::cert::{CertificateAuthority, Credential, Validity};
use nb_obs::{
    json_export, prometheus_text, telemetry_topic, AggregatorConfig, ClusterAggregator,
    PublisherConfig,
};
use nb_transport::clock::system_clock;
use nb_wire::codec::Encode;
use nb_transport::endpoint::{Endpoint, FrameSender};
use nb_wire::{Message, Payload, Topic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Broker-side sender for the subscriber endpoint: swallows frames
/// after counting them, so the bench measures routing, not a consumer.
#[derive(Default)]
struct SinkSender {
    delivered: AtomicU64,
}

impl FrameSender for SinkSender {
    fn send_frame(&self, _frame: &[u8]) -> nb_transport::Result<()> {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// The hot data topic (unrelated to the Obs family).
fn bench_topic() -> Topic {
    Topic::parse("/Bench/Obs/Loopback").unwrap()
}

/// The `Obs` credential the publisher signs frames with.
fn obs_credential() -> Credential {
    let mut rng = StdRng::seed_from_u64(0x0b5);
    let validity = Validity::starting_now(0, u64::MAX / 2);
    let mut ca =
        CertificateAuthority::new("bench-ca", 512, validity, &mut rng).expect("bench CA");
    ca.issue("Obs", validity, &mut rng).expect("obs cred")
}

/// Pre-encodes one data frame for the bench topic.
fn data_frame(sender: &str) -> Vec<u8> {
    Message::new(10, bench_topic(), sender, 0, Payload::Ping { seq: 1, sent_at_ms: 0 }).to_bytes()
}

/// Attaches one sink-backed client and registers its filters, waiting
/// for every control ack. Returns the sink and the client's uplink —
/// dropping the uplink reads as a link failure and detaches the
/// client, so callers must hold it.
fn attach_sink_client(
    broker: &Broker,
    id: &str,
    filters: &[Topic],
) -> (Arc<SinkSender>, crossbeam::channel::Sender<Vec<u8>>) {
    let sink = Arc::new(SinkSender::default());
    let (frames_tx, frames_rx) = crossbeam::channel::unbounded::<Vec<u8>>();
    broker.attach_client(Endpoint::from_parts(
        Arc::clone(&sink) as Arc<dyn FrameSender>,
        frames_rx,
    ));
    let control = Topic::parse("/Constrained/RealTime/Broker/PublishSubscribe/Control").unwrap();
    frames_tx
        .send(
            Message::new(1, control.clone(), id, 0, Payload::Attach { client_id: id.to_string() })
                .to_bytes(),
        )
        .expect("attach frame");
    for (i, filter) in filters.iter().enumerate() {
        frames_tx
            .send(
                Message::new(
                    2 + i as u64,
                    control.clone(),
                    id,
                    0,
                    Payload::Subscribe { filter: filter.clone() },
                )
                .to_bytes(),
            )
            .expect("subscribe frame");
    }
    let expected = 1 + filters.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while sink.delivered.load(Ordering::Relaxed) < expected {
        assert!(Instant::now() < deadline, "client {id} never finished its handshake");
        std::thread::sleep(Duration::from_millis(1));
    }
    (sink, frames_tx)
}

/// Stands up a fast-path loopback broker subscribed to the bench
/// topic and blocks until the subscription is routable.
fn routable_broker() -> (Broker, Arc<SinkSender>, crossbeam::channel::Sender<Vec<u8>>) {
    let cfg = BrokerConfig {
        advert_refresh: None,
        data_plane_cache: true,
        require_tokens: false,
        telemetry: nb_telemetry::TelemetryConfig { enabled: false, ..Default::default() },
        ..BrokerConfig::default()
    };
    let broker = Broker::new("bench", system_clock(), cfg);
    let (sink, uplink) = attach_sink_client(&broker, "sub", &[bench_topic()]);

    let acks = sink.delivered.load(Ordering::Relaxed);
    let mut probe = data_frame("pub-0");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut probe_id = u64::MAX;
    while sink.delivered.load(Ordering::Relaxed) <= acks {
        assert!(Instant::now() < deadline, "subscription never became routable");
        probe[1..9].copy_from_slice(&probe_id.to_be_bytes());
        probe_id -= 1;
        broker.ingest_client_frame("pub-0", &mut probe);
        std::thread::sleep(Duration::from_millis(2));
    }
    (broker, sink, uplink)
}

struct RunStats {
    msgs_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    delivered: u64,
}

/// Drives one configuration: a multi-threaded saturation phase for
/// throughput, then a single-threaded timed phase for latency. With
/// `telemetry` on, the broker's own publisher pumps signed frames
/// throughout and `agg` (subscribed on the same broker) ingests them.
fn run_config(
    telemetry: bool,
    agg: Option<&ClusterAggregator>,
    threads: usize,
    per_thread: u64,
    timed: u64,
) -> RunStats {
    let (broker, sink, _uplink) = routable_broker();
    let broker = Arc::new(broker);

    // The telemetry plane rides along: publisher on its own cadence,
    // aggregator drained by a background thread, both for the whole
    // duration of the measured run.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut plane: Option<std::thread::JoinHandle<()>> = None;
    if telemetry {
        let agg = agg.expect("aggregator required when telemetry is on").clone();
        let rx = broker.register_internal("obs-agg");
        broker
            .subscribe_internal("obs-agg", telemetry_topic())
            .expect("subscribe obs");
        let publisher = broker
            .telemetry_publisher(PublisherConfig { interval_ms: 100, full_every: 8 })
            .signed(obs_credential());
        let stop = Arc::clone(&stop);
        plane = Some(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                publisher.tick();
                while let Ok(msg) = rx.try_recv() {
                    agg.ingest(&msg);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            // Flush a final frame so short quick runs still aggregate.
            publisher.publish_now();
            while let Ok(msg) = rx.try_recv() {
                agg.ingest(&msg);
            }
        }));
    }
    let delivered_start = sink.delivered.load(Ordering::Relaxed);

    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let broker = Arc::clone(&broker);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let id = format!("pub-{t}");
                let mut frame = data_frame(&id);
                barrier.wait();
                for seq in 0..per_thread {
                    // Message id sits after the version byte (offset
                    // 1..9, big-endian) — patch it in place.
                    frame[1..9].copy_from_slice(&(t as u64 * per_thread + seq).to_be_bytes());
                    broker.ingest_client_frame(&id, &mut frame);
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for w in workers {
        w.join().expect("publisher thread");
    }
    let elapsed = t0.elapsed();
    let msgs = threads as u64 * per_thread;
    let msgs_per_sec = msgs as f64 / elapsed.as_secs_f64();

    let mut frame = data_frame("pub-timed");
    let mut lat_ns: Vec<u64> = Vec::with_capacity(timed as usize);
    for seq in 0..timed {
        frame[1..9].copy_from_slice(&(u64::MAX / 2 + seq).to_be_bytes());
        let t = Instant::now();
        broker.ingest_client_frame("pub-timed", &mut frame);
        lat_ns.push(t.elapsed().as_nanos() as u64);
    }
    lat_ns.sort_unstable();
    let pct = |q: f64| lat_ns[((lat_ns.len() - 1) as f64 * q) as usize];

    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = plane {
        handle.join().expect("telemetry plane thread");
    }

    // Telemetry frames go to the internal subscriber, not the sink, so
    // the data-plane delivery count stays exact either way.
    let delivered = sink.delivered.load(Ordering::Relaxed) - delivered_start;
    assert_eq!(delivered, msgs + timed, "lost or duplicated deliveries");

    RunStats { msgs_per_sec, p50_ns: pct(0.50), p99_ns: pct(0.99), delivered }
}

/// Best-of-`runs` for one configuration (throughput takes the max;
/// latency percentiles take the run that won).
fn best_of(
    runs: usize,
    telemetry: bool,
    agg: Option<&ClusterAggregator>,
    threads: usize,
    per_thread: u64,
    timed: u64,
) -> RunStats {
    let mut best: Option<RunStats> = None;
    for _ in 0..runs {
        let stats = run_config(telemetry, agg, threads, per_thread, timed);
        if best.as_ref().is_none_or(|b| stats.msgs_per_sec > b.msgs_per_sec) {
            best = Some(stats);
        }
    }
    best.expect("at least one run")
}

fn json_section(s: &RunStats) -> String {
    format!(
        "{{\n    \"msgs_per_sec\": {:.0},\n    \"p50_route_ns\": {},\n    \"p99_route_ns\": {},\n    \"delivered\": {}\n  }}",
        s.msgs_per_sec, s.p50_ns, s.p99_ns, s.delivered
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let (per_thread, timed, runs) =
        if quick { (50_000, 20_000, 2) } else { (500_000, 200_000, 3) };
    println!(
        "== obs report: loopback broker, {threads} publishers x {per_thread} msgs, best of {runs} ({}) ==",
        if quick { "quick" } else { "full" }
    );

    let agg = ClusterAggregator::new(AggregatorConfig::default());
    agg.require_signatures(obs_credential().certificate.public_key.clone());

    let off = best_of(runs, false, None, threads, per_thread, timed);
    println!(
        "telemetry off      : {:>12.0} msgs/sec   p50 {:>6} ns   p99 {:>6} ns",
        off.msgs_per_sec, off.p50_ns, off.p99_ns
    );
    let on = best_of(runs, true, Some(&agg), threads, per_thread, timed);
    println!(
        "telemetry on       : {:>12.0} msgs/sec   p50 {:>6} ns   p99 {:>6} ns",
        on.msgs_per_sec, on.p50_ns, on.p99_ns
    );

    // The plane must actually have run: signed frames accepted, none
    // rejected, and the node totals carry the broker families.
    let obs_metrics = agg.metrics_snapshot();
    let accepted = obs_metrics.counter("obs.frames.accepted").unwrap_or(0);
    let rejected = obs_metrics.counter("obs.frames.rejected").unwrap_or(0);
    assert!(accepted > 0, "no telemetry frames aggregated");
    assert_eq!(rejected, 0, "genuine frames must verify");
    let total = agg.node_total("bench").expect("bench node aggregated");
    assert!(
        total.entries().iter().any(|e| e.name.starts_with("broker.")),
        "node totals must carry the broker family"
    );

    // Both expositions render from the live aggregator.
    let now_ms = system_clock().now_ms();
    let prom = prometheus_text(&agg, now_ms);
    let json_doc = json_export(&agg, now_ms, Duration::from_secs(10));
    assert!(prom.contains("obs_node_health{node=\"bench\""));
    assert!(json_doc.contains("\"node\": \"bench\""));

    let overhead_pct = (off.msgs_per_sec - on.msgs_per_sec) / off.msgs_per_sec * 100.0;
    println!(
        "telemetry overhead: {overhead_pct:.2}%   frames accepted {accepted}   prom {} B   json {} B",
        prom.len(),
        json_doc.len()
    );

    // The acceptance bar: self-published telemetry costs < 2% of the
    // fast-path msgs/sec.
    assert!(
        on.msgs_per_sec >= off.msgs_per_sec * 0.98,
        "telemetry cost {overhead_pct:.2}% of fast-path throughput (budget 2%)"
    );

    let json = format!(
        "{{\n  \"bench\": \"obs_report\",\n  \"mode\": \"{}\",\n  \"threads\": {},\n  \"saturation_msgs_per_config\": {},\n  \"timed_msgs_per_config\": {},\n  \"telemetry_off\": {},\n  \"telemetry_on\": {},\n  \"frames_accepted\": {},\n  \"frames_rejected\": {},\n  \"overhead_pct\": {:.2},\n  \"prometheus_bytes\": {},\n  \"json_bytes\": {}\n}}\n",
        if quick { "quick" } else { "full" },
        threads,
        threads as u64 * per_thread,
        timed,
        json_section(&off),
        json_section(&on),
        accepted,
        rejected,
        overhead_pct,
        prom.len(),
        json_doc.len()
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json ({} bytes)", json.len());
}
