//! # nb-bench — experiment harnesses for the paper's evaluation (§6)
//!
//! Every table and figure of the paper maps to a binary in
//! `src/bin/` (see DESIGN.md's per-experiment index):
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table 3 / Figure 2 — trace routing overhead vs hops | `hops_table` |
//! | Table 3 — security & authorization op costs | `crypto_table` |
//! | Table 3 — key distribution overhead | `keydist_table` |
//! | Figure 4 — tracing while increasing trackers | `trackers_sweep` |
//! | Figure 5 — reduction of signing costs | `signing_opt` |
//! | Table 4 — increasing traced entities | `entities_table` |
//! | §1 message-complexity claim (ablation) | `baseline_compare` |
//!
//! `cargo bench -p nb-bench` additionally runs Criterion micro-benches
//! over the crypto primitives and the failure detector, plus a
//! reduced-sample pass over all the tables.
//!
//! This module holds the shared measurement machinery: summary
//! statistics matching the paper's mean/σ/stderr columns and the
//! load-marker latency probe used for "trace routing overhead".

use nb_tracing::entity::TracedEntity;
use nb_tracing::harness::Deployment;
use nb_tracing::tracker::Tracker;
use nb_wire::trace::LoadInformation;
use std::time::{Duration, Instant};

/// Mean / standard deviation / standard error, as reported in the
/// paper's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// Sample count.
    pub n: usize,
}

impl Stats {
    /// Computes summary statistics over `samples`.
    pub fn from_samples(samples: &[f64]) -> Stats {
        let n = samples.len();
        if n == 0 {
            return Stats {
                mean: 0.0,
                std_dev: 0.0,
                std_err: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        Stats {
            mean,
            std_dev,
            std_err: std_dev / (n as f64).sqrt(),
            n,
        }
    }
}

/// Prints a table row in the paper's `Operation | Mean | Std.Dev |
/// Std.Err` format (values in the unit the caller measured).
pub fn print_row(label: &str, stats: &Stats) {
    println!(
        "{label:<42} {:>10.3} {:>10.3} {:>10.3}   (n={})",
        stats.mean, stats.std_dev, stats.std_err, stats.n
    );
}

/// Prints the table header matching [`print_row`].
pub fn print_header(title: &str, unit: &str) {
    println!("\n{title}");
    println!(
        "{:<42} {:>10} {:>10} {:>10}",
        "Operation",
        format!("Mean {unit}"),
        format!("σ {unit}"),
        format!("SE {unit}")
    );
    println!("{}", "-".repeat(80));
}

/// Number of samples per experiment point; override with the
/// `NB_BENCH_SAMPLES` environment variable (the `paper_tables` bench
/// target sets a small value to keep `cargo bench` quick).
pub fn sample_count(default: usize) -> usize {
    std::env::var("NB_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Waits until the hosting engine has registered `min` interested
/// trackers for `entity_id`.
pub fn wait_interest(dep: &Deployment, broker_idx: usize, entity_id: &str, min: usize) -> bool {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if dep.engine(broker_idx).interest_count(entity_id) >= min {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// The paper's "trace routing overhead": time from the traced entity
/// emitting a trace-worthy event to the measuring tracker observing
/// it. Implemented with load reports carrying a unique workload
/// marker; the tracker side spins on its availability view.
///
/// Entity and measuring tracker run in the same process — the paper's
/// trick "to obviate the need for clock synchronizations".
pub fn measure_trace_latencies(
    entity: &TracedEntity,
    tracker: &Tracker,
    samples: usize,
    warmup: usize,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(samples);
    for i in 0..(samples + warmup) {
        let marker = 1_000_000 + i as u64;
        let t0 = Instant::now();
        if entity
            .report_load(LoadInformation {
                cpu_percent: 50.0,
                memory_used_bytes: 1 << 30,
                memory_total_bytes: 4 << 30,
                workload: marker,
            })
            .is_err()
        {
            continue;
        }
        let deadline = t0 + Duration::from_secs(10);
        let mut seen = false;
        while Instant::now() < deadline {
            let got = tracker
                .view()
                .get(entity.id())
                .and_then(|r| r.load)
                .map(|l| l.workload);
            if got == Some(marker) {
                seen = true;
                break;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        if seen && i >= warmup {
            out.push(t0.elapsed().as_secs_f64() * 1000.0);
        }
    }
    out
}

/// Prints a metrics epilogue for a finished experiment: the given
/// snapshot rendered as an aligned table under a titled separator.
///
/// Benches that tear deployments down per measurement point pass the
/// process-wide [`nb_metrics::global`] snapshot (crypto, token and
/// transport aggregates survive the deployments); benches holding one
/// long-lived [`Deployment`] pass `dep.metrics_snapshot()` for the
/// per-broker view as well.
pub fn print_metrics_epilogue(title: &str, snapshot: &nb_metrics::Snapshot) {
    println!("\n== metrics: {title} ==");
    if snapshot.is_empty() {
        println!("(no metrics recorded)");
    } else {
        println!("{}", snapshot.to_table());
    }
}

/// Waits (spinning) until `tracker` has a trace key, returning the
/// elapsed time — the per-tracker component of the paper's "key
/// distribution overhead".
pub fn wait_trace_key(tracker: &Tracker, timeout: Duration) -> Option<f64> {
    let t0 = Instant::now();
    let deadline = t0 + timeout;
    while Instant::now() < deadline {
        if tracker.has_trace_key() {
            return Some(t0.elapsed().as_secs_f64() * 1000.0);
        }
        std::thread::yield_now();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let s = Stats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-9);
        // Sample std dev of this classic set is ~2.138.
        assert!((s.std_dev - 2.138).abs() < 0.01);
        assert_eq!(s.n, 8);
        assert!((s.std_err - s.std_dev / (8f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_degenerate_cases() {
        let empty = Stats::from_samples(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        let single = Stats::from_samples(&[3.5]);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn sample_count_env_override() {
        std::env::remove_var("NB_BENCH_SAMPLES");
        assert_eq!(sample_count(50), 50);
    }
}
