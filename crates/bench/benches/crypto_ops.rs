//! Criterion micro-benchmarks over the crypto substrate — the
//! operations behind Table 3's "Security and Authorization related
//! costs" rows, plus the DESIGN.md ablations (Montgomery vs schoolbook
//! exponentiation, CRT vs plain RSA).

use criterion::{criterion_group, criterion_main, Criterion};
use nb_crypto::cert::{CertificateAuthority, Validity};
use nb_crypto::hmac::hmac;
use nb_crypto::modes::{cbc_decrypt, cbc_encrypt};
use nb_crypto::prime::random_below;
use nb_crypto::rsa::RsaKeyPair;
use nb_crypto::sha1::Sha1;
use nb_crypto::sha256::Sha256;
use nb_crypto::{BigUint, Digest, DigestAlgorithm, Uuid};
use nb_wire::token::{AuthorizationToken, Rights};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const NOW: u64 = 1_700_000_000_000;

fn bench_digests(c: &mut Criterion) {
    let data = vec![0xa5u8; 1024];
    c.bench_function("sha1_1KiB", |b| b.iter(|| Sha1::digest(black_box(&data))));
    c.bench_function("sha256_1KiB", |b| {
        b.iter(|| Sha256::digest(black_box(&data)))
    });
    c.bench_function("hmac_sha256_1KiB", |b| {
        b.iter(|| hmac::<Sha256>(black_box(b"session-key"), black_box(&data)))
    });
}

fn bench_aes(c: &mut Criterion) {
    // The paper's configuration: 192-bit AES.
    let key = [0x42u8; 24];
    let iv = [7u8; 16];
    let trace = vec![0x5au8; 256]; // a typical encoded trace event
    let ct = cbc_encrypt(&key, &iv, &trace).unwrap();
    c.bench_function("aes192_cbc_encrypt_trace", |b| {
        b.iter(|| cbc_encrypt(black_box(&key), black_box(&iv), black_box(&trace)).unwrap())
    });
    c.bench_function("aes192_cbc_decrypt_trace", |b| {
        b.iter(|| cbc_decrypt(black_box(&key), black_box(&iv), black_box(&ct)).unwrap())
    });
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xbe11c);
    let kp = RsaKeyPair::generate(1024, &mut rng).unwrap();
    let msg = vec![0x17u8; 256];
    let sig = kp.private.sign(DigestAlgorithm::Sha1, &msg).unwrap();

    c.bench_function("rsa1024_sign_sha1", |b| {
        b.iter(|| kp.private.sign(DigestAlgorithm::Sha1, black_box(&msg)).unwrap())
    });
    c.bench_function("rsa1024_verify_sha1", |b| {
        b.iter(|| {
            kp.public
                .verify(DigestAlgorithm::Sha1, black_box(&msg), black_box(&sig))
                .unwrap()
        })
    });

    let m = random_below(kp.public.modulus(), &mut rng);
    c.bench_function("rsa1024_private_no_crt", |b| {
        b.iter(|| kp.private.raw_no_crt(black_box(&m)).unwrap())
    });

    let mut group = c.benchmark_group("rsa_keygen");
    group.sample_size(10);
    group.bench_function("rsa1024_keygen", |b| {
        b.iter(|| RsaKeyPair::generate(1024, &mut rng).unwrap())
    });
    group.finish();
}

fn bench_tokens(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x70ce);
    let mut ca =
        CertificateAuthority::new("ca", 1024, Validity::starting_now(NOW, 1 << 40), &mut rng)
            .unwrap();
    let owner = ca
        .issue("entity:b", Validity::starting_now(NOW, 1 << 40), &mut rng)
        .unwrap();
    let delegate = RsaKeyPair::generate(1024, &mut rng).unwrap();
    let tt = Uuid::new_v4(&mut rng);
    let token = AuthorizationToken::issue(
        &owner,
        tt,
        delegate.public.clone(),
        Rights::Publish,
        NOW,
        NOW + 60_000,
    )
    .unwrap();

    c.bench_function("token_issue_existing_keypair", |b| {
        b.iter(|| {
            AuthorizationToken::issue(
                &owner,
                tt,
                delegate.public.clone(),
                Rights::Publish,
                NOW,
                NOW + 60_000,
            )
            .unwrap()
        })
    });
    c.bench_function("token_verify", |b| {
        b.iter(|| {
            token
                .verify(
                    &owner.certificate.public_key,
                    Rights::Publish,
                    black_box(NOW + 5),
                    100,
                )
                .unwrap()
        })
    });
}

fn bench_modpow_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: Montgomery vs schoolbook-reduction modpow.
    let mut rng = StdRng::seed_from_u64(0x0b1a);
    let kp = RsaKeyPair::generate(1024, &mut rng).unwrap();
    let m = kp.public.modulus().clone();
    let base = random_below(&m, &mut rng);
    let e = BigUint::from_u64(65537);
    c.bench_function("modpow1024_montgomery", |b| {
        b.iter(|| base.modpow(black_box(&e), &m).unwrap())
    });
    c.bench_function("modpow1024_schoolbook", |b| {
        b.iter(|| base.modpow_generic(black_box(&e), &m).unwrap())
    });
}

criterion_group!(
    benches,
    bench_digests,
    bench_aes,
    bench_rsa,
    bench_tokens,
    bench_modpow_ablation
);
criterion_main!(benches);
