//! Criterion benchmarks over the failure-detection state machine,
//! plus the DESIGN.md ablation: adaptive vs fixed ping intervals →
//! (virtual) time to detection.

#![allow(clippy::field_reassign_with_default)] // config tweaking reads better imperatively

use criterion::{criterion_group, criterion_main, Criterion};
use nb_tracing::config::TracingConfig;
use nb_tracing::failure::{DetectorEvent, FailureDetector};
use std::hint::black_box;
use std::time::Duration;

/// Simulates a crash under virtual time and reports how long the
/// detector takes to reach FAILED, with or without interval
/// adaptation.
fn virtual_time_to_detection(adaptive: bool) -> u64 {
    let mut config = TracingConfig::default();
    config.ping_interval = Duration::from_millis(500);
    config.response_timeout = Duration::from_millis(250);
    if !adaptive {
        // Disable adaptation by flooring the minimum at the base.
        config.min_ping_interval = config.ping_interval;
    } else {
        config.min_ping_interval = Duration::from_millis(50);
    }
    let mut detector = FailureDetector::new(&config);

    // Healthy phase.
    let mut now = 0u64;
    for _ in 0..10 {
        let seq = detector.on_ping_sent(now);
        detector.on_response(seq, now + 2);
        now += 500;
    }
    // Crash at `crash_time`: no more responses.
    let crash_time = now;
    loop {
        now += 10;
        if let Some(DetectorEvent::Fail) = detector.on_tick(now) {
            return now - crash_time;
        }
        if detector.ping_due(now) {
            detector.on_ping_sent(now);
        }
        assert!(now < crash_time + 60_000, "detector never fired");
    }
}

fn bench_detector(c: &mut Criterion) {
    // Print the ablation result once (deterministic virtual time).
    let adaptive_ms = virtual_time_to_detection(true);
    let fixed_ms = virtual_time_to_detection(false);
    println!(
        "\n[ablation] time-to-detection after crash: adaptive interval = {adaptive_ms} ms, \
         fixed interval = {fixed_ms} ms (adaptive must be ≤ fixed)\n"
    );
    assert!(adaptive_ms <= fixed_ms);

    let config = TracingConfig::default();
    c.bench_function("detector_healthy_cycle", |b| {
        let mut d = FailureDetector::new(&config);
        let mut now = 0u64;
        b.iter(|| {
            let seq = d.on_ping_sent(now);
            d.on_response(seq, now + 2);
            now += 500;
            black_box(d.on_tick(now));
        })
    });

    c.bench_function("detector_crash_to_failed", |b| {
        b.iter(|| black_box(virtual_time_to_detection(true)))
    });
}

criterion_group!(benches, bench_detector);
criterion_main!(benches);
