//! Runs every table/figure harness with a reduced sample count so
//! `cargo bench --workspace` regenerates the paper's entire
//! evaluation section in one pass. The standalone binaries
//! (`cargo run --release -p nb-bench --bin <name>`) produce the
//! full-sample versions.

use std::path::PathBuf;
use std::process::Command;

const EXPERIMENTS: [&str; 7] = [
    "crypto_table",
    "hops_table",
    "keydist_table",
    "trackers_sweep",
    "signing_opt",
    "entities_table",
    "baseline_compare",
];

fn binary_path(name: &str) -> Option<PathBuf> {
    // cargo bench binaries live in target/<profile>/deps; the bin
    // targets live one level up in target/release (built alongside
    // because benches depend on the package's bins? they are not —
    // build them on demand below).
    let exe = std::env::current_exe().ok()?;
    let release_dir = exe.parent()?.parent()?; // target/release
    let candidate = release_dir.join(name);
    candidate.exists().then_some(candidate)
}

fn main() {
    println!("== paper_tables: regenerating every table and figure (reduced samples) ==");
    // Make sure the experiment binaries exist (no-op when current).
    let built = Command::new(env!("CARGO"))
        .args(["build", "--release", "-p", "nb-bench", "--bins"])
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if !built {
        eprintln!("warning: could not (re)build experiment binaries; using any existing ones");
    }

    for name in EXPERIMENTS {
        println!("\n──────────────────────────────────────────────────────────");
        println!("▶ {name}");
        println!("──────────────────────────────────────────────────────────");
        let Some(path) = binary_path(name) else {
            println!("SKIPPED: target/release/{name} not found (run `cargo build --release -p nb-bench --bins`)");
            continue;
        };
        let status = Command::new(&path)
            .env("NB_BENCH_SAMPLES", "10")
            .env("NB_BENCH_GROUPS", "4")
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => println!("{name} exited with {s}"),
            Err(e) => println!("{name} failed to launch: {e}"),
        }
    }
}
