//! TCP transport: length-prefixed frames over `std::net::TcpStream`.
//!
//! One of the two real transports benchmarked in §6.1. Each accepted
//! or connected stream becomes an [`Endpoint`]: a reader thread
//! deframes incoming bytes into the endpoint's channel, and sends are
//! serialized through a mutex-guarded writer.

use crate::endpoint::{Endpoint, FrameSender, MAX_FRAME_LEN};
use crate::error::TransportError;
use crate::Result;
use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

struct TcpFrameSender {
    stream: Mutex<TcpStream>,
}

impl Drop for TcpFrameSender {
    fn drop(&mut self) {
        // Shut the socket down so the peer's reader thread observes
        // EOF promptly; otherwise the reader's stream clone keeps the
        // connection half-open until the process exits.
        let _ = self.stream.lock().shutdown(std::net::Shutdown::Both);
    }
}

impl FrameSender for TcpFrameSender {
    fn send_frame(&self, frame: &[u8]) -> Result<()> {
        let mut stream = self.stream.lock();
        // Single buffered write: length prefix + body.
        let mut buf = Vec::with_capacity(4 + frame.len());
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(frame);
        stream.write_all(&buf)?;
        Ok(())
    }
}

/// Wraps an established TCP stream into an [`Endpoint`], spawning its
/// reader thread. `TCP_NODELAY` is set: the workload is small framed
/// messages where Nagle batching only adds latency.
pub fn endpoint_from_stream(stream: TcpStream) -> Result<Endpoint> {
    stream.set_nodelay(true)?;
    let reader_stream = stream.try_clone()?;
    let (tx, rx) = unbounded();
    std::thread::Builder::new()
        .name("tcp-reader".to_string())
        .spawn(move || {
            let mut stream = reader_stream;
            let mut len_buf = [0u8; 4];
            loop {
                if stream.read_exact(&mut len_buf).is_err() {
                    return; // peer closed; drop tx → endpoint sees Closed
                }
                let len = u32::from_be_bytes(len_buf) as usize;
                if len > MAX_FRAME_LEN {
                    return;
                }
                let mut frame = vec![0u8; len];
                if stream.read_exact(&mut frame).is_err() {
                    return;
                }
                if tx.send(frame).is_err() {
                    return; // endpoint dropped
                }
            }
        })
        .map_err(TransportError::Io)?;
    Ok(Endpoint::from_parts(
        Arc::new(TcpFrameSender {
            stream: Mutex::new(stream),
        }),
        rx,
    ))
}

/// A listening TCP transport endpoint factory.
pub struct TcpTransportListener {
    listener: TcpListener,
}

impl TcpTransportListener {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> Result<Self> {
        Ok(TcpTransportListener {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Blocks until a peer connects; returns its endpoint.
    pub fn accept(&self) -> Result<Endpoint> {
        let (stream, _) = self.listener.accept()?;
        endpoint_from_stream(stream)
    }
}

/// Connects to a listening peer.
pub fn connect(addr: SocketAddr) -> Result<Endpoint> {
    endpoint_from_stream(TcpStream::connect(addr)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (Endpoint, Endpoint) {
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || connect(addr).unwrap());
        let server = listener.accept().unwrap();
        let client = client_thread.join().unwrap();
        (server, client)
    }

    #[test]
    fn frames_round_trip() {
        let (server, client) = pair();
        client.send(b"hello broker").unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(2)).unwrap(),
            b"hello broker"
        );
        server.send(b"hello entity").unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_secs(2)).unwrap(),
            b"hello entity"
        );
    }

    #[test]
    fn framing_preserves_boundaries() {
        let (server, client) = pair();
        for i in 0..50u32 {
            client.send(&vec![i as u8; (i as usize % 7) + 1]).unwrap();
        }
        for i in 0..50u32 {
            let frame = server.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(frame, vec![i as u8; (i as usize % 7) + 1]);
        }
    }

    #[test]
    fn empty_frames_are_legal() {
        let (server, client) = pair();
        client.send(b"").unwrap();
        assert_eq!(server.recv_timeout(Duration::from_secs(2)).unwrap(), b"");
    }

    #[test]
    fn large_frames_round_trip() {
        let (server, client) = pair();
        let big = vec![0xa7u8; 1 << 20]; // 1 MiB
        client.send(&big).unwrap();
        assert_eq!(server.recv_timeout(Duration::from_secs(5)).unwrap(), big);
    }

    #[test]
    fn peer_close_is_visible() {
        let (server, client) = pair();
        drop(client);
        assert_eq!(
            server.recv_timeout(Duration::from_secs(2)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn concurrent_senders_do_not_interleave() {
        let (server, client) = pair();
        let sender = client.sender();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let tx = Arc::clone(&sender);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let frame = vec![t as u8; 100 + i % 10];
                        tx.send_frame(&frame).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Every frame must be homogeneous — interleaving would mix bytes.
        for _ in 0..200 {
            let frame = server.recv_timeout(Duration::from_secs(2)).unwrap();
            assert!(frame.iter().all(|&b| b == frame[0]));
            assert!((100..110).contains(&frame.len()));
        }
    }
}
