//! TCP transport: length-prefixed frames over `std::net::TcpStream`.
//!
//! One of the two real transports benchmarked in §6.1. Each accepted
//! or connected stream becomes an [`Endpoint`]: a reader thread
//! deframes incoming bytes into the endpoint's channel, and sends are
//! serialized through a mutex-guarded writer.

use crate::endpoint::{Endpoint, FaultCell, FrameSender, MAX_FRAME_LEN};
use crate::error::TransportError;
use crate::instrument;
use crate::Result;
use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct TcpFrameSender {
    stream: Mutex<TcpStream>,
    /// Set after the first write error: a failed `write_all` may have
    /// left a partial frame on the wire, so any further write would
    /// interleave into a corrupt stream. Once poisoned every send
    /// fails fast with [`TransportError::Closed`].
    poisoned: AtomicBool,
}

impl Drop for TcpFrameSender {
    fn drop(&mut self) {
        // Shut the socket down so the peer's reader thread observes
        // EOF promptly; otherwise the reader's stream clone keeps the
        // connection half-open until the process exits.
        let _ = self.stream.lock().shutdown(std::net::Shutdown::Both);
    }
}

impl FrameSender for TcpFrameSender {
    fn send_frame(&self, frame: &[u8]) -> Result<()> {
        let mut stream = self.stream.lock();
        if self.poisoned.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        // Single buffered write: length prefix + body.
        let mut buf = Vec::with_capacity(4 + frame.len());
        buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        buf.extend_from_slice(frame);
        if let Err(e) = stream.write_all(&buf) {
            self.poisoned.store(true, Ordering::Release);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return Err(TransportError::Io(e));
        }
        Ok(())
    }
}

/// Wraps an established TCP stream into an [`Endpoint`], spawning its
/// reader thread. `TCP_NODELAY` is set: the workload is small framed
/// messages where Nagle batching only adds latency.
pub fn endpoint_from_stream(stream: TcpStream) -> Result<Endpoint> {
    stream.set_nodelay(true)?;
    let reader_stream = stream.try_clone()?;
    let (tx, rx) = unbounded();
    let fault = FaultCell::new();
    let reader_fault = fault.clone();
    std::thread::Builder::new()
        .name("tcp-reader".to_string())
        .spawn(move || {
            let mut stream = reader_stream;
            let mut len_buf = [0u8; 4];
            loop {
                if stream.read_exact(&mut len_buf).is_err() {
                    return; // peer closed; drop tx → endpoint sees Closed
                }
                let len = u32::from_be_bytes(len_buf) as usize;
                if len > MAX_FRAME_LEN {
                    // A length prefix beyond the protocol ceiling means
                    // the stream is garbage (or hostile). Park the typed
                    // reason so the endpoint owner can tell this apart
                    // from a clean peer close.
                    instrument::FRAME_OVERSIZED.inc();
                    reader_fault.set(TransportError::FrameTooLarge {
                        size: len,
                        max: MAX_FRAME_LEN,
                    });
                    return;
                }
                let mut frame = vec![0u8; len];
                if stream.read_exact(&mut frame).is_err() {
                    return;
                }
                if tx.send(frame).is_err() {
                    return; // endpoint dropped
                }
            }
        })
        .map_err(TransportError::Io)?;
    Ok(Endpoint::from_parts_limited(
        Arc::new(TcpFrameSender {
            stream: Mutex::new(stream),
            poisoned: AtomicBool::new(false),
        }),
        rx,
        MAX_FRAME_LEN,
        fault,
    ))
}

/// A listening TCP transport endpoint factory.
pub struct TcpTransportListener {
    listener: TcpListener,
}

impl TcpTransportListener {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> Result<Self> {
        Ok(TcpTransportListener {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Blocks until a peer connects; returns its endpoint.
    pub fn accept(&self) -> Result<Endpoint> {
        let (stream, _) = self.listener.accept()?;
        endpoint_from_stream(stream)
    }
}

/// Connects to a listening peer.
pub fn connect(addr: SocketAddr) -> Result<Endpoint> {
    endpoint_from_stream(TcpStream::connect(addr)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (Endpoint, Endpoint) {
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || connect(addr).unwrap());
        let server = listener.accept().unwrap();
        let client = client_thread.join().unwrap();
        (server, client)
    }

    #[test]
    fn frames_round_trip() {
        let (server, client) = pair();
        client.send(b"hello broker").unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(2)).unwrap(),
            b"hello broker"
        );
        server.send(b"hello entity").unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_secs(2)).unwrap(),
            b"hello entity"
        );
    }

    #[test]
    fn framing_preserves_boundaries() {
        let (server, client) = pair();
        for i in 0..50u32 {
            client.send(&vec![i as u8; (i as usize % 7) + 1]).unwrap();
        }
        for i in 0..50u32 {
            let frame = server.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(frame, vec![i as u8; (i as usize % 7) + 1]);
        }
    }

    #[test]
    fn empty_frames_are_legal() {
        let (server, client) = pair();
        client.send(b"").unwrap();
        assert_eq!(server.recv_timeout(Duration::from_secs(2)).unwrap(), b"");
    }

    #[test]
    fn large_frames_round_trip() {
        let (server, client) = pair();
        let big = vec![0xa7u8; 1 << 20]; // 1 MiB
        client.send(&big).unwrap();
        assert_eq!(server.recv_timeout(Duration::from_secs(5)).unwrap(), big);
    }

    #[test]
    fn peer_close_is_visible() {
        let (server, client) = pair();
        drop(client);
        assert_eq!(
            server.recv_timeout(Duration::from_secs(2)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn oversized_wire_frame_surfaces_typed_error() {
        // A peer that announces a frame bigger than the protocol
        // ceiling must not look like a clean close: the reader thread
        // parks FrameTooLarge and the endpoint reports it.
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let bogus_len = (MAX_FRAME_LEN as u32 + 1).to_be_bytes();
            s.write_all(&bogus_len).unwrap();
            s
        });
        let server = listener.accept().unwrap();
        let _raw = raw.join().unwrap();
        let before = nb_metrics::global().counter("transport.frame.oversized").get();
        let err = server.recv_timeout(Duration::from_secs(2)).unwrap_err();
        assert_eq!(
            err,
            TransportError::FrameTooLarge {
                size: MAX_FRAME_LEN + 1,
                max: MAX_FRAME_LEN
            }
        );
        // The counter observed the event too.
        assert!(nb_metrics::global().counter("transport.frame.oversized").get() > before);
    }

    #[test]
    fn write_error_poisons_the_sender() {
        let (server, client) = pair();
        drop(server);
        // Writing into a closed peer: the first writes land in the
        // kernel buffer, but once the RST comes back a write fails.
        let mut saw_error = false;
        for _ in 0..10_000 {
            match client.send(&[0x5au8; 1024]) {
                Ok(()) => std::thread::sleep(Duration::from_millis(1)),
                Err(TransportError::Closed) => {
                    // Already poisoned by an earlier failure — also fine.
                    saw_error = true;
                    break;
                }
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "writes into a dead peer never failed");
        // Poisoned: every subsequent send fails fast with Closed, so a
        // partially written frame can never be followed by another.
        assert_eq!(client.send(b"after"), Err(TransportError::Closed));
        assert_eq!(client.send(b"again"), Err(TransportError::Closed));
    }

    #[test]
    fn concurrent_senders_do_not_interleave() {
        let (server, client) = pair();
        let sender = client.sender();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let tx = Arc::clone(&sender);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let frame = vec![t as u8; 100 + i % 10];
                        tx.send_frame(&frame).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Every frame must be homogeneous — interleaving would mix bytes.
        for _ in 0..200 {
            let frame = server.recv_timeout(Duration::from_secs(2)).unwrap();
            assert!(frame.iter().all(|&b| b == frame[0]));
            assert!((100..110).contains(&frame.len()));
        }
    }
}
