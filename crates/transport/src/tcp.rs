//! TCP transport: length-prefixed frames over `std::net::TcpStream`.
//!
//! One of the two real transports benchmarked in §6.1. Each accepted
//! or connected stream becomes an [`Endpoint`]: a reader thread
//! deframes incoming bytes into the endpoint's channel, and sends go
//! through a write-combining sender (`TcpFrameSender`'s internals):
//! frames are staged into a shared buffer under a cheap lock, and
//! whichever sender wins the writer lock flushes the whole staged
//! batch in one `write_all`. Under concurrent load this coalesces many
//! frames per syscall (`transport.batch.*` counters) while preserving
//! exact FIFO order and frame boundaries; a lone sender degenerates to
//! the old one-write-per-frame behaviour.

use crate::endpoint::{Endpoint, FaultCell, FrameSender, MAX_FRAME_LEN};
use crate::error::TransportError;
use crate::instrument;
use crate::Result;
use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Frames staged for the next batched write: encoded back-to-back
/// (length prefix + body each) in arrival order.
struct Pending {
    buf: Vec<u8>,
    frames: u64,
}

/// The socket plus a recycled batch buffer, guarded together so only
/// one thread writes at a time.
struct TcpWriter {
    stream: TcpStream,
    /// Capacity recycled between batches (swapped with `Pending::buf`
    /// at each flush so steady-state sends allocate nothing).
    spare: Vec<u8>,
}

struct TcpFrameSender {
    pending: Mutex<Pending>,
    writer: Mutex<TcpWriter>,
    /// Set after the first write error: a failed `write_all` may have
    /// left a partial frame on the wire, so any further write would
    /// interleave into a corrupt stream. Once poisoned every send
    /// fails fast with [`TransportError::Closed`].
    poisoned: AtomicBool,
}

impl Drop for TcpFrameSender {
    fn drop(&mut self) {
        // Shut the socket down so the peer's reader thread observes
        // EOF promptly; otherwise the reader's stream clone keeps the
        // connection half-open until the process exits.
        let writer = self.writer.get_mut();
        let _ = writer.stream.shutdown(std::net::Shutdown::Both);
    }
}

impl FrameSender for TcpFrameSender {
    fn send_frame(&self, frame: &[u8]) -> Result<()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        // Stage the frame; the pending lock is held only for the copy,
        // so concurrent senders queue up frames while a write syscall
        // is in progress.
        {
            let mut pending = self.pending.lock();
            pending.buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
            pending.buf.extend_from_slice(frame);
            pending.frames += 1;
        }
        // Combining flush: the writer lock serializes syscalls; the
        // holder drains everything staged so far in one write. A
        // sender whose frame was carried out by an earlier flush finds
        // pending empty and returns without a syscall of its own.
        let mut writer = self.writer.lock();
        if self.poisoned.load(Ordering::Acquire) {
            // A flush that may have carried our frame failed.
            return Err(TransportError::Closed);
        }
        let (batch, frames) = {
            let mut pending = self.pending.lock();
            if pending.buf.is_empty() {
                return Ok(());
            }
            let spare = std::mem::take(&mut writer.spare);
            (
                std::mem::replace(&mut pending.buf, spare),
                std::mem::replace(&mut pending.frames, 0),
            )
        };
        let result = writer.stream.write_all(&batch);
        instrument::BATCH_WRITES.inc();
        instrument::BATCH_FRAMES.add(frames);
        instrument::BATCH_COALESCED.add(frames.saturating_sub(1));
        // Recycle the batch's capacity for the next staging cycle.
        let mut batch = batch;
        batch.clear();
        writer.spare = batch;
        match result {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned.store(true, Ordering::Release);
                let _ = writer.stream.shutdown(std::net::Shutdown::Both);
                Err(TransportError::Io(e))
            }
        }
    }
}

/// Wraps an established TCP stream into an [`Endpoint`], spawning its
/// reader thread. `TCP_NODELAY` is set: the workload is small framed
/// messages where Nagle batching only adds latency.
pub fn endpoint_from_stream(stream: TcpStream) -> Result<Endpoint> {
    stream.set_nodelay(true)?;
    let reader_stream = stream.try_clone()?;
    let (tx, rx) = unbounded();
    let fault = FaultCell::new();
    let reader_fault = fault.clone();
    std::thread::Builder::new()
        .name("tcp-reader".to_string())
        .spawn(move || {
            let mut stream = reader_stream;
            let mut len_buf = [0u8; 4];
            loop {
                if stream.read_exact(&mut len_buf).is_err() {
                    return; // peer closed; drop tx → endpoint sees Closed
                }
                let len = u32::from_be_bytes(len_buf) as usize;
                if len > MAX_FRAME_LEN {
                    // A length prefix beyond the protocol ceiling means
                    // the stream is garbage (or hostile). Park the typed
                    // reason so the endpoint owner can tell this apart
                    // from a clean peer close.
                    instrument::FRAME_OVERSIZED.inc();
                    reader_fault.set(TransportError::FrameTooLarge {
                        size: len,
                        max: MAX_FRAME_LEN,
                    });
                    return;
                }
                let mut frame = vec![0u8; len];
                if stream.read_exact(&mut frame).is_err() {
                    return;
                }
                if tx.send(frame).is_err() {
                    return; // endpoint dropped
                }
            }
        })
        .map_err(TransportError::Io)?;
    Ok(Endpoint::from_parts_limited(
        Arc::new(TcpFrameSender {
            pending: Mutex::new(Pending {
                buf: Vec::new(),
                frames: 0,
            }),
            writer: Mutex::new(TcpWriter {
                stream,
                spare: Vec::new(),
            }),
            poisoned: AtomicBool::new(false),
        }),
        rx,
        MAX_FRAME_LEN,
        fault,
    ))
}

/// A listening TCP transport endpoint factory.
pub struct TcpTransportListener {
    listener: TcpListener,
}

impl TcpTransportListener {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> Result<Self> {
        Ok(TcpTransportListener {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Blocks until a peer connects; returns its endpoint.
    pub fn accept(&self) -> Result<Endpoint> {
        let (stream, _) = self.listener.accept()?;
        endpoint_from_stream(stream)
    }
}

/// Connects to a listening peer.
pub fn connect(addr: SocketAddr) -> Result<Endpoint> {
    endpoint_from_stream(TcpStream::connect(addr)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (Endpoint, Endpoint) {
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || connect(addr).unwrap());
        let server = listener.accept().unwrap();
        let client = client_thread.join().unwrap();
        (server, client)
    }

    #[test]
    fn frames_round_trip() {
        let (server, client) = pair();
        client.send(b"hello broker").unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(2)).unwrap(),
            b"hello broker"
        );
        server.send(b"hello entity").unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_secs(2)).unwrap(),
            b"hello entity"
        );
    }

    #[test]
    fn framing_preserves_boundaries() {
        let (server, client) = pair();
        for i in 0..50u32 {
            client.send(&vec![i as u8; (i as usize % 7) + 1]).unwrap();
        }
        for i in 0..50u32 {
            let frame = server.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(frame, vec![i as u8; (i as usize % 7) + 1]);
        }
    }

    #[test]
    fn empty_frames_are_legal() {
        let (server, client) = pair();
        client.send(b"").unwrap();
        assert_eq!(server.recv_timeout(Duration::from_secs(2)).unwrap(), b"");
    }

    #[test]
    fn large_frames_round_trip() {
        let (server, client) = pair();
        let big = vec![0xa7u8; 1 << 20]; // 1 MiB
        client.send(&big).unwrap();
        assert_eq!(server.recv_timeout(Duration::from_secs(5)).unwrap(), big);
    }

    #[test]
    fn peer_close_is_visible() {
        let (server, client) = pair();
        drop(client);
        assert_eq!(
            server.recv_timeout(Duration::from_secs(2)),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn oversized_wire_frame_surfaces_typed_error() {
        // A peer that announces a frame bigger than the protocol
        // ceiling must not look like a clean close: the reader thread
        // parks FrameTooLarge and the endpoint reports it.
        let listener = TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let bogus_len = (MAX_FRAME_LEN as u32 + 1).to_be_bytes();
            s.write_all(&bogus_len).unwrap();
            s
        });
        let server = listener.accept().unwrap();
        let _raw = raw.join().unwrap();
        let before = nb_metrics::global().counter("transport.frame.oversized").get();
        let err = server.recv_timeout(Duration::from_secs(2)).unwrap_err();
        assert_eq!(
            err,
            TransportError::FrameTooLarge {
                size: MAX_FRAME_LEN + 1,
                max: MAX_FRAME_LEN
            }
        );
        // The counter observed the event too.
        assert!(nb_metrics::global().counter("transport.frame.oversized").get() > before);
    }

    #[test]
    fn write_error_poisons_the_sender() {
        let (server, client) = pair();
        drop(server);
        // Writing into a closed peer: the first writes land in the
        // kernel buffer, but once the RST comes back a write fails.
        let mut saw_error = false;
        for _ in 0..10_000 {
            match client.send(&[0x5au8; 1024]) {
                Ok(()) => std::thread::sleep(Duration::from_millis(1)),
                Err(TransportError::Closed) => {
                    // Already poisoned by an earlier failure — also fine.
                    saw_error = true;
                    break;
                }
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "writes into a dead peer never failed");
        // Poisoned: every subsequent send fails fast with Closed, so a
        // partially written frame can never be followed by another.
        assert_eq!(client.send(b"after"), Err(TransportError::Closed));
        assert_eq!(client.send(b"again"), Err(TransportError::Closed));
    }

    #[test]
    fn batched_writes_account_every_frame() {
        let (server, client) = pair();
        let writes0 = nb_metrics::global().counter("transport.batch.writes").get();
        let frames0 = nb_metrics::global().counter("transport.batch.frames").get();
        let sender = client.sender();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let tx = Arc::clone(&sender);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        tx.send_frame(&[t as u8; 64]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for _ in 0..400 {
            server.recv_timeout(Duration::from_secs(2)).unwrap();
        }
        let writes = nb_metrics::global().counter("transport.batch.writes").get() - writes0;
        let frames = nb_metrics::global().counter("transport.batch.frames").get() - frames0;
        // Every frame is accounted, in no more syscalls than frames
        // (the counters are process-global, so other tests may add to
        // them — the invariant still holds for the deltas).
        assert!(frames >= 400, "frames {frames}");
        assert!(writes <= frames, "writes {writes} > frames {frames}");
    }

    #[test]
    fn concurrent_senders_do_not_interleave() {
        let (server, client) = pair();
        let sender = client.sender();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let tx = Arc::clone(&sender);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let frame = vec![t as u8; 100 + i % 10];
                        tx.send_frame(&frame).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Every frame must be homogeneous — interleaving would mix bytes.
        for _ in 0..200 {
            let frame = server.recv_timeout(Duration::from_secs(2)).unwrap();
            assert!(frame.iter().all(|&b| b == frame[0]));
            assert!((100..110).contains(&frame.len()));
        }
    }
}
