//! The uniform link-half abstraction shared by all transports.

use crate::error::TransportError;
use crate::instrument;
use crate::Result;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum frame size accepted by any transport (4 MiB).
pub const MAX_FRAME_LEN: usize = 4 * 1024 * 1024;

/// Shared slot for the typed reason a link stopped delivering frames.
///
/// A transport's reader thread cannot hand an error through the frame
/// channel (it carries `Vec<u8>`), so before dropping its sender it
/// parks the reason here; the endpoint returns it from every
/// subsequent receive instead of a bare [`TransportError::Closed`].
/// Only the first reason sticks.
#[derive(Clone, Default)]
pub struct FaultCell(Arc<Mutex<Option<TransportError>>>);

impl FaultCell {
    /// Creates an empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the close reason if none is set yet.
    pub fn set(&self, err: TransportError) {
        let mut slot = self.0.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
    }

    /// The recorded close reason, if any.
    pub fn get(&self) -> Option<TransportError> {
        self.0.lock().clone()
    }
}

/// Transport-specific frame transmitter.
pub trait FrameSender: Send + Sync {
    /// Sends one frame; must be atomic with respect to other senders.
    fn send_frame(&self, frame: &[u8]) -> Result<()>;
}

#[derive(Default)]
struct IoCounters {
    frames_out: AtomicU64,
    bytes_out: AtomicU64,
    frames_in: AtomicU64,
    bytes_in: AtomicU64,
}

/// Cumulative traffic counters for one [`Endpoint`].
///
/// Cheap to clone; every clone observes the same live counters.
/// "Out" counts frames handed to the transport (before any simulated
/// loss), "in" counts frames actually received by the endpoint owner.
#[derive(Clone, Default)]
pub struct EndpointStats(Arc<IoCounters>);

impl EndpointStats {
    /// Frames sent through this endpoint.
    pub fn frames_out(&self) -> u64 {
        self.0.frames_out.load(Ordering::Relaxed)
    }

    /// Payload bytes sent through this endpoint.
    pub fn bytes_out(&self) -> u64 {
        self.0.bytes_out.load(Ordering::Relaxed)
    }

    /// Frames received from this endpoint.
    pub fn frames_in(&self) -> u64 {
        self.0.frames_in.load(Ordering::Relaxed)
    }

    /// Payload bytes received from this endpoint.
    pub fn bytes_in(&self) -> u64 {
        self.0.bytes_in.load(Ordering::Relaxed)
    }

    fn record_out(&self, bytes: usize) {
        self.0.frames_out.fetch_add(1, Ordering::Relaxed);
        self.0.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
        instrument::FRAMES_SENT.inc();
        instrument::BYTES_SENT.add(bytes as u64);
    }

    fn record_in(&self, bytes: usize) {
        self.0.frames_in.fetch_add(1, Ordering::Relaxed);
        self.0.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
        instrument::FRAMES_RECEIVED.inc();
        instrument::BYTES_RECEIVED.add(bytes as u64);
    }
}

impl std::fmt::Debug for EndpointStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndpointStats")
            .field("frames_out", &self.frames_out())
            .field("bytes_out", &self.bytes_out())
            .field("frames_in", &self.frames_in())
            .field("bytes_in", &self.bytes_in())
            .finish()
    }
}

/// Wraps the transport's sender so traffic through cloned sender
/// handles is attributed to the owning endpoint as well.
struct CountingSender {
    inner: Arc<dyn FrameSender>,
    stats: EndpointStats,
}

impl FrameSender for CountingSender {
    fn send_frame(&self, frame: &[u8]) -> Result<()> {
        self.inner.send_frame(frame)?;
        self.stats.record_out(frame.len());
        Ok(())
    }
}

/// One half of a bidirectional, framed link.
///
/// `Endpoint` is identical across the simulated, TCP and UDP
/// transports — this is the "transport independence" the paper calls
/// out: brokers and entities exchange frames through this interface
/// and never see sockets.
pub struct Endpoint {
    tx: Arc<dyn FrameSender>,
    rx: Receiver<Vec<u8>>,
    stats: EndpointStats,
    max_frame_len: usize,
    fault: FaultCell,
}

impl Endpoint {
    /// Assembles an endpoint from its halves (used by transport
    /// implementations). The frame limit defaults to the global
    /// [`MAX_FRAME_LEN`]; transports with a tighter wire limit use
    /// [`Endpoint::from_parts_limited`].
    pub fn from_parts(tx: Arc<dyn FrameSender>, rx: Receiver<Vec<u8>>) -> Self {
        Self::from_parts_limited(tx, rx, MAX_FRAME_LEN, FaultCell::new())
    }

    /// Assembles an endpoint advertising a transport-specific maximum
    /// frame size and a shared [`FaultCell`] its reader thread can use
    /// to surface a typed close reason.
    pub fn from_parts_limited(
        tx: Arc<dyn FrameSender>,
        rx: Receiver<Vec<u8>>,
        max_frame_len: usize,
        fault: FaultCell,
    ) -> Self {
        let stats = EndpointStats::default();
        Endpoint {
            tx: Arc::new(CountingSender {
                inner: tx,
                stats: stats.clone(),
            }),
            rx,
            stats,
            max_frame_len: max_frame_len.min(MAX_FRAME_LEN),
            fault,
        }
    }

    /// The largest frame this endpoint's transport can carry. UDP
    /// endpoints advertise the datagram ceiling here, so an envelope
    /// that could never survive the wire is rejected at frame-build
    /// time ([`Endpoint::send`]) instead of deep inside the transport.
    pub fn max_frame_len(&self) -> usize {
        self.max_frame_len
    }

    /// Sends one frame.
    pub fn send(&self, frame: &[u8]) -> Result<()> {
        if frame.len() > self.max_frame_len {
            return Err(TransportError::FrameTooLarge {
                size: frame.len(),
                max: self.max_frame_len,
            });
        }
        self.tx.send_frame(frame)
    }

    /// Maps a disconnected frame channel to the typed close reason if
    /// the transport recorded one, else plain `Closed`.
    fn closed_error(&self) -> TransportError {
        self.fault.get().unwrap_or(TransportError::Closed)
    }

    /// Blocks until a frame arrives or the link closes.
    pub fn recv(&self) -> Result<Vec<u8>> {
        let frame = self.rx.recv().map_err(|_| self.closed_error())?;
        self.stats.record_in(frame.len());
        Ok(frame)
    }

    /// Blocks up to `timeout` for a frame.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>> {
        let frame = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => self.closed_error(),
        })?;
        self.stats.record_in(frame.len());
        Ok(frame)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Option<Vec<u8>>> {
        match self.rx.try_recv() {
            Ok(frame) => {
                self.stats.record_in(frame.len());
                Ok(Some(frame))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(self.closed_error()),
        }
    }

    /// A cloneable sender handle (for multi-writer use). Frames sent
    /// through the handle are counted against this endpoint's
    /// [`stats`][Endpoint::stats].
    pub fn sender(&self) -> Arc<dyn FrameSender> {
        Arc::clone(&self.tx)
    }

    /// Live traffic counters for this endpoint.
    pub fn stats(&self) -> EndpointStats {
        self.stats.clone()
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Endpoint(queued={})", self.rx.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{LinkConfig, SimNetwork};

    #[test]
    fn endpoint_stats_count_both_directions() {
        let net = SimNetwork::new(11);
        let (a, b) = net.symmetric_link(LinkConfig::instant());
        a.send(b"12345").unwrap();
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got, b"12345");
        assert_eq!(a.stats().frames_out(), 1);
        assert_eq!(a.stats().bytes_out(), 5);
        assert_eq!(b.stats().frames_in(), 1);
        assert_eq!(b.stats().bytes_in(), 5);
        assert_eq!(a.stats().frames_in(), 0);
    }

    #[test]
    fn fault_cell_surfaces_typed_close_reason() {
        let (tx, rx) = crossbeam::channel::unbounded::<Vec<u8>>();
        let fault = FaultCell::new();
        struct NullSender;
        impl FrameSender for NullSender {
            fn send_frame(&self, _frame: &[u8]) -> Result<()> {
                Ok(())
            }
        }
        let ep = Endpoint::from_parts_limited(Arc::new(NullSender), rx, 100, fault.clone());
        assert_eq!(ep.max_frame_len(), 100);
        // Oversized for this endpoint's transport: rejected at build time.
        assert_eq!(
            ep.send(&[0u8; 101]),
            Err(TransportError::FrameTooLarge { size: 101, max: 100 })
        );
        // Reader thread dies with a typed reason; recv reports it.
        fault.set(TransportError::FrameTooLarge { size: 7, max: 5 });
        fault.set(TransportError::Closed); // first reason sticks
        drop(tx);
        assert_eq!(
            ep.recv(),
            Err(TransportError::FrameTooLarge { size: 7, max: 5 })
        );
        assert_eq!(
            ep.recv_timeout(Duration::from_millis(1)),
            Err(TransportError::FrameTooLarge { size: 7, max: 5 })
        );
    }

    #[test]
    fn cloned_sender_traffic_is_attributed_to_the_endpoint() {
        let net = SimNetwork::new(12);
        let (a, b) = net.symmetric_link(LinkConfig::instant());
        let tx = a.sender();
        tx.send_frame(b"via-handle").unwrap();
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(a.stats().frames_out(), 1);
        assert_eq!(a.stats().bytes_out(), 10);
    }
}
