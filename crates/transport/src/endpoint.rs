//! The uniform link-half abstraction shared by all transports.

use crate::error::TransportError;
use crate::instrument;
use crate::Result;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum frame size accepted by any transport (4 MiB).
pub const MAX_FRAME_LEN: usize = 4 * 1024 * 1024;

/// Transport-specific frame transmitter.
pub trait FrameSender: Send + Sync {
    /// Sends one frame; must be atomic with respect to other senders.
    fn send_frame(&self, frame: &[u8]) -> Result<()>;
}

#[derive(Default)]
struct IoCounters {
    frames_out: AtomicU64,
    bytes_out: AtomicU64,
    frames_in: AtomicU64,
    bytes_in: AtomicU64,
}

/// Cumulative traffic counters for one [`Endpoint`].
///
/// Cheap to clone; every clone observes the same live counters.
/// "Out" counts frames handed to the transport (before any simulated
/// loss), "in" counts frames actually received by the endpoint owner.
#[derive(Clone, Default)]
pub struct EndpointStats(Arc<IoCounters>);

impl EndpointStats {
    /// Frames sent through this endpoint.
    pub fn frames_out(&self) -> u64 {
        self.0.frames_out.load(Ordering::Relaxed)
    }

    /// Payload bytes sent through this endpoint.
    pub fn bytes_out(&self) -> u64 {
        self.0.bytes_out.load(Ordering::Relaxed)
    }

    /// Frames received from this endpoint.
    pub fn frames_in(&self) -> u64 {
        self.0.frames_in.load(Ordering::Relaxed)
    }

    /// Payload bytes received from this endpoint.
    pub fn bytes_in(&self) -> u64 {
        self.0.bytes_in.load(Ordering::Relaxed)
    }

    fn record_out(&self, bytes: usize) {
        self.0.frames_out.fetch_add(1, Ordering::Relaxed);
        self.0.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
        instrument::FRAMES_SENT.inc();
        instrument::BYTES_SENT.add(bytes as u64);
    }

    fn record_in(&self, bytes: usize) {
        self.0.frames_in.fetch_add(1, Ordering::Relaxed);
        self.0.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
        instrument::FRAMES_RECEIVED.inc();
        instrument::BYTES_RECEIVED.add(bytes as u64);
    }
}

impl std::fmt::Debug for EndpointStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndpointStats")
            .field("frames_out", &self.frames_out())
            .field("bytes_out", &self.bytes_out())
            .field("frames_in", &self.frames_in())
            .field("bytes_in", &self.bytes_in())
            .finish()
    }
}

/// Wraps the transport's sender so traffic through cloned sender
/// handles is attributed to the owning endpoint as well.
struct CountingSender {
    inner: Arc<dyn FrameSender>,
    stats: EndpointStats,
}

impl FrameSender for CountingSender {
    fn send_frame(&self, frame: &[u8]) -> Result<()> {
        self.inner.send_frame(frame)?;
        self.stats.record_out(frame.len());
        Ok(())
    }
}

/// One half of a bidirectional, framed link.
///
/// `Endpoint` is identical across the simulated, TCP and UDP
/// transports — this is the "transport independence" the paper calls
/// out: brokers and entities exchange frames through this interface
/// and never see sockets.
pub struct Endpoint {
    tx: Arc<dyn FrameSender>,
    rx: Receiver<Vec<u8>>,
    stats: EndpointStats,
}

impl Endpoint {
    /// Assembles an endpoint from its halves (used by transport
    /// implementations).
    pub fn from_parts(tx: Arc<dyn FrameSender>, rx: Receiver<Vec<u8>>) -> Self {
        let stats = EndpointStats::default();
        Endpoint {
            tx: Arc::new(CountingSender {
                inner: tx,
                stats: stats.clone(),
            }),
            rx,
            stats,
        }
    }

    /// Sends one frame.
    pub fn send(&self, frame: &[u8]) -> Result<()> {
        if frame.len() > MAX_FRAME_LEN {
            return Err(TransportError::FrameTooLarge {
                size: frame.len(),
                max: MAX_FRAME_LEN,
            });
        }
        self.tx.send_frame(frame)
    }

    /// Blocks until a frame arrives or the link closes.
    pub fn recv(&self) -> Result<Vec<u8>> {
        let frame = self.rx.recv().map_err(|_| TransportError::Closed)?;
        self.stats.record_in(frame.len());
        Ok(frame)
    }

    /// Blocks up to `timeout` for a frame.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>> {
        let frame = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Closed,
        })?;
        self.stats.record_in(frame.len());
        Ok(frame)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Option<Vec<u8>>> {
        match self.rx.try_recv() {
            Ok(frame) => {
                self.stats.record_in(frame.len());
                Ok(Some(frame))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }

    /// A cloneable sender handle (for multi-writer use). Frames sent
    /// through the handle are counted against this endpoint's
    /// [`stats`][Endpoint::stats].
    pub fn sender(&self) -> Arc<dyn FrameSender> {
        Arc::clone(&self.tx)
    }

    /// Live traffic counters for this endpoint.
    pub fn stats(&self) -> EndpointStats {
        self.stats.clone()
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Endpoint(queued={})", self.rx.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{LinkConfig, SimNetwork};

    #[test]
    fn endpoint_stats_count_both_directions() {
        let net = SimNetwork::new(11);
        let (a, b) = net.symmetric_link(LinkConfig::instant());
        a.send(b"12345").unwrap();
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got, b"12345");
        assert_eq!(a.stats().frames_out(), 1);
        assert_eq!(a.stats().bytes_out(), 5);
        assert_eq!(b.stats().frames_in(), 1);
        assert_eq!(b.stats().bytes_in(), 5);
        assert_eq!(a.stats().frames_in(), 0);
    }

    #[test]
    fn cloned_sender_traffic_is_attributed_to_the_endpoint() {
        let net = SimNetwork::new(12);
        let (a, b) = net.symmetric_link(LinkConfig::instant());
        let tx = a.sender();
        tx.send_frame(b"via-handle").unwrap();
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(a.stats().frames_out(), 1);
        assert_eq!(a.stats().bytes_out(), 10);
    }
}
