//! The uniform link-half abstraction shared by all transports.

use crate::error::TransportError;
use crate::Result;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

/// Maximum frame size accepted by any transport (4 MiB).
pub const MAX_FRAME_LEN: usize = 4 * 1024 * 1024;

/// Transport-specific frame transmitter.
pub trait FrameSender: Send + Sync {
    /// Sends one frame; must be atomic with respect to other senders.
    fn send_frame(&self, frame: &[u8]) -> Result<()>;
}

/// One half of a bidirectional, framed link.
///
/// `Endpoint` is identical across the simulated, TCP and UDP
/// transports — this is the "transport independence" the paper calls
/// out: brokers and entities exchange frames through this interface
/// and never see sockets.
pub struct Endpoint {
    tx: Arc<dyn FrameSender>,
    rx: Receiver<Vec<u8>>,
}

impl Endpoint {
    /// Assembles an endpoint from its halves (used by transport
    /// implementations).
    pub fn from_parts(tx: Arc<dyn FrameSender>, rx: Receiver<Vec<u8>>) -> Self {
        Endpoint { tx, rx }
    }

    /// Sends one frame.
    pub fn send(&self, frame: &[u8]) -> Result<()> {
        if frame.len() > MAX_FRAME_LEN {
            return Err(TransportError::FrameTooLarge {
                size: frame.len(),
                max: MAX_FRAME_LEN,
            });
        }
        self.tx.send_frame(frame)
    }

    /// Blocks until a frame arrives or the link closes.
    pub fn recv(&self) -> Result<Vec<u8>> {
        self.rx.recv().map_err(|_| TransportError::Closed)
    }

    /// Blocks up to `timeout` for a frame.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Closed,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Option<Vec<u8>>> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }

    /// A cloneable sender handle (for multi-writer use).
    pub fn sender(&self) -> Arc<dyn FrameSender> {
        Arc::clone(&self.tx)
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Endpoint(queued={})", self.rx.len())
    }
}
