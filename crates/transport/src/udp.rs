//! UDP transport: one datagram per frame.
//!
//! The second real transport of §6.1. UDP endpoints are *connected*
//! sockets (each link pairs two sockets), so frames cannot stray
//! between links. Datagram semantics mean frames can be lost or
//! reordered by the OS — exactly the behaviour the paper's
//! ping/loss-tracking machinery is built to observe.

use crate::endpoint::{Endpoint, FaultCell, FrameSender};
use crate::error::TransportError;
use crate::Result;
use crossbeam::channel::unbounded;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;

/// Maximum UDP payload we send (stays under the 65,507-byte datagram
/// limit with headroom).
pub const MAX_DATAGRAM: usize = 60_000;

struct UdpFrameSender {
    socket: UdpSocket,
}

impl FrameSender for UdpFrameSender {
    fn send_frame(&self, frame: &[u8]) -> Result<()> {
        if frame.len() > MAX_DATAGRAM {
            return Err(TransportError::FrameTooLarge {
                size: frame.len(),
                max: MAX_DATAGRAM,
            });
        }
        self.socket.send(frame)?;
        Ok(())
    }
}

/// A UDP endpoint bound to a local address, not yet connected.
pub struct UdpHalf {
    socket: UdpSocket,
}

impl UdpHalf {
    /// Binds to `addr` (use port 0 for ephemeral).
    pub fn bind(addr: &str) -> Result<Self> {
        Ok(UdpHalf {
            socket: UdpSocket::bind(addr)?,
        })
    }

    /// The bound local address (exchange this out of band).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.socket.local_addr()?)
    }

    /// Connects to the peer and starts the reader thread.
    pub fn connect(self, peer: SocketAddr) -> Result<Endpoint> {
        self.socket.connect(peer)?;
        let reader = self.socket.try_clone()?;
        let (tx, rx) = unbounded();
        std::thread::Builder::new()
            .name("udp-reader".to_string())
            .spawn(move || {
                let mut buf = vec![0u8; MAX_DATAGRAM];
                loop {
                    match reader.recv(&mut buf) {
                        Ok(n) => {
                            if tx.send(buf[..n].to_vec()).is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                }
            })
            .map_err(TransportError::Io)?;
        // The endpoint advertises the datagram ceiling as its frame
        // limit, so an envelope that passes the generic 4 MiB check but
        // could never fit one datagram is rejected at frame-build time
        // ([`Endpoint::send`]) instead of only at UDP send time.
        Ok(Endpoint::from_parts_limited(
            Arc::new(UdpFrameSender {
                socket: self.socket,
            }),
            rx,
            MAX_DATAGRAM,
            FaultCell::new(),
        ))
    }
}

/// Convenience: creates a connected UDP link pair on loopback.
pub fn loopback_pair() -> Result<(Endpoint, Endpoint)> {
    let a = UdpHalf::bind("127.0.0.1:0")?;
    let b = UdpHalf::bind("127.0.0.1:0")?;
    let a_addr = a.local_addr()?;
    let b_addr = b.local_addr()?;
    Ok((a.connect(b_addr)?, b.connect(a_addr)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn datagrams_round_trip() {
        let (a, b) = loopback_pair().unwrap();
        a.send(b"udp ping").unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(2)).unwrap(),
            b"udp ping"
        );
        b.send(b"udp pong").unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(2)).unwrap(),
            b"udp pong"
        );
    }

    #[test]
    fn many_small_datagrams() {
        let (a, b) = loopback_pair().unwrap();
        // Loopback UDP is effectively lossless for modest bursts.
        for i in 0..100u32 {
            a.send(&i.to_be_bytes()).unwrap();
        }
        let mut got = 0;
        while b.recv_timeout(Duration::from_millis(200)).is_ok() {
            got += 1;
        }
        assert!(got >= 90, "received {got}/100 datagrams on loopback");
    }

    #[test]
    fn oversized_datagram_rejected() {
        let (a, _b) = loopback_pair().unwrap();
        let huge = vec![0u8; MAX_DATAGRAM + 1];
        assert!(matches!(
            a.send(&huge),
            Err(TransportError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn connected_sockets_ignore_strangers() {
        let (a, b) = loopback_pair().unwrap();
        let stranger = UdpSocket::bind("127.0.0.1:0").unwrap();
        // The stranger writes straight at b's address.
        let b_local = {
            // b's socket address is discoverable through a fresh half.
            // We reconstruct by sending a frame a→b and reading it, then
            // probing: connected sockets drop foreign datagrams.
            a.send(b"legit").unwrap();
            b.recv_timeout(Duration::from_secs(2)).unwrap()
        };
        assert_eq!(b_local, b"legit");
        // A datagram from an unconnected peer must not surface on `a`
        // (a is connected to b only).
        let a_probe = UdpHalf::bind("127.0.0.1:0").unwrap();
        let a_addr = a_probe.local_addr().unwrap(); // unrelated address
        stranger.send_to(b"spoof", a_addr).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(100)),
            Err(TransportError::Timeout)
        );
    }
}
