//! # nb-transport — transport independence layer
//!
//! The paper's scheme is explicitly *transport independent*: entities
//! never deal with the underlying protocol, the broker substrate does.
//! This crate provides that substrate's link layer:
//!
//! * [`endpoint::Endpoint`] — a bidirectional, framed, thread-safe
//!   link half, identical across transports,
//! * [`sim`] — a deterministic in-process network with configurable
//!   per-link latency, jitter, loss and duplication (used to reproduce
//!   the paper's 1–2 ms per-hop cluster links),
//! * [`tcp`] / [`udp`] — real socket transports over the loopback or a
//!   LAN (the two transports benchmarked in §6.1),
//! * [`supervisor`] — supervised links: failure detection, reconnect
//!   with capped backoff, and bounded buffering with in-order replay,
//! * [`metrics`] — RTT/loss/bandwidth estimators feeding the
//!   NETWORK_METRICS traces,
//! * [`clock`] — an injectable clock so failure detection and token
//!   expiry are deterministically testable.

pub mod clock;
pub mod endpoint;
pub mod error;
mod instrument;
pub mod metrics;
pub mod sim;
pub mod supervisor;
pub mod tcp;
pub mod udp;

pub use clock::{Clock, MockClock, SystemClock};
pub use endpoint::{Endpoint, EndpointStats};
pub use error::TransportError;
pub use sim::{LinkConfig, LinkId, SimNetwork};
pub use supervisor::{
    BackoffPolicy, Connector, LinkState, LinkStats, LinkSupervisor, SupervisorConfig,
};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, TransportError>;
