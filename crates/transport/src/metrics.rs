//! Link-quality estimators feeding NETWORK_METRICS traces (§3.3).
//!
//! "The nature of the pings and the corresponding responses allow a
//! broker to determine the loss rates, latency and out-of-order
//! delivery rates over the link."

use std::collections::VecDeque;

/// Exponentially weighted RTT estimator (RFC 6298 shape: smoothed RTT
/// plus variance).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt_ms: Option<f64>,
    rttvar_ms: f64,
    alpha: f64,
    beta: f64,
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator {
            srtt_ms: None,
            rttvar_ms: 0.0,
            alpha: 0.125,
            beta: 0.25,
        }
    }
}

impl RttEstimator {
    /// Creates an estimator with default RFC 6298 gains.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one RTT sample (milliseconds).
    pub fn observe(&mut self, rtt_ms: f64) {
        match self.srtt_ms {
            None => {
                self.srtt_ms = Some(rtt_ms);
                self.rttvar_ms = rtt_ms / 2.0;
            }
            Some(srtt) => {
                self.rttvar_ms =
                    (1.0 - self.beta) * self.rttvar_ms + self.beta * (srtt - rtt_ms).abs();
                self.srtt_ms = Some((1.0 - self.alpha) * srtt + self.alpha * rtt_ms);
            }
        }
    }

    /// Smoothed RTT, if any sample has arrived.
    pub fn srtt_ms(&self) -> Option<f64> {
        self.srtt_ms
    }

    /// RTT variance estimate.
    pub fn rttvar_ms(&self) -> f64 {
        self.rttvar_ms
    }

    /// A conservative retransmission/suspicion timeout:
    /// `srtt + 4·rttvar`, floored at `min_ms`.
    pub fn timeout_ms(&self, min_ms: f64) -> f64 {
        match self.srtt_ms {
            Some(srtt) => (srtt + 4.0 * self.rttvar_ms).max(min_ms),
            None => min_ms,
        }
    }
}

/// Outcome of one ping in the sliding window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PingOutcome {
    /// Response arrived; RTT in ms, and whether it arrived in order.
    Answered {
        /// Round-trip time in milliseconds.
        rtt_ms: f64,
        /// False when a later ping's response overtook this one.
        in_order: bool,
    },
    /// No response within the deadline.
    Lost,
}

/// Sliding window over the last `capacity` ping outcomes. The paper's
/// broker keeps "the response times (and loss rates) associated with
/// the last 10 pings".
#[derive(Debug, Clone)]
pub struct PingWindow {
    window: VecDeque<PingOutcome>,
    capacity: usize,
}

impl PingWindow {
    /// Creates a window over the last `capacity` pings (the paper
    /// uses 10).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        PingWindow {
            window: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records one outcome, evicting the oldest beyond capacity.
    pub fn record(&mut self, outcome: PingOutcome) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(outcome);
    }

    /// Fraction of pings in the window that were lost (0.0 when empty).
    pub fn loss_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let lost = self
            .window
            .iter()
            .filter(|o| matches!(o, PingOutcome::Lost))
            .count();
        lost as f64 / self.window.len() as f64
    }

    /// Fraction of answered pings that arrived out of order.
    pub fn out_of_order_rate(&self) -> f64 {
        let answered: Vec<_> = self
            .window
            .iter()
            .filter_map(|o| match o {
                PingOutcome::Answered { in_order, .. } => Some(*in_order),
                PingOutcome::Lost => None,
            })
            .collect();
        if answered.is_empty() {
            return 0.0;
        }
        answered.iter().filter(|&&ord| !ord).count() as f64 / answered.len() as f64
    }

    /// Mean RTT over answered pings in the window.
    pub fn mean_rtt_ms(&self) -> Option<f64> {
        let rtts: Vec<f64> = self
            .window
            .iter()
            .filter_map(|o| match o {
                PingOutcome::Answered { rtt_ms, .. } => Some(*rtt_ms),
                PingOutcome::Lost => None,
            })
            .collect();
        if rtts.is_empty() {
            None
        } else {
            Some(rtts.iter().sum::<f64>() / rtts.len() as f64)
        }
    }

    /// Number of trailing consecutive losses (drives the paper's
    /// failure suspicion).
    pub fn consecutive_losses(&self) -> usize {
        self.window
            .iter()
            .rev()
            .take_while(|o| matches!(o, PingOutcome::Lost))
            .count()
    }

    /// Number of outcomes currently recorded.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no outcomes are recorded.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

/// Crude bandwidth estimator: bytes acknowledged per elapsed second.
#[derive(Debug, Clone, Default)]
pub struct BandwidthEstimator {
    bytes: u64,
    elapsed_ms: u64,
}

impl BandwidthEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` transferred over `elapsed_ms`.
    pub fn record(&mut self, bytes: u64, elapsed_ms: u64) {
        self.bytes = self.bytes.saturating_add(bytes);
        self.elapsed_ms = self.elapsed_ms.saturating_add(elapsed_ms);
    }

    /// Estimated bytes per second (None until any time has elapsed).
    pub fn bytes_per_sec(&self) -> Option<f64> {
        if self.elapsed_ms == 0 {
            None
        } else {
            Some(self.bytes as f64 * 1000.0 / self.elapsed_ms as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_rtt_sample_initializes() {
        let mut e = RttEstimator::new();
        assert_eq!(e.srtt_ms(), None);
        e.observe(10.0);
        assert_eq!(e.srtt_ms(), Some(10.0));
        assert_eq!(e.rttvar_ms(), 5.0);
    }

    #[test]
    fn rtt_converges_toward_stable_samples() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.observe(20.0);
        }
        let srtt = e.srtt_ms().unwrap();
        assert!((srtt - 20.0).abs() < 0.01, "srtt={srtt}");
        assert!(e.rttvar_ms() < 0.5);
    }

    #[test]
    fn rtt_spike_raises_variance() {
        let mut e = RttEstimator::new();
        for _ in 0..50 {
            e.observe(10.0);
        }
        let var_before = e.rttvar_ms();
        e.observe(100.0);
        assert!(e.rttvar_ms() > var_before);
        assert!(e.srtt_ms().unwrap() > 10.0);
    }

    #[test]
    fn timeout_floors_at_minimum() {
        let mut e = RttEstimator::new();
        assert_eq!(e.timeout_ms(250.0), 250.0);
        e.observe(1.0);
        assert_eq!(e.timeout_ms(250.0), 250.0);
        for _ in 0..20 {
            e.observe(200.0);
        }
        assert!(e.timeout_ms(250.0) > 250.0);
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = PingWindow::new(3);
        for _ in 0..3 {
            w.record(PingOutcome::Lost);
        }
        assert_eq!(w.loss_rate(), 1.0);
        for _ in 0..3 {
            w.record(PingOutcome::Answered {
                rtt_ms: 1.0,
                in_order: true,
            });
        }
        assert_eq!(w.loss_rate(), 0.0);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn loss_rate_is_fractional() {
        let mut w = PingWindow::new(10);
        for i in 0..10 {
            if i % 2 == 0 {
                w.record(PingOutcome::Lost);
            } else {
                w.record(PingOutcome::Answered {
                    rtt_ms: 2.0,
                    in_order: true,
                });
            }
        }
        assert_eq!(w.loss_rate(), 0.5);
    }

    #[test]
    fn out_of_order_rate_only_counts_answered() {
        let mut w = PingWindow::new(10);
        w.record(PingOutcome::Lost);
        w.record(PingOutcome::Answered {
            rtt_ms: 1.0,
            in_order: false,
        });
        w.record(PingOutcome::Answered {
            rtt_ms: 1.0,
            in_order: true,
        });
        assert_eq!(w.out_of_order_rate(), 0.5);
    }

    #[test]
    fn consecutive_losses_track_the_tail() {
        let mut w = PingWindow::new(10);
        w.record(PingOutcome::Answered {
            rtt_ms: 1.0,
            in_order: true,
        });
        w.record(PingOutcome::Lost);
        w.record(PingOutcome::Lost);
        assert_eq!(w.consecutive_losses(), 2);
        w.record(PingOutcome::Answered {
            rtt_ms: 1.0,
            in_order: true,
        });
        assert_eq!(w.consecutive_losses(), 0);
    }

    #[test]
    fn empty_window_metrics_are_neutral() {
        let w = PingWindow::new(5);
        assert!(w.is_empty());
        assert_eq!(w.loss_rate(), 0.0);
        assert_eq!(w.out_of_order_rate(), 0.0);
        assert_eq!(w.mean_rtt_ms(), None);
        assert_eq!(w.consecutive_losses(), 0);
    }

    #[test]
    fn mean_rtt_over_answered_only() {
        let mut w = PingWindow::new(5);
        w.record(PingOutcome::Answered {
            rtt_ms: 2.0,
            in_order: true,
        });
        w.record(PingOutcome::Lost);
        w.record(PingOutcome::Answered {
            rtt_ms: 4.0,
            in_order: true,
        });
        assert_eq!(w.mean_rtt_ms(), Some(3.0));
    }

    #[test]
    fn bandwidth_estimation() {
        let mut b = BandwidthEstimator::new();
        assert_eq!(b.bytes_per_sec(), None);
        b.record(1000, 500);
        assert_eq!(b.bytes_per_sec(), Some(2000.0));
        b.record(1000, 500);
        assert_eq!(b.bytes_per_sec(), Some(2000.0));
    }
}
