//! Process-wide transport aggregates on the global metrics registry.
//!
//! Per-endpoint traffic is tracked by
//! [`EndpointStats`][crate::endpoint::EndpointStats]; the counters
//! here aggregate across every endpoint and transport in the process
//! so a single dump shows total wire activity. Names are catalogued in
//! `docs/OBSERVABILITY.md` under the `transport.*` family.

use std::sync::LazyLock;

use nb_metrics::Counter;

macro_rules! transport_counter {
    ($static_name:ident, $metric:literal) => {
        pub(crate) static $static_name: LazyLock<Counter> =
            LazyLock::new(|| nb_metrics::global().counter($metric));
    };
}

transport_counter!(FRAMES_SENT, "transport.frames.sent");
transport_counter!(BYTES_SENT, "transport.bytes.sent");
transport_counter!(FRAMES_RECEIVED, "transport.frames.received");
transport_counter!(BYTES_RECEIVED, "transport.bytes.received");
transport_counter!(SIM_FRAMES_DROPPED, "transport.sim.frames.dropped");
transport_counter!(SIM_FRAMES_DUPLICATED, "transport.sim.frames.duplicated");
transport_counter!(FRAME_OVERSIZED, "transport.frame.oversized");
transport_counter!(SIM_FAULT_REJECTED, "transport.sim.fault.rejected");
transport_counter!(SIM_FAULT_FLAKY_DROPPED, "transport.sim.fault.flaky_dropped");
transport_counter!(BATCH_WRITES, "transport.batch.writes");
transport_counter!(BATCH_FRAMES, "transport.batch.frames");
transport_counter!(BATCH_COALESCED, "transport.batch.coalesced");
transport_counter!(SIM_FRAMES_DIRECT, "transport.sim.frames.direct");
transport_counter!(LINK_RECONNECTS, "transport.link.reconnects");
transport_counter!(LINK_FRAMES_BUFFERED, "transport.link.frames.buffered");
transport_counter!(LINK_FRAMES_REPLAYED, "transport.link.frames.replayed");
transport_counter!(LINK_FRAMES_SHED, "transport.link.frames.shed");
transport_counter!(SIM_FRAMES_TAMPERED, "transport.sim.frames.tampered");
transport_counter!(SIM_FRAMES_REPLAYED, "transport.sim.frames.replayed");
