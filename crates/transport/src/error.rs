//! Transport error type.

use std::fmt;
use std::io;

/// Errors surfaced by link endpoints.
#[derive(Debug)]
pub enum TransportError {
    /// The peer closed the link (or the simulated network shut down).
    Closed,
    /// No frame arrived within the requested timeout.
    Timeout,
    /// A frame exceeded the maximum frame size.
    FrameTooLarge {
        /// Size of the offending frame.
        size: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// Underlying socket error.
    Io(io::Error),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => write!(f, "link closed"),
            TransportError::Timeout => write!(f, "receive timeout"),
            TransportError::FrameTooLarge { size, max } => {
                write!(f, "frame of {size} bytes exceeds maximum {max}")
            }
            TransportError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl Clone for TransportError {
    /// `io::Error` is not `Clone`; the copy preserves the kind and
    /// message, which is everything callers match on. Needed so a
    /// reader thread can park a typed close reason in a shared cell
    /// and every subsequent `recv` can return it.
    fn clone(&self) -> Self {
        match self {
            TransportError::Closed => TransportError::Closed,
            TransportError::Timeout => TransportError::Timeout,
            TransportError::FrameTooLarge { size, max } => TransportError::FrameTooLarge {
                size: *size,
                max: *max,
            },
            TransportError::Io(e) => TransportError::Io(io::Error::new(e.kind(), e.to_string())),
        }
    }
}

impl PartialEq for TransportError {
    fn eq(&self, other: &Self) -> bool {
        matches!(
            (self, other),
            (TransportError::Closed, TransportError::Closed)
                | (TransportError::Timeout, TransportError::Timeout)
        ) || matches!((self, other),
            (
                TransportError::FrameTooLarge { size: a, max: b },
                TransportError::FrameTooLarge { size: c, max: d }
            ) if a == c && b == d)
    }
}
