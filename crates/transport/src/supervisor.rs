//! Supervised links: failure detection, reconnect with backoff, and
//! bounded buffering so a transient outage does not tear down the
//! broker overlay.
//!
//! The paper's broker network assumes links fail (§5: brokers and
//! connections "may fail at any time"); this module gives every link a
//! supervisor so the failure is *observed, bounded and repaired*
//! instead of silently wedging a worker thread.
//!
//! ## State machine
//!
//! ```text
//!            send/recv failure            backoff retry
//!   Up ───────────────────────▶ Degraded ───▶ Down ───▶ Reconnecting
//!    ▲                                                        │
//!    └──────────── buffer replayed in order ◀─────────────────┘
//! ```
//!
//! * **Up** — frames pass straight through to the transport.
//! * **Degraded** — a failure was just observed (failed send or a dead
//!   reader); the supervisor has been woken but has not yet classified
//!   the outage.
//! * **Down** — the supervisor confirmed the link is unusable.
//! * **Reconnecting** — backoff delays between repair attempts; every
//!   outbound frame is buffered (bounded, drop-oldest) while here.
//!
//! Repair has two modes. **Probe mode** (no [`Connector`]) retries the
//! *same* underlying transport sender — the right model for simulated
//! links where [`SimNetwork::drop_link`][crate::sim::SimNetwork]
//! faults heal in place. **Connector mode** redials a fresh
//! [`Endpoint`] on each attempt and swaps it into the receive pump —
//! the right model for TCP, where a broken stream can never be reused.
//!
//! ## Send contract
//!
//! A supervised endpoint's `send` returns `Ok` when the frame was
//! either transmitted or buffered for replay; the link-layer promise
//! is *eventual in-order delivery while the buffer holds* (oldest
//! frames are shed first past capacity, counted in
//! `transport.link.frames.shed`). Frame-size violations still fail
//! immediately with [`TransportError::FrameTooLarge`].

use crate::endpoint::{Endpoint, FaultCell, FrameSender};
use crate::error::TransportError;
use crate::instrument;
use crate::Result;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Health of a supervised link (see the module docs for the cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkState {
    /// Frames flow directly through the transport.
    Up,
    /// A failure was observed; the supervisor is waking up.
    Degraded,
    /// The supervisor confirmed the link is unusable.
    Down,
    /// Between repair attempts; outbound frames are buffered.
    Reconnecting,
}

impl LinkState {
    /// Stable lower-case name (metric/log label).
    pub fn name(&self) -> &'static str {
        match self {
            LinkState::Up => "up",
            LinkState::Degraded => "degraded",
            LinkState::Down => "down",
            LinkState::Reconnecting => "reconnecting",
        }
    }
}

/// Capped exponential backoff with deterministic jitter.
///
/// The delay before attempt `n` is
/// `min(initial * multiplier^n, max) * (1 + jitter * (u - 0.5))` where
/// `u ∈ [0, 1)` is derived by hashing `(seed, n)` — the same seed and
/// attempt always produce the same delay, so outage tests are
/// reproducible while distinct links (distinct seeds) still decorrelate
/// their retry storms.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Ceiling on the exponential growth.
    pub max: Duration,
    /// Growth factor per attempt.
    pub multiplier: f64,
    /// Jitter fraction: the delay is spread over `±jitter/2` of itself.
    pub jitter: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            initial: Duration::from_millis(50),
            max: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 0.25,
        }
    }
}

impl BackoffPolicy {
    /// An aggressive policy for tests and simulated networks.
    pub fn fast() -> Self {
        BackoffPolicy {
            initial: Duration::from_millis(5),
            max: Duration::from_millis(50),
            multiplier: 2.0,
            jitter: 0.25,
        }
    }

    /// The deterministic delay before retry attempt `attempt`.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let base = self.initial.as_secs_f64() * self.multiplier.powi(attempt.min(63) as i32);
        let capped = base.min(self.max.as_secs_f64());
        let h = splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        Duration::from_secs_f64(capped * (1.0 + self.jitter * (unit - 0.5)))
    }
}

/// SplitMix64 — tiny, well-mixed hash for jitter derivation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Redials a replacement [`Endpoint`] for connector-mode repair.
pub trait Connector: Send + Sync {
    /// Attempts to establish a fresh link to the same peer.
    fn connect(&self) -> Result<Endpoint>;
}

/// Observes link-state transitions, called as `(old, new)`.
///
/// Invoked with the supervisor's internal lock held: observers must be
/// quick and must not call back into the supervisor.
pub type StateObserver = Arc<dyn Fn(LinkState, LinkState) + Send + Sync>;

/// Runs after a completed repair cycle (Down → Up), from the
/// supervisor thread with **no locks held**. The argument is the
/// total completed repair count.
///
/// Unlike [`StateObserver`], a reconnect hook may send on the
/// supervised endpoint — that is its purpose: transport repair alone
/// cannot tell whether the *peer process* survived the outage. If the
/// peer restarted, its session state (handshakes, subscription sync)
/// is gone, so the application layer must re-run its session
/// establishment. Brokers use this to replay the neighbour handshake
/// after every repair.
pub type ReconnectHook = Arc<dyn Fn(u64) + Send + Sync>;

/// Tuning for one [`LinkSupervisor`].
#[derive(Clone, Default)]
pub struct SupervisorConfig {
    /// Retry pacing during an outage.
    pub backoff: BackoffPolicy,
    /// Maximum outbound frames held during an outage (drop-oldest
    /// past this). Zero means "no buffering" — every frame sent while
    /// the link is not Up is shed.
    pub buffer_capacity: usize,
    /// Seed for deterministic backoff jitter (give each link its own).
    pub seed: u64,
    /// Optional transition hook (metrics, telemetry spans).
    pub observer: Option<StateObserver>,
    /// Optional post-repair hook (session re-establishment). See
    /// [`ReconnectHook`].
    pub on_reconnect: Option<ReconnectHook>,
}

impl std::fmt::Debug for SupervisorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisorConfig")
            .field("backoff", &self.backoff)
            .field("buffer_capacity", &self.buffer_capacity)
            .field("seed", &self.seed)
            .field("observer", &self.observer.is_some())
            .field("on_reconnect", &self.on_reconnect.is_some())
            .finish()
    }
}

impl SupervisorConfig {
    /// A config suited to tests: fast backoff, modest buffer.
    pub fn fast() -> Self {
        SupervisorConfig {
            backoff: BackoffPolicy::fast(),
            buffer_capacity: 1024,
            seed: 0,
            observer: None,
            on_reconnect: None,
        }
    }

    /// Production-ish defaults: [`BackoffPolicy::default`], 1024-frame
    /// buffer.
    pub fn standard() -> Self {
        SupervisorConfig {
            backoff: BackoffPolicy::default(),
            buffer_capacity: 1024,
            seed: 0,
            observer: None,
            on_reconnect: None,
        }
    }

    /// Sets the jitter seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the outage buffer capacity (builder style).
    pub fn with_buffer_capacity(mut self, capacity: usize) -> Self {
        self.buffer_capacity = capacity;
        self
    }

    /// Installs a state-transition observer (builder style).
    pub fn with_observer(mut self, observer: StateObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Installs a post-repair hook (builder style). See
    /// [`ReconnectHook`].
    pub fn with_reconnect_hook(mut self, hook: ReconnectHook) -> Self {
        self.on_reconnect = Some(hook);
        self
    }
}

/// Point-in-time counters for one supervised link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Current health.
    pub state: LinkState,
    /// Completed repair cycles (Down → Up).
    pub reconnects: u64,
    /// Frames currently queued for replay.
    pub buffered: usize,
    /// Total frames ever buffered during outages.
    pub buffered_total: u64,
    /// Buffered frames successfully replayed after repair.
    pub replayed: u64,
    /// Buffered frames dropped because the buffer overflowed.
    pub shed: u64,
    /// Direct sends that failed and triggered supervision.
    pub send_failures: u64,
}

struct SupInner {
    state: LinkState,
    buffer: VecDeque<Vec<u8>>,
    sender: Arc<dyn FrameSender>,
    reconnects: u64,
    buffered_total: u64,
    replayed: u64,
    shed: u64,
    send_failures: u64,
}

struct SupShared {
    inner: Mutex<SupInner>,
    cv: Condvar,
    stop: AtomicBool,
    cfg: SupervisorConfig,
}

impl SupShared {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Transitions the state and fires the observer. Call with the
    /// lock held; no-op when the state is unchanged.
    fn set_state(&self, inner: &mut SupInner, new: LinkState) {
        let old = inner.state;
        if old == new {
            return;
        }
        inner.state = new;
        if let Some(observer) = &self.cfg.observer {
            observer(old, new);
        }
        self.cv.notify_all();
    }

    /// Appends a frame to the outage buffer, shedding the oldest frame
    /// when past capacity. Call with the lock held.
    fn buffer_frame(&self, inner: &mut SupInner, frame: Vec<u8>) {
        if self.cfg.buffer_capacity == 0 {
            inner.shed += 1;
            instrument::LINK_FRAMES_SHED.inc();
            return;
        }
        while inner.buffer.len() >= self.cfg.buffer_capacity {
            inner.buffer.pop_front();
            inner.shed += 1;
            instrument::LINK_FRAMES_SHED.inc();
        }
        inner.buffer.push_back(frame);
        inner.buffered_total += 1;
        instrument::LINK_FRAMES_BUFFERED.inc();
        self.cv.notify_all();
    }

    /// Records a failure observed outside the supervisor thread (a
    /// failed direct send or a dead reader) and wakes the supervisor.
    fn note_failure(&self) {
        let mut inner = self.inner.lock();
        if inner.state == LinkState::Up {
            self.set_state(&mut inner, LinkState::Degraded);
        }
        self.cv.notify_all();
    }
}

/// The facade sender handed to the supervised [`Endpoint`].
struct SupervisedSender {
    shared: Arc<SupShared>,
}

impl FrameSender for SupervisedSender {
    fn send_frame(&self, frame: &[u8]) -> Result<()> {
        if self.shared.stopped() {
            return Err(TransportError::Closed);
        }
        let sender = {
            let mut inner = self.shared.inner.lock();
            if inner.state != LinkState::Up {
                self.shared.buffer_frame(&mut inner, frame.to_vec());
                return Ok(());
            }
            Arc::clone(&inner.sender)
        };
        match sender.send_frame(frame) {
            Ok(()) => Ok(()),
            Err(_) => {
                // The link just broke under us: keep the frame, flag
                // the outage, and report success per the send contract.
                let mut inner = self.shared.inner.lock();
                inner.send_failures += 1;
                self.shared.buffer_frame(&mut inner, frame.to_vec());
                if inner.state == LinkState::Up {
                    self.shared.set_state(&mut inner, LinkState::Degraded);
                }
                Ok(())
            }
        }
    }
}

/// Owns the supervision threads for one link; dropping it stops them.
///
/// Created by [`LinkSupervisor::supervise`] (probe mode) or
/// [`LinkSupervisor::supervise_with_connector`] (redial mode), which
/// also return the supervised facade [`Endpoint`] the application
/// should use in place of the raw one.
pub struct LinkSupervisor {
    shared: Arc<SupShared>,
    pump: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
}

impl LinkSupervisor {
    /// Supervises `endpoint` in probe mode: repair retries the same
    /// underlying transport sender, using the oldest buffered frame as
    /// the probe. Suited to simulated links whose faults heal in place
    /// ([`SimNetwork::restore`][crate::sim::SimNetwork::restore]); not
    /// suited to TCP, where a broken stream never recovers — use
    /// [`LinkSupervisor::supervise_with_connector`] there.
    pub fn supervise(endpoint: Endpoint, cfg: SupervisorConfig) -> (Endpoint, LinkSupervisor) {
        Self::spawn(endpoint, None, cfg)
    }

    /// Supervises `endpoint` in connector mode: each repair attempt
    /// redials a fresh endpoint via `connector`, swaps it into the
    /// receive pump, then replays the outage buffer in order.
    pub fn supervise_with_connector(
        endpoint: Endpoint,
        connector: Box<dyn Connector>,
        cfg: SupervisorConfig,
    ) -> (Endpoint, LinkSupervisor) {
        Self::spawn(endpoint, Some(connector), cfg)
    }

    fn spawn(
        endpoint: Endpoint,
        connector: Option<Box<dyn Connector>>,
        cfg: SupervisorConfig,
    ) -> (Endpoint, LinkSupervisor) {
        let max_frame_len = endpoint.max_frame_len();
        let shared = Arc::new(SupShared {
            inner: Mutex::new(SupInner {
                state: LinkState::Up,
                buffer: VecDeque::new(),
                sender: endpoint.sender(),
                reconnects: 0,
                buffered_total: 0,
                replayed: 0,
                shed: 0,
                send_failures: 0,
            }),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            cfg,
        });
        let (facade_tx, facade_rx) = unbounded();
        let (ep_tx, ep_rx) = unbounded::<Endpoint>();
        let pump_shared = Arc::clone(&shared);
        let pump = std::thread::Builder::new()
            .name("link-pump".to_string())
            .spawn(move || pump_loop(&pump_shared, endpoint, &facade_tx, &ep_rx))
            .expect("spawn link pump");
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("link-supervisor".to_string())
            .spawn(move || supervisor_loop(&worker_shared, connector.as_deref(), &ep_tx))
            .expect("spawn link supervisor");
        let facade = Endpoint::from_parts_limited(
            Arc::new(SupervisedSender {
                shared: Arc::clone(&shared),
            }),
            facade_rx,
            max_frame_len,
            FaultCell::new(),
        );
        (
            facade,
            LinkSupervisor {
                shared,
                pump: Some(pump),
                worker: Some(worker),
            },
        )
    }

    /// Current health of the link.
    pub fn state(&self) -> LinkState {
        self.shared.inner.lock().state
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> LinkStats {
        let inner = self.shared.inner.lock();
        LinkStats {
            state: inner.state,
            reconnects: inner.reconnects,
            buffered: inner.buffer.len(),
            buffered_total: inner.buffered_total,
            replayed: inner.replayed,
            shed: inner.shed,
            send_failures: inner.send_failures,
        }
    }

    /// Blocks until the link reaches `target` (true) or `timeout`
    /// elapses (false). Condition-variable based — no polling.
    pub fn wait_for_state(&self, target: LinkState, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock();
        while inner.state != target {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            self.shared.cv.wait_for(&mut inner, left);
        }
        true
    }

    /// Blocks until at least `n` repair cycles have completed (true)
    /// or `timeout` elapses (false).
    pub fn wait_for_reconnects(&self, n: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock();
        while inner.reconnects < n {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            self.shared.cv.wait_for(&mut inner, left);
        }
        true
    }

    /// Stops the supervision threads. The facade endpoint's sends fail
    /// with [`TransportError::Closed`] afterwards.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.pump.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LinkSupervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Forwards frames from the live underlying endpoint into the facade.
/// On a receive error it flags the failure and blocks until the
/// supervisor delivers a replacement endpoint (connector mode) or the
/// supervisor exits.
fn pump_loop(
    shared: &SupShared,
    mut current: Endpoint,
    facade_tx: &Sender<Vec<u8>>,
    ep_rx: &Receiver<Endpoint>,
) {
    loop {
        if shared.stopped() {
            return;
        }
        match current.recv_timeout(Duration::from_millis(100)) {
            Ok(frame) => {
                if facade_tx.send(frame).is_err() {
                    return; // facade endpoint dropped
                }
            }
            Err(TransportError::Timeout) => continue,
            Err(_) => {
                shared.note_failure();
                match ep_rx.recv() {
                    Ok(replacement) => {
                        current = replacement;
                        // Collapse any queued re-replacements to the newest.
                        while let Ok(next) = ep_rx.try_recv() {
                            current = next;
                        }
                    }
                    Err(_) => return, // supervisor exited
                }
            }
        }
    }
}

/// Sleeps `total` in slices so shutdown is prompt; false if stopped.
fn sleep_interruptible(shared: &SupShared, total: Duration) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if shared.stopped() {
            return false;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return true;
        }
        std::thread::sleep(left.min(Duration::from_millis(25)));
    }
}

fn supervisor_loop(shared: &SupShared, connector: Option<&dyn Connector>, ep_tx: &Sender<Endpoint>) {
    loop {
        // Wait for a failure report.
        {
            let mut inner = shared.inner.lock();
            while inner.state == LinkState::Up && !shared.stopped() {
                shared.cv.wait(&mut inner);
            }
            if shared.stopped() {
                return;
            }
            shared.set_state(&mut inner, LinkState::Down);
        }
        // Repair loop: backoff, attempt, replay.
        let mut attempt: u32 = 0;
        'repair: loop {
            {
                let mut inner = shared.inner.lock();
                shared.set_state(&mut inner, LinkState::Reconnecting);
            }
            if !sleep_interruptible(shared, shared.cfg.backoff.delay(attempt, shared.cfg.seed)) {
                return;
            }
            let mut attempt_verified = false;
            if let Some(connector) = connector {
                match connector.connect() {
                    Ok(replacement) => {
                        let sender = replacement.sender();
                        if ep_tx.send(replacement).is_err() {
                            return; // pump gone: nothing left to supervise
                        }
                        shared.inner.lock().sender = sender;
                        attempt_verified = true;
                    }
                    Err(_) => {
                        attempt = attempt.saturating_add(1);
                        continue 'repair;
                    }
                }
            }
            // Replay the outage buffer in order. In probe mode the
            // first buffered frame doubles as the liveness probe; with
            // an empty buffer we wait for traffic rather than flap.
            loop {
                let next = {
                    let mut inner = shared.inner.lock();
                    loop {
                        if shared.stopped() {
                            return;
                        }
                        if let Some(front) = inner.buffer.front() {
                            break Some((front.clone(), Arc::clone(&inner.sender)));
                        }
                        if attempt_verified {
                            // Buffer drained (or empty after a verified
                            // redial): the link is healthy again.
                            inner.reconnects += 1;
                            instrument::LINK_RECONNECTS.inc();
                            shared.set_state(&mut inner, LinkState::Up);
                            break None;
                        }
                        shared.cv.wait(&mut inner);
                    }
                };
                let Some((frame, sender)) = next else {
                    break 'repair;
                };
                match sender.send_frame(&frame) {
                    Ok(()) => {
                        attempt_verified = true;
                        attempt = 0;
                        let mut inner = shared.inner.lock();
                        inner.buffer.pop_front();
                        inner.replayed += 1;
                        instrument::LINK_FRAMES_REPLAYED.inc();
                    }
                    Err(_) => {
                        attempt = attempt.saturating_add(1);
                        continue 'repair;
                    }
                }
            }
        }
        // Repair finished (state is Up). Fire the session hook with no
        // locks held: it may send on the supervised endpoint to re-run
        // application handshakes against a possibly-restarted peer.
        if let Some(hook) = &shared.cfg.on_reconnect {
            let count = shared.inner.lock().reconnects;
            hook(count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{LinkConfig, SimNetwork};
    use crate::tcp;

    #[test]
    fn healthy_link_passes_frames_through() {
        let net = SimNetwork::new(20);
        let (a, b) = net.symmetric_link(LinkConfig::instant());
        let (sa, sup) = LinkSupervisor::supervise(a, SupervisorConfig::fast());
        sa.send(b"hello").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"hello");
        b.send(b"reply").unwrap();
        assert_eq!(sa.recv_timeout(Duration::from_secs(1)).unwrap(), b"reply");
        assert_eq!(sup.state(), LinkState::Up);
        assert_eq!(sup.stats().reconnects, 0);
    }

    #[test]
    fn outage_buffers_then_replays_in_order() {
        let net = SimNetwork::new(21);
        let (a, b, id) = net.symmetric_link_with_id(LinkConfig::instant());
        let (sa, sup) = LinkSupervisor::supervise(a, SupervisorConfig::fast().with_seed(21));
        sa.send(&[0u8]).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), vec![0]);

        net.drop_link(id);
        for i in 1..=5u8 {
            // Supervised contract: buffered sends still report Ok.
            sa.send(&[i]).unwrap();
        }
        // The first failed send flips the link out of Up synchronously.
        assert_ne!(sup.state(), LinkState::Up);
        assert!(sup.stats().buffered >= 1);

        net.restore(id);
        assert!(
            sup.wait_for_state(LinkState::Up, Duration::from_secs(5)),
            "link never repaired: {:?}",
            sup.stats()
        );
        for i in 1..=5u8 {
            assert_eq!(
                b.recv_timeout(Duration::from_secs(1)).unwrap(),
                vec![i],
                "replay out of order"
            );
        }
        // Exactly once: nothing extra follows.
        assert_eq!(
            b.recv_timeout(Duration::from_millis(100)),
            Err(TransportError::Timeout)
        );
        let stats = sup.stats();
        assert!(stats.reconnects >= 1);
        assert_eq!(stats.replayed, 5);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn overflow_sheds_oldest_frames() {
        let net = SimNetwork::new(22);
        let (a, b, id) = net.symmetric_link_with_id(LinkConfig::instant());
        let cfg = SupervisorConfig::fast().with_buffer_capacity(3).with_seed(22);
        let (sa, sup) = LinkSupervisor::supervise(a, cfg);
        net.drop_link(id);
        for i in 1..=5u8 {
            sa.send(&[i]).unwrap();
        }
        net.restore(id);
        assert!(sup.wait_for_state(LinkState::Up, Duration::from_secs(5)));
        // Oldest two were shed; the last three survive, in order.
        for i in 3..=5u8 {
            assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), vec![i]);
        }
        assert_eq!(
            b.recv_timeout(Duration::from_millis(100)),
            Err(TransportError::Timeout)
        );
        assert_eq!(sup.stats().shed, 2);
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = BackoffPolicy {
            initial: Duration::from_millis(100),
            max: Duration::from_secs(1),
            multiplier: 2.0,
            jitter: 0.5,
        };
        assert_eq!(p.delay(3, 42), p.delay(3, 42));
        assert_ne!(p.delay(3, 42), p.delay(4, 42));
        assert_ne!(p.delay(3, 42), p.delay(3, 43));
        // Past the cap every delay stays within the jitter envelope.
        for attempt in 10..20 {
            let d = p.delay(attempt, 7);
            assert!(d <= Duration::from_millis(1250), "attempt {attempt}: {d:?}");
            assert!(d >= Duration::from_millis(750), "attempt {attempt}: {d:?}");
        }
    }

    #[test]
    fn observer_sees_the_full_cycle() {
        let net = SimNetwork::new(23);
        let (a, _b, id) = net.symmetric_link_with_id(LinkConfig::instant());
        let seen: Arc<Mutex<Vec<(LinkState, LinkState)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let cfg = SupervisorConfig::fast()
            .with_seed(23)
            .with_observer(Arc::new(move |old, new| sink.lock().push((old, new))));
        let (sa, sup) = LinkSupervisor::supervise(a, cfg);
        net.drop_link(id);
        sa.send(b"x").unwrap();
        net.restore(id);
        assert!(sup.wait_for_state(LinkState::Up, Duration::from_secs(5)));
        let transitions = seen.lock().clone();
        let states: Vec<LinkState> = transitions.iter().map(|(_, new)| *new).collect();
        assert!(states.contains(&LinkState::Degraded), "{states:?}");
        assert!(states.contains(&LinkState::Down), "{states:?}");
        assert!(states.contains(&LinkState::Reconnecting), "{states:?}");
        assert_eq!(states.last(), Some(&LinkState::Up), "{states:?}");
    }

    struct Redial(std::net::SocketAddr);
    impl Connector for Redial {
        fn connect(&self) -> Result<Endpoint> {
            tcp::connect(self.0)
        }
    }

    #[test]
    fn connector_mode_redials_a_broken_tcp_link() {
        let listener = tcp::TcpTransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = tcp::connect(addr).unwrap();
        let server1 = listener.accept().unwrap();
        let (sc, sup) = LinkSupervisor::supervise_with_connector(
            client,
            Box::new(Redial(addr)),
            SupervisorConfig::fast().with_seed(24),
        );
        sc.send(b"one").unwrap();
        assert_eq!(
            server1.recv_timeout(Duration::from_secs(2)).unwrap(),
            b"one"
        );

        // Keep the listener alive so the redial lands; accept the
        // replacement connection from a helper thread.
        let accept2 = std::thread::spawn(move || listener.accept().unwrap());
        drop(server1); // peer dies → pump sees Closed → supervisor redials
        assert!(
            sup.wait_for_reconnects(1, Duration::from_secs(5)),
            "never redialed: {:?}",
            sup.stats()
        );
        let server2 = accept2.join().unwrap();
        sc.send(b"two").unwrap();
        assert_eq!(
            server2.recv_timeout(Duration::from_secs(2)).unwrap(),
            b"two"
        );
        // The receive pump follows the swap too.
        server2.send(b"back").unwrap();
        assert_eq!(sc.recv_timeout(Duration::from_secs(2)).unwrap(), b"back");
    }

    #[test]
    fn reconnect_hook_fires_after_repair_and_can_send() {
        let net = SimNetwork::new(26);
        let (a, b, id) = net.symmetric_link_with_id(LinkConfig::instant());
        // The hook sends a "session resync" frame through the repaired
        // link via a slot filled with the facade's sender (the pattern
        // the broker uses for its neighbour re-handshake).
        let slot: Arc<Mutex<Option<Arc<dyn FrameSender>>>> = Arc::new(Mutex::new(None));
        let fired: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let hook_slot = Arc::clone(&slot);
        let hook_fired = Arc::clone(&fired);
        let cfg = SupervisorConfig::fast()
            .with_seed(26)
            .with_reconnect_hook(Arc::new(move |count| {
                hook_fired.lock().push(count);
                if let Some(sender) = hook_slot.lock().clone() {
                    let _ = sender.send_frame(b"resync");
                }
            }));
        let (sa, sup) = LinkSupervisor::supervise(a, cfg);
        *slot.lock() = Some(sa.sender());

        sa.send(b"pre").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"pre");
        assert!(fired.lock().is_empty(), "hook must not fire while Up");

        net.drop_link(id);
        sa.send(b"during").unwrap();
        net.restore(id);
        assert!(sup.wait_for_state(LinkState::Up, Duration::from_secs(5)));

        // The buffered frame replays first, then the hook's resync
        // frame goes out on the repaired link.
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"during");
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"resync");
        let fired = fired.lock().clone();
        assert_eq!(fired.len(), 1, "one repair cycle → one hook call");
        assert_eq!(fired[0], 1);
    }

    #[test]
    fn shutdown_fails_sends_fast() {
        let net = SimNetwork::new(25);
        let (a, _b) = net.symmetric_link(LinkConfig::instant());
        let (sa, mut sup) = LinkSupervisor::supervise(a, SupervisorConfig::fast());
        sup.shutdown();
        assert_eq!(sa.send(b"x"), Err(TransportError::Closed));
    }
}
