//! Injectable time source.
//!
//! The paper relies on NTP-synchronized wall clocks (token validity,
//! ping timestamps). Production code uses [`SystemClock`];
//! failure-detection and expiry tests use [`MockClock`], which is
//! advanced explicitly, making timing-sensitive behaviour
//! deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A source of wall-clock time in milliseconds since the Unix epoch.
pub trait Clock: Send + Sync {
    /// Current time, ms since epoch.
    fn now_ms(&self) -> u64;
}

/// The real system clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before Unix epoch")
            .as_millis() as u64
    }
}

/// A manually advanced clock for deterministic tests.
#[derive(Debug, Clone, Default)]
pub struct MockClock {
    now: Arc<AtomicU64>,
}

impl MockClock {
    /// Creates a clock reading `start_ms`.
    pub fn new(start_ms: u64) -> Self {
        MockClock {
            now: Arc::new(AtomicU64::new(start_ms)),
        }
    }

    /// Advances the clock by `delta_ms`.
    pub fn advance(&self, delta_ms: u64) {
        self.now.fetch_add(delta_ms, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute instant.
    pub fn set(&self, now_ms: u64) {
        self.now.store(now_ms, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// Shared, dynamically dispatched clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience constructor for a shared system clock.
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_enough() {
        let c = SystemClock;
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        // Sanity: after 2020-01-01.
        assert!(a > 1_577_836_800_000);
    }

    #[test]
    fn mock_clock_advances_explicitly() {
        let c = MockClock::new(1000);
        assert_eq!(c.now_ms(), 1000);
        c.advance(500);
        assert_eq!(c.now_ms(), 1500);
        c.set(99);
        assert_eq!(c.now_ms(), 99);
    }

    #[test]
    fn mock_clock_clones_share_state() {
        let c = MockClock::new(0);
        let c2 = c.clone();
        c.advance(10);
        assert_eq!(c2.now_ms(), 10);
    }
}
