//! Injectable time source.
//!
//! The paper relies on NTP-synchronized wall clocks (token validity,
//! ping timestamps). Production code uses [`SystemClock`];
//! failure-detection and expiry tests use [`MockClock`], which is
//! advanced explicitly, making timing-sensitive behaviour
//! deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A source of wall-clock time in milliseconds since the Unix epoch.
pub trait Clock: Send + Sync {
    /// Current time, ms since epoch.
    fn now_ms(&self) -> u64;
}

/// The real system clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before Unix epoch")
            .as_millis() as u64
    }
}

/// A manually advanced clock for deterministic tests.
#[derive(Debug, Clone, Default)]
pub struct MockClock {
    now: Arc<AtomicU64>,
}

impl MockClock {
    /// Creates a clock reading `start_ms`.
    pub fn new(start_ms: u64) -> Self {
        MockClock {
            now: Arc::new(AtomicU64::new(start_ms)),
        }
    }

    /// Advances the clock by `delta_ms`.
    pub fn advance(&self, delta_ms: u64) {
        self.now.fetch_add(delta_ms, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute instant.
    pub fn set(&self, now_ms: u64) {
        self.now.store(now_ms, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// Shared, dynamically dispatched clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience constructor for a shared system clock.
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock)
}

/// A clock-driven periodic schedule.
///
/// `due()` is edge-triggered against the injected [`Clock`]: it
/// returns `true` at most once per elapsed interval and is safe to
/// poll from several threads (first poller wins the tick). Because it
/// reads the shared clock rather than a thread timer, schedules built
/// on a [`MockClock`] fire deterministically when tests advance
/// simulated time — this is what gives the telemetry publish cadence
/// (`nb-obs`) reproducible sequence numbers under the sim transport.
pub struct Ticker {
    clock: SharedClock,
    interval_ms: u64,
    next_due: AtomicU64,
}

impl std::fmt::Debug for Ticker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticker")
            .field("interval_ms", &self.interval_ms)
            .field("next_due", &self.next_due)
            .finish()
    }
}

impl Ticker {
    /// Creates a schedule firing every `interval_ms`, first due one
    /// full interval from now. `interval_ms` is clamped to ≥ 1.
    pub fn new(clock: SharedClock, interval_ms: u64) -> Self {
        let interval_ms = interval_ms.max(1);
        let next = clock.now_ms() + interval_ms;
        Ticker {
            clock,
            interval_ms,
            next_due: AtomicU64::new(next),
        }
    }

    /// The configured interval in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Milliseconds-since-epoch of the next scheduled firing.
    pub fn next_due_ms(&self) -> u64 {
        self.next_due.load(Ordering::SeqCst)
    }

    /// Returns `true` exactly once per due tick.
    ///
    /// If more than one interval elapsed since the last poll the
    /// schedule re-anchors at `now + interval` (one tick fires, missed
    /// ones are skipped) — a slow poller degrades to a lower cadence
    /// instead of bursting.
    pub fn due(&self) -> bool {
        let now = self.clock.now_ms();
        loop {
            let next = self.next_due.load(Ordering::SeqCst);
            if now < next {
                return false;
            }
            if self
                .next_due
                .compare_exchange(next, now + self.interval_ms, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_enough() {
        let c = SystemClock;
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        // Sanity: after 2020-01-01.
        assert!(a > 1_577_836_800_000);
    }

    #[test]
    fn mock_clock_advances_explicitly() {
        let c = MockClock::new(1000);
        assert_eq!(c.now_ms(), 1000);
        c.advance(500);
        assert_eq!(c.now_ms(), 1500);
        c.set(99);
        assert_eq!(c.now_ms(), 99);
    }

    #[test]
    fn mock_clock_clones_share_state() {
        let c = MockClock::new(0);
        let c2 = c.clone();
        c.advance(10);
        assert_eq!(c2.now_ms(), 10);
    }

    #[test]
    fn ticker_fires_once_per_interval() {
        let mock = MockClock::new(1000);
        let t = Ticker::new(Arc::new(mock.clone()), 100);
        assert!(!t.due());
        mock.advance(99);
        assert!(!t.due());
        mock.advance(1);
        assert!(t.due());
        assert!(!t.due(), "edge-triggered: one true per tick");
        mock.advance(100);
        assert!(t.due());
    }

    #[test]
    fn ticker_skips_missed_intervals() {
        let mock = MockClock::new(0);
        let t = Ticker::new(Arc::new(mock.clone()), 10);
        mock.advance(1000);
        assert!(t.due());
        assert!(!t.due(), "missed ticks are skipped, not burst");
        assert_eq!(t.next_due_ms(), 1010);
    }

    #[test]
    fn ticker_zero_interval_is_clamped() {
        let mock = MockClock::new(0);
        let t = Ticker::new(Arc::new(mock.clone()), 0);
        assert_eq!(t.interval_ms(), 1);
        mock.advance(1);
        assert!(t.due());
    }
}
