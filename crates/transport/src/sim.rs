//! Deterministic simulated network.
//!
//! A [`SimNetwork`] owns a delivery-scheduler thread. Each simulated
//! link direction has a [`LinkConfig`] with latency, jitter, loss and
//! duplication; frames are delivered by the scheduler at
//! `send_time + latency + U(0, jitter)`, dropped with probability
//! `loss_rate`, and duplicated with probability `duplicate_rate`.
//!
//! NaradaBrokering's measured per-hop latency in cluster settings is
//! "around 1–2 milliseconds" (§6.1); [`LinkConfig::default`] models
//! exactly that, so multi-hop benchmark topologies built on simulated
//! links reproduce the paper's routing substrate.
//!
//! ## Fault injection
//!
//! Every link has a [`LinkId`]; the network can script outages against
//! it while the endpoints stay alive: [`SimNetwork::drop_link`] makes
//! sends fail with [`TransportError::Closed`] and discards in-flight
//! frames (a cable pull), [`SimNetwork::flaky`] drops frames with a
//! given probability for a bounded window (a deteriorating path),
//! [`SimNetwork::partition`] downs a whole set of links at once, and
//! [`SimNetwork::restore`] heals. Combined with the seeded RNG this
//! makes outage scenarios scriptable and reproducible — the substrate
//! the supervised-link layer ([`crate::supervisor`]) is tested against.
//!
//! ## Adversarial hooks
//!
//! Beyond benign faults, a link can host an *adversary* — the red-team
//! substrate the runtime-verification monitors (`nb-monitor`) are
//! proven against. [`SimNetwork::tamper`] installs a frame-rewriting
//! function on a link (forge a token, strip a TTL section, flip a
//! signature byte: anything a man-in-the-middle could do to bytes in
//! flight), and [`SimNetwork::replay`] re-sends every frame `copies`
//! extra times (a replay attack, distinct from the probabilistic
//! `duplicate_rate` in that it duplicates *every* frame
//! deterministically). [`SimNetwork::clear_adversary`] stands the
//! attacker down. Tampered and replayed frames are counted in
//! `transport.sim.frames.tampered` / `transport.sim.frames.replayed`.

use crate::endpoint::{Endpoint, FrameSender};
use crate::error::TransportError;
use crate::Result;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifies one bidirectional link of a [`SimNetwork`] for fault
/// injection. Both directions share the id: dropping it severs the
/// link like a pulled cable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(u64);

/// Scripted fault state of one link (absent = healthy).
#[derive(Debug, Clone, Copy)]
enum Fault {
    /// Sends fail with [`TransportError::Closed`]; nothing is delivered.
    Down,
    /// Frames are dropped with probability `p` until `until`, then the
    /// link heals itself.
    Flaky { p: f64, until: Instant },
}

/// A frame-rewriting adversary function: receives each frame crossing
/// the link and returns the bytes that actually go on the wire.
pub type TamperFn = Arc<dyn Fn(Vec<u8>) -> Vec<u8> + Send + Sync>;

/// Scripted man-in-the-middle behaviour on one link (absent = honest).
#[derive(Clone, Default)]
struct Adversary {
    /// Rewrites every frame before it is scheduled.
    tamper: Option<TamperFn>,
    /// Extra copies of every frame (deterministic replay attack).
    replay: u32,
}

/// Per-direction link behaviour.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Base one-way latency.
    pub latency: Duration,
    /// Additional uniform random delay in `[0, jitter]`.
    pub jitter: Duration,
    /// Probability a frame is silently dropped.
    pub loss_rate: f64,
    /// Probability a frame is delivered twice.
    pub duplicate_rate: f64,
}

impl Default for LinkConfig {
    /// The paper's cluster link: ~1.5 ms ± 0.5 ms, lossless.
    fn default() -> Self {
        LinkConfig {
            latency: Duration::from_micros(1500),
            jitter: Duration::from_micros(500),
            loss_rate: 0.0,
            duplicate_rate: 0.0,
        }
    }
}

impl LinkConfig {
    /// A zero-latency, lossless link (fast tests).
    pub fn instant() -> Self {
        LinkConfig {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            loss_rate: 0.0,
            duplicate_rate: 0.0,
        }
    }

    /// A lossy link with the given drop probability.
    pub fn lossy(loss_rate: f64) -> Self {
        LinkConfig {
            loss_rate,
            ..LinkConfig::default()
        }
    }

    /// Sets the base latency (builder style).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }
}

struct Delivery {
    deliver_at: Instant,
    seq: u64,
    frame: Vec<u8>,
    dest: Sender<Vec<u8>>,
    link: LinkId,
}

impl PartialEq for Delivery {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Delivery {}
impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delivery {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Shared {
    queue: Mutex<BinaryHeap<Delivery>>,
    cv: Condvar,
    stop: AtomicBool,
    seq: AtomicU64,
    rng: Mutex<StdRng>,
    next_link: AtomicU64,
    faults: Mutex<HashMap<LinkId, Fault>>,
    adversaries: Mutex<HashMap<LinkId, Adversary>>,
}

/// A simulated network: one scheduler thread, any number of links.
pub struct SimNetwork {
    shared: Arc<Shared>,
    scheduler: Option<JoinHandle<()>>,
}

impl SimNetwork {
    /// Creates a network with a seeded RNG (loss/jitter decisions are
    /// reproducible for a given seed and send order).
    pub fn new(seed: u64) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            next_link: AtomicU64::new(0),
            faults: Mutex::new(HashMap::new()),
            adversaries: Mutex::new(HashMap::new()),
        });
        let thread_shared = Arc::clone(&shared);
        let scheduler = std::thread::Builder::new()
            .name("sim-net-scheduler".to_string())
            .spawn(move || scheduler_loop(&thread_shared))
            .expect("spawn sim scheduler");
        SimNetwork {
            shared,
            scheduler: Some(scheduler),
        }
    }

    /// Creates a bidirectional link; `a_to_b` and `b_to_a` configure
    /// each direction independently (asymmetric links are allowed).
    pub fn link(&self, a_to_b: LinkConfig, b_to_a: LinkConfig) -> (Endpoint, Endpoint) {
        let (a, b, _) = self.link_with_id(a_to_b, b_to_a);
        (a, b)
    }

    /// Like [`SimNetwork::link`] but also returns the [`LinkId`] for
    /// fault injection.
    pub fn link_with_id(
        &self,
        a_to_b: LinkConfig,
        b_to_a: LinkConfig,
    ) -> (Endpoint, Endpoint, LinkId) {
        let link = LinkId(self.shared.next_link.fetch_add(1, Ordering::Relaxed));
        let (tx_to_a, rx_a) = unbounded();
        let (tx_to_b, rx_b) = unbounded();
        let a = Endpoint::from_parts(
            Arc::new(SimSender {
                cfg: a_to_b,
                dest: tx_to_b,
                shared: Arc::clone(&self.shared),
                link,
            }),
            rx_a,
        );
        let b = Endpoint::from_parts(
            Arc::new(SimSender {
                cfg: b_to_a,
                dest: tx_to_a,
                shared: Arc::clone(&self.shared),
                link,
            }),
            rx_b,
        );
        (a, b, link)
    }

    /// A link with the same behaviour in both directions.
    pub fn symmetric_link(&self, cfg: LinkConfig) -> (Endpoint, Endpoint) {
        self.link(cfg, cfg)
    }

    /// A symmetric link plus its [`LinkId`] for fault injection.
    pub fn symmetric_link_with_id(&self, cfg: LinkConfig) -> (Endpoint, Endpoint, LinkId) {
        self.link_with_id(cfg, cfg)
    }

    /// Kills a link: both directions fail sends with
    /// [`TransportError::Closed`] and every queued in-flight frame on
    /// the link is discarded, like a pulled cable. The endpoints stay
    /// alive; [`SimNetwork::restore`] heals the link in place.
    pub fn drop_link(&self, link: LinkId) {
        self.shared.faults.lock().insert(link, Fault::Down);
        // Purge in-flight frames: a severed cable loses what was on it.
        let mut queue = self.shared.queue.lock();
        let survivors: BinaryHeap<Delivery> =
            queue.drain().filter(|d| d.link != link).collect();
        *queue = survivors;
        drop(queue);
        self.shared.cv.notify_all();
    }

    /// Makes a link drop frames with probability `p` for `duration`,
    /// after which it heals itself ([`SimNetwork::restore`] heals it
    /// early). Dropped frames are counted in
    /// `transport.sim.fault.flaky_dropped`.
    pub fn flaky(&self, link: LinkId, p: f64, duration: Duration) {
        self.shared.faults.lock().insert(
            link,
            Fault::Flaky {
                p,
                until: Instant::now() + duration,
            },
        );
    }

    /// Downs every link in `links` at once — a network partition
    /// separating broker groups. Equivalent to calling
    /// [`SimNetwork::drop_link`] on each.
    pub fn partition(&self, links: &[LinkId]) {
        for &link in links {
            self.drop_link(link);
        }
    }

    /// Heals a link: clears any scripted fault so traffic flows again.
    pub fn restore(&self, link: LinkId) {
        self.shared.faults.lock().remove(&link);
    }

    /// Installs a frame-rewriting adversary on a link: every frame in
    /// both directions passes through `f` before hitting the wire.
    /// Use it to forge tokens, strip trace/TTL sections, corrupt
    /// signatures — the violations the `nb-monitor` properties exist
    /// to catch. Replaces any previous tamper function on the link.
    pub fn tamper<F>(&self, link: LinkId, f: F)
    where
        F: Fn(Vec<u8>) -> Vec<u8> + Send + Sync + 'static,
    {
        self.shared
            .adversaries
            .lock()
            .entry(link)
            .or_default()
            .tamper = Some(Arc::new(f));
    }

    /// Installs a replay adversary on a link: every frame is delivered
    /// `1 + copies` times. Unlike `duplicate_rate`, this duplicates
    /// deterministically — the classic replay attack an exactly-once
    /// monitor must flag.
    pub fn replay(&self, link: LinkId, copies: u32) {
        self.shared
            .adversaries
            .lock()
            .entry(link)
            .or_default()
            .replay = copies;
    }

    /// Stands down any adversary on the link (tamper and replay).
    pub fn clear_adversary(&self, link: LinkId) {
        self.shared.adversaries.lock().remove(&link);
    }

    /// Whether the link currently has a scripted fault.
    pub fn is_faulted(&self, link: LinkId) -> bool {
        match self.shared.faults.lock().get(&link) {
            None => false,
            Some(Fault::Down) => true,
            Some(Fault::Flaky { until, .. }) => Instant::now() < *until,
        }
    }

    /// Stops the scheduler; queued frames are discarded.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SimNetwork {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn scheduler_loop(shared: &Shared) {
    let mut queue = shared.queue.lock();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        // Deliver everything due.
        while let Some(head) = queue.peek() {
            if head.deliver_at <= now {
                let d = queue.pop().unwrap();
                // Receiver may be gone; that's a closed endpoint.
                let _ = d.dest.send(d.frame);
            } else {
                break;
            }
        }
        match queue.peek().map(|d| d.deliver_at) {
            Some(next) => {
                let wait = next.saturating_duration_since(Instant::now());
                // Bounded wait so stop flags are honoured promptly.
                shared
                    .cv
                    .wait_for(&mut queue, wait.min(Duration::from_millis(50)));
            }
            None => {
                shared.cv.wait_for(&mut queue, Duration::from_millis(50));
            }
        }
    }
}

struct SimSender {
    cfg: LinkConfig,
    dest: Sender<Vec<u8>>,
    shared: Arc<Shared>,
    link: LinkId,
}

impl SimSender {
    /// Applies any scripted fault: `Err(Closed)` for a downed link,
    /// `Ok(true)` when a flaky link eats this frame, `Ok(false)` when
    /// the frame may proceed. Expired flaky windows self-heal here.
    fn check_fault(&self) -> Result<bool> {
        let mut faults = self.shared.faults.lock();
        match faults.get(&self.link) {
            None => Ok(false),
            Some(Fault::Down) => {
                crate::instrument::SIM_FAULT_REJECTED.inc();
                Err(TransportError::Closed)
            }
            Some(&Fault::Flaky { p, until }) => {
                if Instant::now() >= until {
                    faults.remove(&self.link);
                    return Ok(false);
                }
                let eaten = self.shared.rng.lock().random::<f64>() < p;
                if eaten {
                    crate::instrument::SIM_FAULT_FLAKY_DROPPED.inc();
                }
                Ok(eaten)
            }
        }
    }
}

impl FrameSender for SimSender {
    fn send_frame(&self, frame: &[u8]) -> Result<()> {
        if self.shared.stop.load(Ordering::SeqCst) {
            return Err(TransportError::Closed);
        }
        if self.check_fault()? {
            // A flaky link eats the frame silently, like wire loss.
            return Ok(());
        }
        // Man-in-the-middle: rewrite the frame and/or schedule replay
        // copies. The adversary map is empty in honest runs, so this
        // is one uncontended lock on the hot path.
        let (tampered, replays) = {
            let adversaries = self.shared.adversaries.lock();
            match adversaries.get(&self.link) {
                None => (None, 0),
                Some(adv) => (
                    adv.tamper.as_ref().map(|f| f(frame.to_vec())),
                    adv.replay,
                ),
            }
        };
        if tampered.is_some() {
            crate::instrument::SIM_FRAMES_TAMPERED.inc();
        }
        if replays > 0 {
            crate::instrument::SIM_FRAMES_REPLAYED.add(u64::from(replays));
        }
        let frame: &[u8] = tampered.as_deref().unwrap_or(frame);
        // Instant, lossless, exact links (the benchmark/test loopback
        // shape) skip the scheduler entirely: no RNG draws, no heap
        // insert, no condvar signal — straight into the destination
        // channel, preserving FIFO per direction.
        if self.cfg.latency.is_zero()
            && self.cfg.jitter.is_zero()
            && self.cfg.loss_rate == 0.0
            && self.cfg.duplicate_rate == 0.0
        {
            crate::instrument::SIM_FRAMES_DIRECT.inc();
            // Receiver may be gone; same as a scheduler-side discard.
            for _ in 0..=replays {
                let _ = self.dest.send(frame.to_vec());
            }
            return Ok(());
        }
        let (dropped, duplicated, jitter1, jitter2) = {
            let mut rng = self.shared.rng.lock();
            let dropped = self.cfg.loss_rate > 0.0 && rng.random::<f64>() < self.cfg.loss_rate;
            let duplicated =
                self.cfg.duplicate_rate > 0.0 && rng.random::<f64>() < self.cfg.duplicate_rate;
            let jitter = |rng: &mut StdRng, cfg: &LinkConfig| {
                if cfg.jitter.is_zero() {
                    Duration::ZERO
                } else {
                    cfg.jitter.mul_f64(rng.random::<f64>())
                }
            };
            let j1 = jitter(&mut rng, &self.cfg);
            let j2 = jitter(&mut rng, &self.cfg);
            (dropped, duplicated, j1, j2)
        };
        if dropped {
            // Silent loss is the whole point of a lossy link.
            crate::instrument::SIM_FRAMES_DROPPED.inc();
            return Ok(());
        }
        if duplicated {
            crate::instrument::SIM_FRAMES_DUPLICATED.inc();
        }
        let now = Instant::now();
        let mut queue = self.shared.queue.lock();
        let mut push = |deliver_at: Instant, frame: Vec<u8>| {
            let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
            queue.push(Delivery {
                deliver_at,
                seq,
                frame,
                dest: self.dest.clone(),
                link: self.link,
            });
        };
        push(now + self.cfg.latency + jitter1, frame.to_vec());
        if duplicated {
            push(now + self.cfg.latency + jitter2, frame.to_vec());
        }
        for _ in 0..replays {
            // Replay copies trail the original by the base latency —
            // the attacker recorded the frame and re-sends it.
            push(now + self.cfg.latency + self.cfg.latency + jitter2, frame.to_vec());
        }
        drop(queue);
        self.shared.cv.notify_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_arrive_in_order_on_a_jitterless_link() {
        let net = SimNetwork::new(1);
        let (a, b) = net.symmetric_link(LinkConfig::instant());
        for i in 0..100u32 {
            a.send(&i.to_be_bytes()).unwrap();
        }
        for i in 0..100u32 {
            let frame = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(frame, i.to_be_bytes());
        }
    }

    #[test]
    fn instant_links_take_the_direct_path() {
        let before = crate::instrument::SIM_FRAMES_DIRECT.get();
        let net = SimNetwork::new(21);
        let (a, b) = net.symmetric_link(LinkConfig::instant());
        for _ in 0..10 {
            a.send(b"fast").unwrap();
        }
        for _ in 0..10 {
            assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"fast");
        }
        assert!(crate::instrument::SIM_FRAMES_DIRECT.get() >= before + 10);
        // A latencied link must still go through the scheduler.
        let during = crate::instrument::SIM_FRAMES_DIRECT.get();
        let (c, d) = net.symmetric_link(LinkConfig::default());
        c.send(b"slow").unwrap();
        assert_eq!(d.recv_timeout(Duration::from_secs(1)).unwrap(), b"slow");
        assert_eq!(crate::instrument::SIM_FRAMES_DIRECT.get(), during);
    }

    #[test]
    fn bidirectional_traffic() {
        let net = SimNetwork::new(2);
        let (a, b) = net.symmetric_link(LinkConfig::instant());
        a.send(b"ping").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"ping");
        b.send(b"pong").unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(1)).unwrap(), b"pong");
    }

    #[test]
    fn latency_is_applied() {
        let net = SimNetwork::new(3);
        let cfg = LinkConfig {
            latency: Duration::from_millis(20),
            jitter: Duration::ZERO,
            loss_rate: 0.0,
            duplicate_rate: 0.0,
        };
        let (a, b) = net.symmetric_link(cfg);
        let t0 = Instant::now();
        a.send(b"x").unwrap();
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        let elapsed = t0.elapsed();
        assert!(elapsed >= Duration::from_millis(18), "elapsed {elapsed:?}");
    }

    #[test]
    fn total_loss_drops_everything() {
        let net = SimNetwork::new(4);
        let (a, b) = net.symmetric_link(LinkConfig {
            loss_rate: 1.0,
            ..LinkConfig::instant()
        });
        for _ in 0..10 {
            a.send(b"gone").unwrap();
        }
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn partial_loss_drops_roughly_proportionally() {
        let net = SimNetwork::new(5);
        let (a, b) = net.symmetric_link(LinkConfig {
            loss_rate: 0.5,
            ..LinkConfig::instant()
        });
        let n = 400;
        for i in 0..n as u32 {
            a.send(&i.to_be_bytes()).unwrap();
        }
        let mut received = 0;
        while b.recv_timeout(Duration::from_millis(100)).is_ok() {
            received += 1;
        }
        // 50% loss: expect 120..280 of 400 with overwhelming probability.
        assert!(
            (120..280).contains(&received),
            "received {received} of {n}"
        );
    }

    #[test]
    fn duplication_delivers_extra_frames() {
        let net = SimNetwork::new(6);
        let (a, b) = net.symmetric_link(LinkConfig {
            duplicate_rate: 1.0,
            ..LinkConfig::instant()
        });
        a.send(b"twin").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"twin");
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"twin");
    }

    #[test]
    fn shutdown_closes_senders() {
        let mut net = SimNetwork::new(7);
        let (a, _b) = net.symmetric_link(LinkConfig::instant());
        net.shutdown();
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
    }

    #[test]
    fn oversized_frames_rejected() {
        let net = SimNetwork::new(8);
        let (a, _b) = net.symmetric_link(LinkConfig::instant());
        let huge = vec![0u8; crate::endpoint::MAX_FRAME_LEN + 1];
        assert!(matches!(
            a.send(&huge),
            Err(TransportError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn dropped_receiver_does_not_break_scheduler() {
        let net = SimNetwork::new(9);
        let (a, b) = net.symmetric_link(LinkConfig::instant());
        drop(b);
        // Sends still succeed; scheduler discards on delivery.
        a.send(b"void").unwrap();
        // And other links continue to work.
        let (c, d) = net.symmetric_link(LinkConfig::instant());
        c.send(b"alive").unwrap();
        assert_eq!(d.recv_timeout(Duration::from_secs(1)).unwrap(), b"alive");
    }

    #[test]
    fn dropped_link_fails_sends_until_restored() {
        let net = SimNetwork::new(11);
        let (a, b, link) = net.symmetric_link_with_id(LinkConfig::instant());
        a.send(b"before").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"before");
        net.drop_link(link);
        assert!(net.is_faulted(link));
        assert_eq!(a.send(b"lost"), Err(TransportError::Closed));
        assert_eq!(b.send(b"lost too"), Err(TransportError::Closed));
        net.restore(link);
        assert!(!net.is_faulted(link));
        a.send(b"after").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"after");
    }

    #[test]
    fn drop_link_purges_in_flight_frames() {
        let net = SimNetwork::new(12);
        let slow = LinkConfig {
            latency: Duration::from_millis(200),
            jitter: Duration::ZERO,
            loss_rate: 0.0,
            duplicate_rate: 0.0,
        };
        let (a, b, link) = net.symmetric_link_with_id(slow);
        a.send(b"in flight").unwrap();
        // Sever the cable while the frame is still queued.
        net.drop_link(link);
        net.restore(link);
        assert_eq!(
            b.recv_timeout(Duration::from_millis(400)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn drop_link_leaves_other_links_untouched() {
        let net = SimNetwork::new(13);
        let (a, _b, link) = net.symmetric_link_with_id(LinkConfig::instant());
        let (c, d, _other) = net.symmetric_link_with_id(LinkConfig::instant());
        net.drop_link(link);
        assert_eq!(a.send(b"down"), Err(TransportError::Closed));
        c.send(b"up").unwrap();
        assert_eq!(d.recv_timeout(Duration::from_secs(1)).unwrap(), b"up");
    }

    #[test]
    fn flaky_link_drops_roughly_proportionally() {
        let net = SimNetwork::new(14);
        let (a, b, link) = net.symmetric_link_with_id(LinkConfig::instant());
        net.flaky(link, 0.5, Duration::from_secs(30));
        let n = 400;
        for i in 0..n as u32 {
            a.send(&i.to_be_bytes()).unwrap();
        }
        let mut received = 0;
        while b.recv_timeout(Duration::from_millis(100)).is_ok() {
            received += 1;
        }
        assert!(
            (120..280).contains(&received),
            "received {received} of {n}"
        );
    }

    #[test]
    fn flaky_window_expires_on_its_own() {
        let net = SimNetwork::new(15);
        let (a, b, link) = net.symmetric_link_with_id(LinkConfig::instant());
        net.flaky(link, 1.0, Duration::from_millis(50));
        a.send(b"eaten").unwrap();
        std::thread::sleep(Duration::from_millis(80));
        assert!(!net.is_faulted(link), "flaky window should have expired");
        a.send(b"healed").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"healed");
    }

    #[test]
    fn partition_downs_every_listed_link() {
        let net = SimNetwork::new(16);
        let (a, _b, l1) = net.symmetric_link_with_id(LinkConfig::instant());
        let (c, _d, l2) = net.symmetric_link_with_id(LinkConfig::instant());
        let (e, f, _l3) = net.symmetric_link_with_id(LinkConfig::instant());
        net.partition(&[l1, l2]);
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
        assert_eq!(c.send(b"x"), Err(TransportError::Closed));
        e.send(b"alive").unwrap();
        assert_eq!(f.recv_timeout(Duration::from_secs(1)).unwrap(), b"alive");
    }

    #[test]
    fn tamper_rewrites_frames_in_flight() {
        let net = SimNetwork::new(17);
        let (a, b, link) = net.symmetric_link_with_id(LinkConfig::instant());
        net.tamper(link, |mut frame| {
            frame.reverse();
            frame
        });
        a.send(b"abc").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"cba");
        net.clear_adversary(link);
        a.send(b"abc").unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"abc");
    }

    #[test]
    fn replay_delivers_deterministic_copies() {
        let net = SimNetwork::new(18);
        let (a, b, link) = net.symmetric_link_with_id(LinkConfig::instant());
        net.replay(link, 2);
        a.send(b"echo").unwrap();
        for _ in 0..3 {
            assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), b"echo");
        }
        assert_eq!(
            b.recv_timeout(Duration::from_millis(50)),
            Err(TransportError::Timeout)
        );
    }

    #[test]
    fn replay_rides_the_scheduler_for_latencied_links() {
        let net = SimNetwork::new(19);
        let cfg = LinkConfig {
            latency: Duration::from_millis(5),
            jitter: Duration::ZERO,
            loss_rate: 0.0,
            duplicate_rate: 0.0,
        };
        let (a, b, link) = net.symmetric_link_with_id(cfg);
        net.replay(link, 1);
        net.tamper(link, |mut frame| {
            frame[0] ^= 0xff;
            frame
        });
        a.send(&[0x00, 0x42]).unwrap();
        // Both the original send and its replay copy carry the tamper.
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), [0xff, 0x42]);
        assert_eq!(b.recv_timeout(Duration::from_secs(1)).unwrap(), [0xff, 0x42]);
    }

    #[test]
    fn many_links_share_one_scheduler() {
        let net = SimNetwork::new(10);
        let links: Vec<_> = (0..20)
            .map(|_| net.symmetric_link(LinkConfig::instant()))
            .collect();
        for (i, (a, _)) in links.iter().enumerate() {
            a.send(&(i as u32).to_be_bytes()).unwrap();
        }
        for (i, (_, b)) in links.iter().enumerate() {
            assert_eq!(
                b.recv_timeout(Duration::from_secs(1)).unwrap(),
                (i as u32).to_be_bytes()
            );
        }
    }
}
