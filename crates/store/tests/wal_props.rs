//! Property-based tests for the WAL record codec and recovery:
//! round-trip, torn-tail recovery, CRC corruption quarantine, and
//! snapshot+log replay equivalence.

use nb_store::wal::{encode_record, scan, ScanEnd, Wal, RECORD_HEADER_LEN};
use nb_store::{Durable, DurableState, StoreConfig, TempDir};
use nb_wire::codec::{Decode, Encode, Reader, Writer};
use proptest::prelude::*;

fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..40)
}

fn frame_all(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::new();
    for p in payloads {
        buf.extend_from_slice(&encode_record(p));
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence of payloads frames and scans back identically,
    /// with a clean end.
    #[test]
    fn records_round_trip(payloads in arb_payloads()) {
        let buf = frame_all(&payloads);
        let scanned = scan(&buf);
        prop_assert_eq!(scanned.end, ScanEnd::Clean);
        prop_assert_eq!(scanned.valid_len, buf.len() as u64);
        prop_assert_eq!(scanned.records.len(), payloads.len());
        for (got, want) in scanned.records.iter().zip(&payloads) {
            prop_assert_eq!(*got, &want[..]);
        }
    }

    /// Truncating a framed log at ANY byte boundary recovers every
    /// record that fits entirely before the cut, and classifies the
    /// partial remainder (if any) as a torn tail — never as
    /// corruption.
    #[test]
    fn truncated_tail_recovers_full_prefix(payloads in arb_payloads(), cut_pm in 0u64..10_000) {
        let buf = frame_all(&payloads);
        let cut = (buf.len() as u64 * cut_pm / 10_000) as usize;
        let truncated = &buf[..cut];

        // How many whole records fit before the cut?
        let mut whole = 0usize;
        let mut at = 0usize;
        for p in &payloads {
            let next = at + RECORD_HEADER_LEN + p.len();
            if next > cut {
                break;
            }
            whole += 1;
            at = next;
        }

        let scanned = scan(truncated);
        prop_assert_eq!(scanned.records.len(), whole);
        prop_assert_eq!(scanned.valid_len, at as u64);
        if cut == at {
            prop_assert_eq!(scanned.end, ScanEnd::Clean);
        } else {
            prop_assert_eq!(
                scanned.end,
                ScanEnd::TornTail { dropped_bytes: (cut - at) as u64 }
            );
        }
    }

    /// Flipping any byte inside a record (header or payload) stops the
    /// scan at or before that record with every earlier record intact,
    /// and never yields a record with wrong bytes.
    #[test]
    fn corruption_is_detected_and_contained(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..100), 1..20),
        victim_pm in 0u64..10_000,
        flip in 1u8..255,
    ) {
        let buf = frame_all(&payloads);
        let mut bad = buf.clone();
        let victim = (bad.len() as u64 * victim_pm / 10_000) as usize % bad.len();
        bad[victim] ^= flip;

        // Which record does the flipped byte live in?
        let mut victim_record = 0usize;
        let mut at = 0usize;
        for (i, p) in payloads.iter().enumerate() {
            let next = at + RECORD_HEADER_LEN + p.len();
            if victim < next {
                victim_record = i;
                break;
            }
            at = next;
        }

        let scanned = scan(&bad);
        // The scan never gets past the damaged record…
        prop_assert!(scanned.records.len() <= victim_record);
        // …and every record it does return is byte-identical to the
        // original (damage is contained, not misread).
        for (got, want) in scanned.records.iter().zip(&payloads) {
            prop_assert_eq!(*got, &want[..]);
        }
        // A flip cannot produce a clean full-length scan.
        prop_assert!(
            scanned.end != ScanEnd::Clean || scanned.records.len() < payloads.len()
        );
    }
}

/// Toy durable state for the equivalence property: a list of u64s.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
struct Nums(Vec<u64>);

struct PushOp(u64);

impl Encode for PushOp {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
}
impl Decode for PushOp {
    fn decode(r: &mut Reader<'_>) -> nb_wire::Result<Self> {
        Ok(PushOp(r.get_u64()?))
    }
}
impl DurableState for Nums {
    type Op = PushOp;
    fn apply(&mut self, op: PushOp) {
        self.0.push(op.0);
    }
    fn snapshot_encode(&self, w: &mut Writer) {
        w.put_seq(&self.0, |w, v| w.put_u64(*v));
    }
    fn snapshot_decode(r: &mut Reader<'_>) -> nb_wire::Result<Self> {
        Ok(Nums(r.get_seq(|r| r.get_u64())?))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recovering from snapshot+log is equivalent to recovering from
    /// the log alone: wherever checkpoints land in the op stream, the
    /// recovered state is the full op sequence.
    #[test]
    fn snapshot_plus_log_replay_equivalence(
        ops in proptest::collection::vec(any::<u64>(), 1..60),
        checkpoint_every in 1u64..20,
    ) {
        let dir = TempDir::new("props-equiv").unwrap();
        let cfg = StoreConfig { checkpoint_every, ..StoreConfig::default() };
        {
            let (mut d, mut state, _) =
                Durable::<Nums>::open(dir.path(), "nums", cfg.clone()).unwrap();
            for &v in &ops {
                state.apply(PushOp(v));
                d.record(&PushOp(v)).unwrap();
                d.maybe_checkpoint(&state).unwrap();
            }
        }
        let (d, state, rec) = Durable::<Nums>::open(dir.path(), "nums", cfg).unwrap();
        prop_assert_eq!(&state.0, &ops);
        prop_assert_eq!(d.total_seq(), ops.len() as u64);
        prop_assert_eq!(
            rec.snapshot_seq + rec.records_replayed,
            ops.len() as u64
        );
        prop_assert!(!rec.repaired());
    }

    /// Crash-truncating the log at any point after a checkpoint loses
    /// only a suffix: the recovered state is always a prefix of the
    /// applied ops, never shorter than the snapshot.
    #[test]
    fn torn_log_recovers_a_prefix(
        ops in proptest::collection::vec(any::<u64>(), 2..60),
        checkpoint_every in 2u64..20,
        cut_pm in 0u64..10_000,
    ) {
        let dir = TempDir::new("props-torn").unwrap();
        let cfg = StoreConfig { checkpoint_every, ..StoreConfig::default() };
        let mut snap_covered = 0u64;
        {
            let (mut d, mut state, _) =
                Durable::<Nums>::open(dir.path(), "nums", cfg.clone()).unwrap();
            for &v in &ops {
                state.apply(PushOp(v));
                d.record(&PushOp(v)).unwrap();
                if d.maybe_checkpoint(&state).unwrap() {
                    snap_covered = d.total_seq();
                }
            }
        }
        // Tear the log mid-byte.
        let wal_path = dir.path().join("nums.wal");
        let bytes = std::fs::read(&wal_path).unwrap();
        let cut = (bytes.len() as u64 * cut_pm / 10_000) as usize;
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();

        let (_, state, rec) = Durable::<Nums>::open(dir.path(), "nums", cfg).unwrap();
        let n = state.0.len();
        prop_assert_eq!(&state.0, &ops[..n], "must recover a prefix");
        prop_assert!(n as u64 >= snap_covered, "snapshot coverage can't be lost");
        prop_assert_eq!(rec.snapshot_seq, snap_covered);
    }
}

/// Non-prop regression: a torn tail on a real file is truncated so the
/// next append goes through cleanly (open → tear → open → append →
/// open).
#[test]
fn reopened_torn_wal_accepts_appends() {
    let dir = TempDir::new("props-reopen").unwrap();
    let path = dir.path().join("x.wal");
    {
        let (mut wal, _, _) = Wal::open(&path, false).unwrap();
        wal.append(&[1, 2, 3]).unwrap();
    }
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&[9, 9]);
    std::fs::write(&path, &bytes).unwrap();
    {
        let (mut wal, records, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(rec.torn_bytes, 2);
        wal.append(&[4, 5]).unwrap();
    }
    let (_, records, rec) = Wal::open(&path, false).unwrap();
    assert_eq!(records, vec![vec![1, 2, 3], vec![4, 5]]);
    assert_eq!(rec.torn_bytes, 0);
    assert_eq!(rec.quarantined_bytes, 0);
}
