//! Point-in-time snapshots with atomic replacement.
//!
//! ## File format
//!
//! ```text
//! ┌───────────────┬──────────────┬────────────────┬─────────────┬─────────────┬─────────┐
//! │ magic: u32 BE │ ver: u16 BE  │ wal_seq: u64 BE│ len: u32 BE │ crc: u32 BE │ payload │
//! └───────────────┴──────────────┴────────────────┴─────────────┴─────────────┴─────────┘
//! ```
//!
//! `wal_seq` is the cumulative op count the snapshot covers — the
//! journal position at which replay resumes. The payload (the encoded
//! state, produced by
//! [`DurableState::snapshot_encode`](crate::durable::DurableState))
//! carries its own CRC so on-disk rot is detected, exactly as in the
//! log.
//!
//! ## Atomicity
//!
//! [`write()`] streams to `<path>.tmp` and then renames over the real
//! file: a crash mid-snapshot leaves the *previous* snapshot intact,
//! and the log — which is only compacted after the rename — still
//! covers everything since it. There is no window in which state
//! exists only in memory.

use crate::wal::crc32;
use std::io::Write as _;
use std::path::Path;

/// Snapshot file magic (`"NBSS"`).
pub const MAGIC: u32 = 0x4E42_5353;

/// Current snapshot format version.
pub const VERSION: u16 = 1;

/// Fixed header bytes before the payload.
const HEADER_LEN: usize = 4 + 2 + 8 + 4 + 4;

/// A successfully loaded snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loaded {
    /// Cumulative op count the snapshot covers.
    pub wal_seq: u64,
    /// The encoded state.
    pub payload: Vec<u8>,
}

/// Outcome of [`read`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// No snapshot file exists (first boot, or never checkpointed).
    Missing,
    /// A well-formed snapshot was loaded.
    Ok(Loaded),
    /// The file exists but fails validation; it has been moved to a
    /// `.quarantine` sidecar so recovery can start from a blank state
    /// without destroying the evidence.
    Quarantined {
        /// Why validation failed.
        reason: &'static str,
    },
}

/// Atomically replaces the snapshot at `path` (via `<path>.tmp` +
/// rename).
pub fn write(path: &Path, wal_seq: u64, payload: &[u8], fsync: bool) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC.to_be_bytes());
    buf.extend_from_slice(&VERSION.to_be_bytes());
    buf.extend_from_slice(&wal_seq.to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&crc32(payload).to_be_bytes());
    buf.extend_from_slice(payload);

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&buf)?;
        if fsync {
            f.sync_data()?;
        }
    }
    std::fs::rename(&tmp, path)
}

/// Parses an in-memory snapshot image. Pure — driven directly by the
/// property tests.
pub fn parse(bytes: &[u8]) -> Result<Loaded, &'static str> {
    if bytes.len() < HEADER_LEN {
        return Err("truncated header");
    }
    let magic = u32::from_be_bytes(bytes[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err("bad magic");
    }
    let version = u16::from_be_bytes(bytes[4..6].try_into().unwrap());
    if version != VERSION {
        return Err("unknown version");
    }
    let wal_seq = u64::from_be_bytes(bytes[6..14].try_into().unwrap());
    let len = u32::from_be_bytes(bytes[14..18].try_into().unwrap()) as usize;
    let crc = u32::from_be_bytes(bytes[18..22].try_into().unwrap());
    let body = &bytes[HEADER_LEN..];
    if body.len() != len {
        return Err("payload length mismatch");
    }
    if crc32(body) != crc {
        return Err("crc mismatch");
    }
    Ok(Loaded {
        wal_seq,
        payload: body.to_vec(),
    })
}

/// Reads and validates the snapshot at `path`. A malformed file is
/// moved aside to `<path>.quarantine` rather than deleted.
pub fn read(path: &Path) -> std::io::Result<ReadOutcome> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ReadOutcome::Missing),
        Err(e) => return Err(e),
    };
    match parse(&bytes) {
        Ok(loaded) => Ok(ReadOutcome::Ok(loaded)),
        Err(reason) => {
            let mut sidecar = path.as_os_str().to_owned();
            sidecar.push(".quarantine");
            std::fs::rename(path, std::path::PathBuf::from(sidecar))?;
            Ok(ReadOutcome::Quarantined { reason })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn write_read_round_trips() {
        let dir = TempDir::new("snap").unwrap();
        let path = dir.path().join("s.snap");
        write(&path, 42, b"state-bytes", false).unwrap();
        match read(&path).unwrap() {
            ReadOutcome::Ok(loaded) => {
                assert_eq!(loaded.wal_seq, 42);
                assert_eq!(loaded.payload, b"state-bytes");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn missing_file_reports_missing() {
        let dir = TempDir::new("snap").unwrap();
        assert_eq!(
            read(&dir.path().join("absent.snap")).unwrap(),
            ReadOutcome::Missing
        );
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = TempDir::new("snap").unwrap();
        let path = dir.path().join("s.snap");
        write(&path, 1, b"old", false).unwrap();
        write(&path, 2, b"new", false).unwrap();
        match read(&path).unwrap() {
            ReadOutcome::Ok(loaded) => {
                assert_eq!(loaded.wal_seq, 2);
                assert_eq!(loaded.payload, b"new");
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(!path.with_extension("snap.tmp").exists());
    }

    #[test]
    fn corrupt_snapshot_is_quarantined() {
        let dir = TempDir::new("snap").unwrap();
        let path = dir.path().join("s.snap");
        write(&path, 7, b"payload", false).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        match read(&path).unwrap() {
            ReadOutcome::Quarantined { reason } => assert_eq!(reason, "crc mismatch"),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(!path.exists());
        assert!(path.with_extension("snap.quarantine").exists());
    }
}
