//! # nb-store — write-ahead log + snapshot durability
//!
//! The paper's brokers, trackers and Topic Discovery Nodes hold all of
//! their state in memory; this crate is the persistence subsystem that
//! lets a node crash and restart without losing it. It is deliberately
//! zero-dependency (files + the workspace's own [`nb_wire`] codec) and
//! built from three layers:
//!
//! * [`wal`] — an append-only binary **write-ahead log**. Each record
//!   is length-prefixed and CRC32-framed; opening a log scans it,
//!   truncates a torn tail (the normal signature of a crash mid-write)
//!   and quarantines any corrupt remainder to a sidecar file rather
//!   than silently dropping bytes.
//! * [`snapshot`] — a point-in-time **snapshot store**. Snapshots are
//!   written to a temp file and atomically renamed into place, after
//!   which the log is compacted (truncated to zero): recovery cost is
//!   bounded by the checkpoint interval, not by process uptime.
//! * [`durable`] — the typed [`Durable<T>`](durable::Durable) /
//!   [`Recovery`] API the node layers use: a state
//!   type implements [`DurableState`] (apply an
//!   op, encode/decode a snapshot) and gets journalling, checkpointing
//!   and crash recovery for free.
//!
//! Recovery replays `snapshot ∘ log` and reports exactly what it did
//! ([`durable::Recovery`]): records replayed, torn bytes truncated,
//! corrupt bytes quarantined. Replay is **exactly-once** from the
//! store's point of view — every op in the log is applied once, in
//! order; node layers pair this with their own idempotent op semantics
//! (e.g. the tracker's sequence-numbered trace events) the same way the
//! link supervisor's replay buffer does on the wire.
//!
//! Everything is instrumented on the process-global metrics registry
//! under the `store.*` family (catalogued in `docs/OBSERVABILITY.md`).
//!
//! The [`tempdir`] module is a shared test helper: scoped data
//! directories with drop-cleanup, so recovery/chaos tests never leave
//! `*.wal` / `*.snap` files in the tree.

pub mod durable;
mod instrument;
pub mod snapshot;
pub mod tempdir;
pub mod wal;

pub use durable::{Durable, DurableState, FsyncPolicy, Recovery, StoreConfig};
pub use tempdir::TempDir;
pub use wal::{crc32, ScanEnd, Wal, WalRecovery};

use std::fmt;

/// Errors from the durability layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A snapshot or log payload failed to decode.
    Codec(nb_wire::WireError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Codec(e) => write!(f, "store codec error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<nb_wire::WireError> for StoreError {
    fn from(e: nb_wire::WireError) -> Self {
        StoreError::Codec(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
