//! The typed durability API the node layers use.
//!
//! A state type implements [`DurableState`] — how to apply one journal
//! op, and how to encode/decode a whole-state snapshot in the wire
//! codec — and a [`Durable<T>`] handle gives it write-ahead
//! journalling ([`Durable::record`]), snapshot checkpoints with log
//! compaction ([`Durable::checkpoint`]) and crash recovery
//! ([`Durable::open`] → [`Recovery`]).
//!
//! ## Recovery protocol
//!
//! 1. Load the snapshot if one exists (a malformed one is quarantined
//!    and recovery continues from a blank state).
//! 2. Open the log, truncating a torn tail / quarantining corruption
//!    (see [`crate::wal`]).
//! 3. Replay every surviving log record onto the state, in order.
//!    A record whose payload no longer decodes as an op is counted
//!    and skipped, never silently misapplied.
//!
//! Replay is exactly-once: each surviving op is applied once, in
//! append order. Owners whose ops are *themselves* idempotent (the
//! tracker's sequence-numbered trace events, the TDN's keyed upserts)
//! additionally tolerate the op-duplication that can arise when a
//! crash lands between a state mutation and its journal append.
//!
//! ## Checkpointing
//!
//! The state being snapshotted lives behind the owner's own locks, so
//! checkpointing is **owner-driven**: after recording ops, the owner
//! asks [`Durable::should_checkpoint`] and, while still holding its
//! state lock, calls [`Durable::checkpoint`] with the current state.
//! The snapshot is written atomically first; only then is the log
//! compacted, so there is no instant at which state exists only in
//! memory.

use crate::instrument;
use crate::snapshot;
use crate::wal::Wal;
use crate::{Result, StoreError};
use nb_wire::codec::{Decode, Encode, Reader, Writer};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

/// State that can be journalled and snapshotted.
pub trait DurableState: Sized + Default {
    /// One journalled mutation.
    type Op: Encode + Decode;

    /// Applies one op (both live, before journalling, and during
    /// replay — the implementation must not care which).
    fn apply(&mut self, op: Self::Op);

    /// Encodes the complete state for a snapshot.
    fn snapshot_encode(&self, w: &mut Writer);

    /// Decodes a complete state from a snapshot payload.
    fn snapshot_decode(r: &mut Reader<'_>) -> nb_wire::Result<Self>;
}

/// When appends reach the physical device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Buffered writes only: durable against process crash (the
    /// kernel holds the bytes) but not power loss. The default — it
    /// keeps journalling off the node's latency path, and the
    /// availability protocol itself re-establishes anything a whole
    /// machine loses (tokens expire, pings resume).
    #[default]
    Buffered,
    /// `fsync` after every append and snapshot: durable against power
    /// loss, at a large throughput cost.
    Always,
}

/// Tuning for a [`Durable`] store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Checkpoint (snapshot + compact) once this many ops accumulate
    /// in the log. Bounds recovery time by bounding replay length.
    pub checkpoint_every: u64,
    /// Fsync policy for appends and snapshots.
    pub fsync: FsyncPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            checkpoint_every: 1024,
            fsync: FsyncPolicy::default(),
        }
    }
}

/// What [`Durable::open`] found on disk and how it rebuilt the state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Nothing on disk: this is a first boot, not a restart.
    pub started_fresh: bool,
    /// A snapshot was loaded as the replay base.
    pub snapshot_loaded: bool,
    /// Cumulative op count the loaded snapshot covered.
    pub snapshot_seq: u64,
    /// Log records replayed on top of the base state.
    pub records_replayed: u64,
    /// Log records that no longer decoded as ops (skipped, counted).
    pub ops_decode_failed: u64,
    /// Torn-tail bytes truncated from the log.
    pub torn_bytes: u64,
    /// Corrupt log bytes moved to the `.quarantine` sidecar.
    pub quarantined_bytes: u64,
    /// The snapshot file existed but failed validation and was moved
    /// aside; replay started from a blank state.
    pub snapshot_quarantined: bool,
}

impl Recovery {
    /// Whether recovery had to repair anything (torn tail, corrupt
    /// records, undecodable ops, or a quarantined snapshot).
    pub fn repaired(&self) -> bool {
        self.torn_bytes > 0
            || self.quarantined_bytes > 0
            || self.ops_decode_failed > 0
            || self.snapshot_quarantined
    }
}

/// A durable store for one state value: write-ahead log + snapshots
/// under `<dir>/<name>.wal` / `<dir>/<name>.snap`.
pub struct Durable<T: DurableState> {
    wal: Wal,
    snap_path: PathBuf,
    cfg: StoreConfig,
    /// Cumulative ops covered by the last snapshot.
    snapshot_seq: u64,
    _state: PhantomData<fn() -> T>,
}

impl<T: DurableState> Durable<T> {
    /// Opens (or creates) the store under `dir`, recovering the state
    /// from `snapshot ∘ log`. Returns the handle, the recovered state
    /// and a [`Recovery`] report.
    pub fn open(dir: &Path, name: &str, cfg: StoreConfig) -> Result<(Self, T, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let snap_path = dir.join(format!("{name}.snap"));
        let wal_path = dir.join(format!("{name}.wal"));
        let mut recovery = Recovery::default();

        let mut state = match snapshot::read(&snap_path)? {
            snapshot::ReadOutcome::Missing => T::default(),
            snapshot::ReadOutcome::Quarantined { .. } => {
                recovery.snapshot_quarantined = true;
                instrument::SNAPSHOTS_QUARANTINED.inc();
                T::default()
            }
            snapshot::ReadOutcome::Ok(loaded) => {
                let mut r = Reader::new(&loaded.payload);
                let state = T::snapshot_decode(&mut r).map_err(StoreError::Codec)?;
                r.expect_end("snapshot payload").map_err(StoreError::Codec)?;
                recovery.snapshot_loaded = true;
                recovery.snapshot_seq = loaded.wal_seq;
                instrument::SNAPSHOTS_LOADED.inc();
                state
            }
        };

        let fsync = matches!(cfg.fsync, FsyncPolicy::Always);
        let (wal, records, wal_recovery) = Wal::open(&wal_path, fsync)?;
        recovery.torn_bytes = wal_recovery.torn_bytes;
        recovery.quarantined_bytes = wal_recovery.quarantined_bytes;
        for payload in &records {
            match T::Op::from_bytes(payload) {
                Ok(op) => {
                    state.apply(op);
                    recovery.records_replayed += 1;
                }
                Err(_) => {
                    recovery.ops_decode_failed += 1;
                    instrument::OPS_DECODE_FAILED.inc();
                }
            }
        }
        recovery.started_fresh = !recovery.snapshot_loaded
            && !recovery.snapshot_quarantined
            && records.is_empty()
            && wal_recovery == crate::wal::WalRecovery::default();
        instrument::RECOVERIES.inc();

        Ok((
            Durable {
                wal,
                snap_path,
                cfg,
                snapshot_seq: recovery.snapshot_seq,
                _state: PhantomData,
            },
            state,
            recovery,
        ))
    }

    /// Journals one op. The owner applies the op to its in-memory
    /// state itself (usually just before this call, under its own
    /// lock).
    pub fn record(&mut self, op: &T::Op) -> Result<()> {
        self.wal.append(&op.to_bytes())?;
        instrument::OPS_RECORDED.inc();
        Ok(())
    }

    /// Whether enough ops have accumulated to warrant a checkpoint.
    pub fn should_checkpoint(&self) -> bool {
        self.wal.record_count() >= self.cfg.checkpoint_every
    }

    /// Snapshots `state` (atomic replace) and compacts the log.
    pub fn checkpoint(&mut self, state: &T) -> Result<()> {
        let mut w = Writer::new();
        state.snapshot_encode(&mut w);
        let seq = self.total_seq();
        let fsync = matches!(self.cfg.fsync, FsyncPolicy::Always);
        snapshot::write(&self.snap_path, seq, &w.into_bytes(), fsync)?;
        instrument::SNAPSHOTS_WRITTEN.inc();
        self.wal.reset()?;
        self.snapshot_seq = seq;
        Ok(())
    }

    /// Checkpoints iff [`Durable::should_checkpoint`]; returns whether
    /// it did.
    pub fn maybe_checkpoint(&mut self, state: &T) -> Result<bool> {
        if self.should_checkpoint() {
            self.checkpoint(state)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Cumulative op count (snapshot coverage + log records).
    pub fn total_seq(&self) -> u64 {
        self.snapshot_seq + self.wal.record_count()
    }

    /// Ops currently in the log (i.e. since the last checkpoint).
    pub fn wal_records(&self) -> u64 {
        self.wal.record_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    /// Toy state: an append-only list of u64s.
    #[derive(Default, Debug, PartialEq, Eq)]
    struct Nums(Vec<u64>);

    /// One appended number.
    struct PushOp(u64);

    impl Encode for PushOp {
        fn encode(&self, w: &mut Writer) {
            w.put_u64(self.0);
        }
    }
    impl Decode for PushOp {
        fn decode(r: &mut Reader<'_>) -> nb_wire::Result<Self> {
            Ok(PushOp(r.get_u64()?))
        }
    }

    impl DurableState for Nums {
        type Op = PushOp;
        fn apply(&mut self, op: PushOp) {
            self.0.push(op.0);
        }
        fn snapshot_encode(&self, w: &mut Writer) {
            w.put_seq(&self.0, |w, v| w.put_u64(*v));
        }
        fn snapshot_decode(r: &mut Reader<'_>) -> nb_wire::Result<Self> {
            Ok(Nums(r.get_seq(|r| r.get_u64())?))
        }
    }

    fn reopen(dir: &Path) -> (Durable<Nums>, Nums, Recovery) {
        Durable::open(dir, "nums", StoreConfig::default()).unwrap()
    }

    #[test]
    fn fresh_open_then_replay() {
        let dir = TempDir::new("durable").unwrap();
        {
            let (mut d, mut state, rec) = reopen(dir.path());
            assert!(rec.started_fresh);
            for v in [1u64, 2, 3] {
                state.apply(PushOp(v));
                d.record(&PushOp(v)).unwrap();
            }
        }
        let (_, state, rec) = reopen(dir.path());
        assert_eq!(state, Nums(vec![1, 2, 3]));
        assert!(!rec.started_fresh);
        assert_eq!(rec.records_replayed, 3);
        assert!(!rec.snapshot_loaded);
    }

    #[test]
    fn checkpoint_compacts_and_recovers() {
        let dir = TempDir::new("durable").unwrap();
        {
            let (mut d, mut state, _) = reopen(dir.path());
            for v in 0..10u64 {
                state.apply(PushOp(v));
                d.record(&PushOp(v)).unwrap();
            }
            d.checkpoint(&state).unwrap();
            assert_eq!(d.wal_records(), 0);
            assert_eq!(d.total_seq(), 10);
            // Two more after the checkpoint.
            for v in [10u64, 11] {
                state.apply(PushOp(v));
                d.record(&PushOp(v)).unwrap();
            }
        }
        let (d, state, rec) = reopen(dir.path());
        assert_eq!(state.0, (0..12).collect::<Vec<_>>());
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.snapshot_seq, 10);
        assert_eq!(rec.records_replayed, 2);
        assert_eq!(d.total_seq(), 12);
    }

    #[test]
    fn should_checkpoint_threshold() {
        let dir = TempDir::new("durable").unwrap();
        let cfg = StoreConfig {
            checkpoint_every: 3,
            ..StoreConfig::default()
        };
        let (mut d, mut state, _) = Durable::<Nums>::open(dir.path(), "nums", cfg).unwrap();
        for v in 0..3u64 {
            assert!(!d.should_checkpoint());
            state.apply(PushOp(v));
            d.record(&PushOp(v)).unwrap();
        }
        assert!(d.should_checkpoint());
        assert!(d.maybe_checkpoint(&state).unwrap());
        assert!(!d.should_checkpoint());
        assert!(!d.maybe_checkpoint(&state).unwrap());
    }

    #[test]
    fn quarantined_snapshot_restarts_blank() {
        let dir = TempDir::new("durable").unwrap();
        {
            let (mut d, mut state, _) = reopen(dir.path());
            state.apply(PushOp(5));
            d.record(&PushOp(5)).unwrap();
            d.checkpoint(&state).unwrap();
        }
        // Rot the snapshot on disk.
        let snap = dir.path().join("nums.snap");
        let mut bytes = std::fs::read(&snap).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();

        let (_, state, rec) = reopen(dir.path());
        assert!(rec.snapshot_quarantined);
        assert!(rec.repaired());
        assert_eq!(state, Nums(vec![]));
        assert!(snap.with_extension("snap.quarantine").exists());
    }
}
