//! Append-only, CRC-framed binary write-ahead log.
//!
//! ## Record framing
//!
//! ```text
//! ┌──────────────┬──────────────┬─────────────────┐
//! │ len: u32 BE  │ crc: u32 BE  │ payload (len B) │
//! └──────────────┴──────────────┴─────────────────┘
//! ```
//!
//! `crc` is the IEEE CRC32 of the payload alone. `len` is capped at
//! [`MAX_RECORD_LEN`] (the same 16 MiB bound the wire codec enforces on
//! chunks) so a corrupted length prefix cannot trigger an allocation
//! blow-up.
//!
//! ## Opening semantics
//!
//! [`Wal::open`] scans the file front to back and classifies the end of
//! the valid prefix ([`ScanEnd`]):
//!
//! * **Clean** — every byte belongs to a well-formed record.
//! * **Torn tail** — the file ends inside a header or payload. This is
//!   the expected signature of a crash mid-append; the tail is
//!   *truncated* and the bytes counted in [`WalRecovery`].
//! * **Corrupt** — a complete record fails its CRC (or claims an
//!   impossible length). That is *not* a crash signature — it means
//!   bytes changed under us — so the remainder of the file is
//!   *quarantined* to a `<log>.quarantine` sidecar for forensics
//!   before the log is truncated at the last good record.
//!
//! Either way the log is left physically consistent: the next append
//! lands after the last intact record.

use crate::instrument;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Upper bound on a single record's payload (16 MiB), mirroring
/// [`nb_wire::codec::MAX_CHUNK_LEN`].
pub const MAX_RECORD_LEN: usize = 16 * 1024 * 1024;

/// Bytes of framing per record (`len` + `crc`).
pub const RECORD_HEADER_LEN: usize = 8;

/// IEEE CRC32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC32 (the ubiquitous zlib/Ethernet polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frames one payload as a WAL record (`len` + `crc` + payload).
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_RECORD_LEN, "record payload too large");
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// How a scan of the log's bytes ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanEnd {
    /// Every byte belonged to a well-formed record.
    Clean,
    /// The file ended mid-record (crash mid-append); the tail should
    /// be truncated.
    TornTail {
        /// Bytes past the last intact record.
        dropped_bytes: u64,
    },
    /// A complete record failed validation; everything from `offset`
    /// on should be quarantined.
    Corrupt {
        /// File offset of the first bad record.
        offset: u64,
        /// Human-readable reason (`"crc mismatch"` / `"length
        /// overflow"`).
        reason: &'static str,
    },
}

/// Result of scanning a log's bytes: the intact record payloads, the
/// length of the valid prefix, and how the scan ended.
#[derive(Debug)]
pub struct Scan<'a> {
    /// Payloads of every intact record, in append order.
    pub records: Vec<&'a [u8]>,
    /// Length of the valid prefix (where the next append belongs).
    pub valid_len: u64,
    /// Why scanning stopped.
    pub end: ScanEnd,
}

/// Scans an in-memory image of a log. Pure — this is the function the
/// property tests drive directly with synthesized corruption.
pub fn scan(buf: &[u8]) -> Scan<'_> {
    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        let remaining = buf.len() - at;
        if remaining == 0 {
            return Scan {
                records,
                valid_len: at as u64,
                end: ScanEnd::Clean,
            };
        }
        if remaining < RECORD_HEADER_LEN {
            return Scan {
                records,
                valid_len: at as u64,
                end: ScanEnd::TornTail {
                    dropped_bytes: remaining as u64,
                },
            };
        }
        let len = u32::from_be_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(buf[at + 4..at + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            return Scan {
                records,
                valid_len: at as u64,
                end: ScanEnd::Corrupt {
                    offset: at as u64,
                    reason: "length overflow",
                },
            };
        }
        if remaining - RECORD_HEADER_LEN < len {
            return Scan {
                records,
                valid_len: at as u64,
                end: ScanEnd::TornTail {
                    dropped_bytes: remaining as u64,
                },
            };
        }
        let payload = &buf[at + RECORD_HEADER_LEN..at + RECORD_HEADER_LEN + len];
        if crc32(payload) != crc {
            return Scan {
                records,
                valid_len: at as u64,
                end: ScanEnd::Corrupt {
                    offset: at as u64,
                    reason: "crc mismatch",
                },
            };
        }
        records.push(payload);
        at += RECORD_HEADER_LEN + len;
    }
}

/// What opening a log found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Intact records found (and returned for replay).
    pub records: u64,
    /// Torn-tail bytes truncated (crash mid-append).
    pub torn_bytes: u64,
    /// Corrupt bytes moved to the `.quarantine` sidecar.
    pub quarantined_bytes: u64,
}

/// An open write-ahead log, positioned for appending.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Records currently in the log (intact at open + appended since).
    records: u64,
    /// Whether every append is followed by `fsync`.
    fsync: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, repairs its tail,
    /// and returns the log, the intact record payloads in append
    /// order, and a [`WalRecovery`] describing any repair.
    ///
    /// With `fsync`, every append is flushed through to the device
    /// before returning — durable against power loss at a large
    /// throughput cost. Without it, appends are buffered writes:
    /// durable against *process* crash (the kernel holds the bytes)
    /// but not power failure. See `docs/ARCHITECTURE.md`.
    pub fn open(path: &Path, fsync: bool) -> std::io::Result<(Self, Vec<Vec<u8>>, WalRecovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        let scanned = scan(&buf);
        let mut recovery = WalRecovery {
            records: scanned.records.len() as u64,
            ..WalRecovery::default()
        };
        match scanned.end {
            ScanEnd::Clean => {}
            ScanEnd::TornTail { dropped_bytes } => {
                recovery.torn_bytes = dropped_bytes;
                instrument::WAL_TORN_BYTES.add(dropped_bytes);
            }
            ScanEnd::Corrupt { offset, .. } => {
                let bad = &buf[offset as usize..];
                recovery.quarantined_bytes = bad.len() as u64;
                instrument::WAL_QUARANTINED_BYTES.add(bad.len() as u64);
                let mut sidecar = path.as_os_str().to_owned();
                sidecar.push(".quarantine");
                std::fs::write(PathBuf::from(sidecar), bad)?;
            }
        }
        if scanned.valid_len != buf.len() as u64 {
            file.set_len(scanned.valid_len)?;
        }
        file.seek(SeekFrom::Start(scanned.valid_len))?;

        let records: Vec<Vec<u8>> = scanned.records.iter().map(|r| r.to_vec()).collect();
        instrument::WAL_REPLAYED.add(recovery.records);
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                records: recovery.records,
                fsync,
            },
            records,
            recovery,
        ))
    }

    /// Appends one record and (under the fsync policy) flushes it.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let frame = encode_record(payload);
        self.file.write_all(&frame)?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.records += 1;
        instrument::WAL_APPENDS.inc();
        instrument::WAL_BYTES.add(frame.len() as u64);
        Ok(())
    }

    /// Truncates the log to zero records (compaction, after the state
    /// it described has been captured in a snapshot).
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        if self.fsync {
            self.file.sync_data()?;
        }
        self.records = 0;
        Ok(())
    }

    /// Records currently in the log.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let dir = TempDir::new("wal-roundtrip").unwrap();
        let path = dir.path().join("t.wal");
        {
            let (mut wal, recs, rec) = Wal::open(&path, false).unwrap();
            assert!(recs.is_empty());
            assert_eq!(rec, WalRecovery::default());
            wal.append(b"one").unwrap();
            wal.append(b"").unwrap();
            wal.append(b"three").unwrap();
            assert_eq!(wal.record_count(), 3);
        }
        let (wal, recs, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(recs, vec![b"one".to_vec(), b"".to_vec(), b"three".to_vec()]);
        assert_eq!(rec.records, 3);
        assert_eq!(rec.torn_bytes, 0);
        assert_eq!(wal.record_count(), 3);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = TempDir::new("wal-torn").unwrap();
        let path = dir.path().join("t.wal");
        {
            let (mut wal, _, _) = Wal::open(&path, false).unwrap();
            wal.append(b"kept").unwrap();
        }
        // Simulate a crash mid-append: half a header.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x00, 0x00, 0x00]);
        std::fs::write(&path, &bytes).unwrap();

        let (mut wal, recs, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(recs, vec![b"kept".to_vec()]);
        assert_eq!(rec.torn_bytes, 3);
        assert_eq!(rec.quarantined_bytes, 0);
        // The log is usable again.
        wal.append(b"after").unwrap();
        drop(wal);
        let (_, recs, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(recs, vec![b"kept".to_vec(), b"after".to_vec()]);
        assert_eq!(rec.torn_bytes, 0);
    }

    #[test]
    fn corruption_is_quarantined() {
        let dir = TempDir::new("wal-corrupt").unwrap();
        let path = dir.path().join("t.wal");
        {
            let (mut wal, _, _) = Wal::open(&path, false).unwrap();
            wal.append(b"good").unwrap();
            wal.append(b"flipped").unwrap();
        }
        // Flip a payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recs, rec) = Wal::open(&path, false).unwrap();
        assert_eq!(recs, vec![b"good".to_vec()]);
        assert_eq!(rec.quarantined_bytes, (RECORD_HEADER_LEN + 7) as u64);
        let sidecar = std::fs::read(path.with_extension("wal.quarantine")).unwrap();
        assert_eq!(sidecar.len(), RECORD_HEADER_LEN + 7);
    }

    #[test]
    fn reset_compacts_to_empty() {
        let dir = TempDir::new("wal-reset").unwrap();
        let path = dir.path().join("t.wal");
        let (mut wal, _, _) = Wal::open(&path, false).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.record_count(), 0);
        wal.append(b"c").unwrap();
        drop(wal);
        let (_, recs, _) = Wal::open(&path, false).unwrap();
        assert_eq!(recs, vec![b"c".to_vec()]);
    }
}
