//! Scoped data directories with drop-cleanup.
//!
//! A shared test helper (usable from any crate in the workspace): each
//! [`TempDir`] is a freshly created directory under the OS temp root,
//! removed — recursively — when the value drops. Recovery and chaos
//! tests use these for their `*.wal` / `*.snap` files so test data
//! never lands in the repository tree (the `.gitignore` patterns are a
//! second line of defense).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide uniquifier so concurrent tests never collide.
static NEXT: AtomicU64 = AtomicU64::new(0);

/// A temporary directory that removes itself (and its contents) on
/// drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory under the OS temp root named
    /// `<prefix>-<pid>-<n>`.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "nb-{}-{}-{}",
            prefix,
            std::process::id(),
            n
        ));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the guard *without* deleting the directory (for
    /// debugging a failing test's on-disk state).
    pub fn keep(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            // Best-effort: a cleanup failure must not panic a test's
            // unwind path.
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let dir = TempDir::new("unit").unwrap();
            kept = dir.path().to_path_buf();
            std::fs::write(dir.path().join("f.wal"), b"x").unwrap();
            assert!(kept.is_dir());
        }
        assert!(!kept.exists());
    }

    #[test]
    fn distinct_per_call() {
        let a = TempDir::new("unit").unwrap();
        let b = TempDir::new("unit").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn keep_disarms_cleanup() {
        let dir = TempDir::new("unit").unwrap();
        let path = dir.keep();
        assert!(path.is_dir());
        std::fs::remove_dir_all(&path).unwrap();
    }
}
