//! Process-wide durability aggregates on the global metrics registry.
//!
//! One process may host many stores (a broker, several trackers, a
//! TDN); the counters here aggregate across all of them so a single
//! dump shows total durability activity. Names are catalogued in
//! `docs/OBSERVABILITY.md` under the `store.*` family.

use std::sync::LazyLock;

use nb_metrics::Counter;

macro_rules! store_counter {
    ($static_name:ident, $metric:literal) => {
        pub(crate) static $static_name: LazyLock<Counter> =
            LazyLock::new(|| nb_metrics::global().counter($metric));
    };
}

store_counter!(WAL_APPENDS, "store.wal.appends");
store_counter!(WAL_BYTES, "store.wal.bytes");
store_counter!(WAL_REPLAYED, "store.wal.records.replayed");
store_counter!(WAL_TORN_BYTES, "store.wal.torn.bytes");
store_counter!(WAL_QUARANTINED_BYTES, "store.wal.quarantined.bytes");
store_counter!(SNAPSHOTS_WRITTEN, "store.snapshots.written");
store_counter!(SNAPSHOTS_LOADED, "store.snapshots.loaded");
store_counter!(SNAPSHOTS_QUARANTINED, "store.snapshots.quarantined");
store_counter!(OPS_RECORDED, "store.ops.recorded");
store_counter!(OPS_DECODE_FAILED, "store.ops.decode_failed");
store_counter!(RECOVERIES, "store.recoveries");
