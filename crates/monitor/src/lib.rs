//! Online runtime verification for the tracing fabric.
//!
//! Following the runtime-verification-container style for
//! publish/subscribe networks, this crate attaches *online monitors*
//! to the broker data plane and the tracing engine: every delivery
//! decision and every availability verdict is checked, as it happens,
//! against a set of safety properties expressed over constrained-topic
//! patterns. The monitors are passive — they never veto a delivery —
//! but every breach is recorded, counted under `monitor.*` metrics,
//! and published as an *authenticated violation trace* on a dedicated
//! audit topic so that a remote auditor can subscribe to the fabric's
//! own misbehaviour reports and verify their provenance.
//!
//! # The property DSL
//!
//! Properties are one-per-line, `name: kind [args] on /topic/pattern`,
//! with `#`-prefixed comments. Patterns use the routing filter grammar
//! (`*` one segment, trailing `#` any suffix). Kinds:
//!
//! | kind | checks |
//! |------|--------|
//! | `require-token` | every delivery on the pattern carries an authorization token that is inside its validity window and, when the topic owner's key is known, carries a valid owner signature ([`PropertyKind::RequireToken`]) |
//! | `max-hops N` | the hop count of a traced frame never exceeds `N` ([`PropertyKind::MaxHops`], lenient: untraced frames pass) |
//! | `require-ttl N` | frames must carry a trace/TTL section *and* stay within `N` hops (strict — scope it to channels where tracing is guaranteed) |
//! | `exactly-once` | no `(node, sender, message-id)` triple is ever delivered twice — catches replay after link repair |
//! | `causal-verdicts` | availability verdicts are causally consistent with the ping traffic that produced them (failure verdicts require an outstanding unanswered ping; positive verdicts require an observed response) |
//!
//! The pattern of a `causal-verdicts` property is matched against the
//! synthetic topic `/Entities/{entity-id}`, so `/Entities/#` monitors
//! every session.
//!
//! # Red-team hooks
//!
//! Every property has an adversarial counterpart in the simulated
//! transport (`SimNetwork::tamper` / `SimNetwork::replay`): forged
//! tokens, stripped TTL sections and duplicated frames are injected on
//! inter-broker links and the paired tests in `crates/tracing`
//! prove each monitor fires — and stays silent on a clean run.

pub mod dsl;
pub mod event;
mod set;

pub use dsl::{parse_properties, standard_properties, PropertyKind, PropertySpec};
pub use event::{DeliveryEvent, TokenSource, TopicRef, VerdictKind};
pub use set::{audit_topic, AuditSink, MonitorSet, Violation};
