//! The observation model: what the broker and the tracing engine
//! report to an attached [`MonitorSet`](crate::MonitorSet).
//!
//! Events borrow from the caller's stack — the broker's fast path
//! hands over a [`nb_wire::MessageView`] into the very frame buffer it
//! is about to forward, so building an event costs no allocation.

use nb_wire::codec::Decode;
use nb_wire::{AuthorizationToken, MessageView, SessionTag, Topic, TopicView};

/// A borrowed view of the topic a delivery happened on — either the
/// owned [`Topic`] of a decoded message (slow path) or the zero-copy
/// [`TopicView`] of a cached-route frame (fast path).
#[derive(Debug, Clone, Copy)]
pub enum TopicRef<'a> {
    /// Owned-decode path: the topic of a `nb_wire::Message`.
    Owned(&'a Topic),
    /// Zero-copy path: the topic section of a raw frame.
    View(&'a TopicView<'a>),
}

impl TopicRef<'_> {
    /// Whether the topic matches a routing filter (`*` one segment,
    /// trailing `#` any suffix). Allocation-free on both variants.
    pub fn matches_filter(&self, filter: &Topic) -> bool {
        match self {
            TopicRef::Owned(t) => t.matches_filter(filter),
            TopicRef::View(v) => v.matches_filter(filter),
        }
    }

    /// Renders the topic path (only called on the violation path,
    /// where allocation is fine).
    pub fn render(&self) -> String {
        match self {
            TopicRef::Owned(t) => t.to_string(),
            TopicRef::View(v) => v
                .to_topic()
                .map(|t| t.to_string())
                .unwrap_or_else(|_| "<invalid topic>".to_string()),
        }
    }
}

/// Where an event's authorization token can be found, if anywhere.
///
/// The fast path never decodes tokens (that is the point of the route
/// cache), so it hands the monitor the raw frame instead; the monitor
/// performs the owned decode lazily, and only when a `require-token`
/// property actually matched the topic.
#[derive(Debug, Clone, Copy)]
pub enum TokenSource<'a> {
    /// The envelope carries no token.
    Absent,
    /// Slow path: the token was already decoded with the message.
    Decoded(&'a AuthorizationToken),
    /// Fast path: the frame's header flags a token; decode from these
    /// raw bytes on demand.
    Frame(&'a [u8]),
}

impl TokenSource<'_> {
    /// Resolves the token to an owned value, decoding the frame if
    /// needed. `None` means genuinely absent; `Some(Err(..))` means
    /// the frame flagged a token but would not decode.
    pub fn resolve(&self) -> Option<Result<AuthorizationToken, nb_wire::WireError>> {
        match self {
            TokenSource::Absent => None,
            TokenSource::Decoded(t) => Some(Ok((*t).clone())),
            TokenSource::Frame(frame) => match nb_wire::Message::from_bytes(frame) {
                Ok(msg) => msg.token.map(Ok),
                Err(e) => Some(Err(e)),
            },
        }
    }
}

/// One delivery decision: broker `node` is about to hand `sender`'s
/// message to at least one local subscriber or downstream neighbour.
#[derive(Debug, Clone, Copy)]
pub struct DeliveryEvent<'a> {
    /// Broker reporting the event.
    pub node: &'a str,
    /// Topic the message was routed on.
    pub topic: TopicRef<'a>,
    /// `nb_wire::topic_hash` of the topic — the caller already has it
    /// on the fast path, and the monitor's prefilter keys on it.
    pub topic_hash: u64,
    /// Publishing client/broker id from the envelope.
    pub sender: &'a str,
    /// Envelope message id (unique per sender).
    pub msg_id: u64,
    /// Hop count from the trace/TTL section, `None` if untraced.
    pub hop: Option<u8>,
    /// Authorization evidence.
    pub token: TokenSource<'a>,
    /// Session tag from the envelope's trailing section, when the
    /// frame authenticates via a negotiated session key instead of an
    /// RSA-signed token (the broker verifies the MAC before reporting;
    /// the monitor audits the key's revocation state).
    pub session: Option<SessionTag>,
    /// Wall-clock milliseconds for token-window checks and reports.
    pub now_ms: u64,
}

impl<'a> DeliveryEvent<'a> {
    /// Builds an event from a zero-copy frame view (broker fast path).
    /// `hop` is the post-increment hop count the frame will carry
    /// onward; `frame` must be the buffer `view` was parsed from.
    pub fn from_view(
        node: &'a str,
        view: &'a MessageView<'a>,
        frame: &'a [u8],
        topic_hash: u64,
        hop: Option<u8>,
    ) -> Self {
        DeliveryEvent {
            node,
            topic: TopicRef::View(&view.topic),
            topic_hash,
            sender: view.sender,
            msg_id: view.id,
            hop,
            token: if view.has_token {
                TokenSource::Frame(frame)
            } else {
                TokenSource::Absent
            },
            session: view.session,
            now_ms: view.timestamp_ms,
        }
    }
}

/// The three availability verdicts the tracing engine can render
/// about a session (collapsing the trace vocabulary to what the
/// causal-consistency property needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// ALLS_WELL — the entity responded.
    AllsWell,
    /// FAILURE_SUSPICION — pings outstanding past the soft deadline.
    Suspect,
    /// FAILED — the failure detector gave up on the entity.
    Failed,
}

impl VerdictKind {
    /// Human-readable name used in violation reports.
    pub fn as_str(self) -> &'static str {
        match self {
            VerdictKind::AllsWell => "AllsWell",
            VerdictKind::Suspect => "Suspect",
            VerdictKind::Failed => "Failed",
        }
    }
}
