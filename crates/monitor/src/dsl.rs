//! The property DSL: a one-line-per-property grammar compiled to
//! [`PropertySpec`]s. See the crate docs for the table of kinds.

use nb_wire::Topic;

/// Hard cap on properties per monitor set: the delivery-path
/// prefilter packs one bit per property into a 16-bit mask (see
/// `MonitorSet`), so a set can hold at most 16 specs.
pub const MAX_PROPERTIES: usize = 16;

/// What a property checks. See the crate-level DSL table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyKind {
    /// Deliveries on the pattern must carry a valid authorization
    /// token (window-checked always; signature-checked when the topic
    /// owner's key has been registered with the monitor).
    RequireToken,
    /// Hop count must stay within `bound`. With `require_trace`, a
    /// missing trace/TTL section is itself a violation (use only on
    /// channels where every publisher attaches a trace context).
    MaxHops {
        /// Maximum tolerated hop count.
        bound: u8,
        /// Whether an absent trace section is a violation.
        require_trace: bool,
    },
    /// Deliveries on the pattern must not be authenticated by a
    /// session key the monitor has seen revoked (a replay under a
    /// retired key). Untagged traffic is governed by `RequireToken`
    /// instead; tags under keys never revoked here pass.
    SessionAuth,
    /// No `(node, sender, message-id)` triple may be delivered twice.
    ExactlyOnce,
    /// Availability verdicts must be causally consistent with ping
    /// traffic (matched against `/Entities/{entity-id}`).
    CausalVerdicts,
}

/// One compiled property: a name (used in metrics and audit reports),
/// a constrained-topic pattern, and the check to run.
#[derive(Debug, Clone)]
pub struct PropertySpec {
    /// Property name — becomes the `monitor.violations.{name}` counter
    /// and the `property` field of audit reports.
    pub name: String,
    /// Topic filter selecting the traffic this property governs
    /// (`*` one segment, trailing `#` any suffix).
    pub pattern: Topic,
    /// The check to evaluate on matching traffic.
    pub kind: PropertyKind,
}

/// Parses DSL text into property specs.
///
/// Grammar, one property per line:
///
/// ```text
/// # comments and blank lines are skipped
/// auth:   require-token on /Constrained/Traces/*/Publish-Only/#
/// sess:   require-session on /Constrained/Traces/*/Publish-Only/#
/// ttl:    max-hops 16 on /Constrained/Traces/#
/// strip:  require-ttl 16 on /Constrained/Traces/*/Publish-Only/*/*/ChangeNotifications
/// replay: exactly-once on /Constrained/Traces/#
/// causal: causal-verdicts on /Entities/#
/// ```
///
/// # Errors
///
/// Returns a human-readable message naming the offending line for
/// syntax errors, unknown kinds, bad bounds, invalid patterns,
/// duplicate names, or more than [`MAX_PROPERTIES`] properties.
pub fn parse_properties(text: &str) -> Result<Vec<PropertySpec>, String> {
    let mut specs: Vec<PropertySpec> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("property line {}: {what}: {line:?}", lineno + 1);
        let (name, rest) = line
            .split_once(':')
            .ok_or_else(|| err("missing `name:` prefix"))?;
        let name = name.trim();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') {
            return Err(err("property name must be [A-Za-z0-9_-]+"));
        }
        if specs.iter().any(|s| s.name == name) {
            return Err(err("duplicate property name"));
        }
        let (check, pattern) = rest
            .split_once(" on ")
            .ok_or_else(|| err("missing ` on <pattern>`"))?;
        let pattern = Topic::parse(pattern.trim()).map_err(|e| err(&format!("bad pattern ({e})")))?;
        let mut words = check.split_whitespace();
        let kind = match words.next() {
            Some("require-token") => PropertyKind::RequireToken,
            Some(k @ ("max-hops" | "require-ttl")) => {
                let bound = words
                    .next()
                    .and_then(|w| w.parse::<u8>().ok())
                    .ok_or_else(|| err("expected a hop bound in 0..=255"))?;
                PropertyKind::MaxHops {
                    bound,
                    require_trace: k == "require-ttl",
                }
            }
            Some("require-session") => PropertyKind::SessionAuth,
            Some("exactly-once") => PropertyKind::ExactlyOnce,
            Some("causal-verdicts") => PropertyKind::CausalVerdicts,
            _ => return Err(err("unknown property kind")),
        };
        if words.next().is_some() {
            return Err(err("trailing tokens after property kind"));
        }
        specs.push(PropertySpec {
            name: name.to_string(),
            pattern,
            kind,
        });
    }
    if specs.len() > MAX_PROPERTIES {
        return Err(format!(
            "too many properties: {} (max {MAX_PROPERTIES})",
            specs.len()
        ));
    }
    Ok(specs)
}

/// The standard property set covering the paper's core guarantees:
/// authorized delivery, no replays under revoked session keys,
/// bounded TTL, exactly-once delivery, and causally consistent
/// availability verdicts.
///
/// `max_hops` should mirror `BrokerConfig::max_hops`. When
/// `strict_ttl` is set (use only with telemetry enabled, where every
/// trace publication carries a context) a fifth property additionally
/// flags change-notification publications whose TTL section was
/// stripped in flight.
pub fn standard_properties(max_hops: u8, strict_ttl: bool) -> Vec<PropertySpec> {
    let mut text = format!(
        "auth: require-token on /Constrained/Traces/*/Publish-Only/#\n\
         session: require-session on /Constrained/Traces/*/Publish-Only/#\n\
         ttl: max-hops {max_hops} on /Constrained/Traces/#\n\
         replay: exactly-once on /Constrained/Traces/#\n\
         causal: causal-verdicts on /Entities/#\n"
    );
    if strict_ttl {
        text.push_str(&format!(
            "ttl-strip: require-ttl {max_hops} on /Constrained/Traces/*/Publish-Only/*/*/ChangeNotifications\n"
        ));
    }
    parse_properties(&text).expect("standard property set always parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let specs = parse_properties(
            "# header comment\n\
             \n\
             a: require-token on /Constrained/Traces/#\n\
             b: max-hops 7 on /x/*/y\n\
             c: require-ttl 3 on /x/#\n\
             d: exactly-once on /z\n\
             e: causal-verdicts on /Entities/#\n\
             f: require-session on /Constrained/Traces/#\n",
        )
        .expect("parse");
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].kind, PropertyKind::RequireToken);
        assert_eq!(
            specs[1].kind,
            PropertyKind::MaxHops {
                bound: 7,
                require_trace: false
            }
        );
        assert_eq!(
            specs[2].kind,
            PropertyKind::MaxHops {
                bound: 3,
                require_trace: true
            }
        );
        assert_eq!(specs[3].kind, PropertyKind::ExactlyOnce);
        assert_eq!(specs[4].kind, PropertyKind::CausalVerdicts);
        assert_eq!(specs[5].kind, PropertyKind::SessionAuth);
        assert_eq!(specs[1].pattern.to_string(), "/x/*/y");
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "no-colon require-token on /x",
            "a: require-token /x",
            "a: max-hops on /x",
            "a: max-hops 300 on /x",
            "a: warp-drive on /x",
            "a: exactly-once extra on /x",
            "sp ace: exactly-once on /x",
            "a: exactly-once on /",
        ] {
            assert!(parse_properties(bad).is_err(), "accepted: {bad}");
        }
        let dup = "a: exactly-once on /x\na: require-token on /y\n";
        assert!(parse_properties(dup).is_err(), "accepted duplicate name");
    }

    #[test]
    fn enforces_property_cap() {
        let text: String = (0..MAX_PROPERTIES + 1)
            .map(|i| format!("p{i}: exactly-once on /t/{i}\n"))
            .collect();
        assert!(parse_properties(&text).is_err());
    }

    #[test]
    fn standard_set_has_the_core_properties() {
        let specs = standard_properties(16, false);
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["auth", "session", "ttl", "replay", "causal"]);
        let strict = standard_properties(16, true);
        assert_eq!(strict.len(), 6);
        assert_eq!(strict[5].name, "ttl-strip");
    }
}
