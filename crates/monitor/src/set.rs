//! [`MonitorSet`]: the online evaluator. One set holds the compiled
//! properties, the per-property state machines, the violation log and
//! the audit publisher; a single set is shared (via `Clone`) by every
//! broker and engine in a deployment so cross-node properties (such
//! as exactly-once) see the whole fabric.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use nb_crypto::{Credential, RsaPublicKey, Uuid};
use nb_metrics::{Counter, Histogram, Registry, Snapshot};
use nb_telemetry::SpanEvent;
use nb_wire::codec::{Reader, Writer};
use nb_wire::{
    AllowedActions, AuthorizationToken, ConstrainedTopic, Constrainer, Distribution, EventType,
    Message, Payload, Rights, Topic,
};
use parking_lot::{Mutex, RwLock};

use crate::dsl::{PropertyKind, PropertySpec};
use crate::event::{DeliveryEvent, TokenSource, TopicRef, VerdictKind};

/// Callback the monitor hands signed audit messages to — typically
/// `Broker::publish_internal` on one broker of the deployment.
pub type AuditSink = Arc<dyn Fn(Message) + Send + Sync>;

/// The audit topic violations are published on:
/// `/Constrained/RealTime/Monitor/Publish-Only/Disseminate/Audit`.
/// Publish-Only with constrainer `Monitor` means only the monitor's
/// own client identity may publish here, while any auditor may
/// subscribe; `RealTime` keeps it outside the token-guarded `Traces`
/// class (audit reports authenticate by message signature instead).
pub fn audit_topic() -> Topic {
    ConstrainedTopic::new(
        EventType::RealTime,
        Constrainer::Entity("Monitor".to_string()),
        AllowedActions::PublishOnly,
        Distribution::Disseminate,
        vec!["Audit".to_string()],
    )
    .to_topic()
}

/// One property breach, as retained in the monitor's log and encoded
/// into the audit report payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the property that fired.
    pub property: String,
    /// Node (broker/engine id) the violation was observed on.
    pub node: String,
    /// Topic the offending traffic was routed on (or the synthetic
    /// `/Entities/{id}` topic for verdict properties).
    pub topic: String,
    /// Human-readable description of the breach.
    pub detail: String,
    /// Wall-clock milliseconds when the breach was observed.
    pub timestamp_ms: u64,
    /// Monotonic sequence number within this monitor set.
    pub seq: u64,
}

impl Violation {
    /// Serializes the violation for the audit message payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str(&self.property);
        w.put_str(&self.node);
        w.put_str(&self.topic);
        w.put_str(&self.detail);
        w.put_u64(self.timestamp_ms);
        w.put_u64(self.seq);
        w.into_bytes()
    }

    /// Decodes a violation from an audit message payload.
    ///
    /// # Errors
    ///
    /// Returns the wire error if the bytes do not parse.
    pub fn from_bytes(bytes: &[u8]) -> nb_wire::Result<Self> {
        let mut r = Reader::new(bytes);
        let v = Violation {
            property: r.get_str()?,
            node: r.get_str()?,
            topic: r.get_str()?,
            detail: r.get_str()?,
            timestamp_ms: r.get_u64()?,
            seq: r.get_u64()?,
        };
        r.expect_end("violation report")?;
        Ok(v)
    }
}

/// Dedup window for the exactly-once property. Bounded: the oldest
/// key is evicted once the window is full, so very old replays can in
/// principle escape — the bound trades that tail for O(1) memory.
struct DedupWindow {
    seen: HashSet<(String, String, u64)>,
    order: VecDeque<(String, String, u64)>,
    cap: usize,
}

impl DedupWindow {
    fn new(cap: usize) -> Self {
        DedupWindow {
            seen: HashSet::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// Records a delivery; returns `true` if it was already seen.
    fn check_and_insert(&mut self, key: (String, String, u64)) -> bool {
        if self.seen.contains(&key) {
            return true;
        }
        if self.order.len() >= self.cap {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.order.push_back(key.clone());
        self.seen.insert(key);
        false
    }
}

/// Ping bookkeeping for one `(engine node, entity)` session, backing
/// the causal-verdicts property.
#[derive(Default)]
struct PingLedger {
    /// Sequence numbers pinged but not yet answered.
    outstanding: HashSet<u64>,
    /// Insertion order of `outstanding`, for bounded eviction.
    order: VecDeque<u64>,
    /// When the most recent ping response was observed.
    answered_ms: Option<u64>,
    /// When the most recent FAILED verdict was rendered; a positive
    /// verdict needs a response observed *after* this.
    last_fail_ms: Option<u64>,
}

const LEDGER_OUTSTANDING_CAP: usize = 1024;
const DEDUP_WINDOW_CAP: usize = 8192;
const PREFILTER_SLOTS: usize = 256;
const PREFILTER_MASK_BITS: u64 = 0xFFFF;

struct MonitorMetrics {
    registry: Registry,
    events: Counter,
    violations: Counter,
    audit_published: Counter,
    check_ns: Histogram,
}

struct SetInner {
    specs: Vec<PropertySpec>,
    /// Indices of specs by kind, so the hot path never scans
    /// non-delivery properties.
    verdict_specs: Vec<usize>,
    token_skew_ms: u64,
    credential: Credential,
    /// Direct-mapped topic-hash → property-mask cache. Each slot packs
    /// the hash's high 48 bits as a tag with a 16-bit property mask
    /// (one bit per spec); 0 means empty. A tag mismatch or empty slot
    /// recomputes from the patterns — always correct, just slower.
    prefilter: [AtomicU64; PREFILTER_SLOTS],
    owner_keys: RwLock<HashMap<Uuid, RsaPublicKey>>,
    /// Session-key ids seen revoked: deliveries tagged under any of
    /// these breach a `require-session` property.
    revoked_sessions: RwLock<HashSet<u64>>,
    dedup: Mutex<DedupWindow>,
    ledgers: Mutex<HashMap<(String, String), PingLedger>>,
    violations: Mutex<Vec<Violation>>,
    audit: RwLock<Option<AuditSink>>,
    metrics: MonitorMetrics,
    seq: AtomicU64,
    sample: AtomicU64,
}

/// A shared set of online monitors. Cheap to clone (all clones share
/// state); attach one set to every broker and engine of a deployment.
#[derive(Clone)]
pub struct MonitorSet {
    inner: Arc<SetInner>,
}

impl MonitorSet {
    /// Builds a monitor set over `specs`, signing audit reports with
    /// `credential`. `token_skew_ms` mirrors the broker's clock-skew
    /// tolerance for token-window checks.
    ///
    /// # Panics
    ///
    /// Panics if `specs` exceeds [`crate::dsl::MAX_PROPERTIES`] (the
    /// DSL parser enforces the same cap with an error).
    pub fn new(specs: Vec<PropertySpec>, credential: Credential, token_skew_ms: u64) -> Self {
        assert!(
            specs.len() <= crate::dsl::MAX_PROPERTIES,
            "monitor set capped at {} properties",
            crate::dsl::MAX_PROPERTIES
        );
        let registry = Registry::new();
        let metrics = MonitorMetrics {
            events: registry.counter("monitor.events"),
            violations: registry.counter("monitor.violations"),
            audit_published: registry.counter("monitor.audit.published"),
            check_ns: registry.histogram("monitor.check_ns"),
            registry,
        };
        let verdict_specs = specs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == PropertyKind::CausalVerdicts)
            .map(|(i, _)| i)
            .collect();
        MonitorSet {
            inner: Arc::new(SetInner {
                specs,
                verdict_specs,
                token_skew_ms,
                credential,
                prefilter: [const { AtomicU64::new(0) }; PREFILTER_SLOTS],
                owner_keys: RwLock::new(HashMap::new()),
                revoked_sessions: RwLock::new(HashSet::new()),
                dedup: Mutex::new(DedupWindow::new(DEDUP_WINDOW_CAP)),
                ledgers: Mutex::new(HashMap::new()),
                violations: Mutex::new(Vec::new()),
                audit: RwLock::new(None),
                metrics,
                seq: AtomicU64::new(0),
                sample: AtomicU64::new(0),
            }),
        }
    }

    /// Registers a trace-topic owner's public key, enabling full
    /// signature verification of that topic's authorization tokens
    /// (mirrors `Broker::register_topic_owner`; unknown owners get
    /// window-only checks, like a transit broker).
    pub fn register_owner(&self, trace_topic: Uuid, key: RsaPublicKey) {
        self.inner.owner_keys.write().insert(trace_topic, key);
    }

    /// Records a session-key revocation: any later delivery tagged
    /// under `key_id` breaches the `require-session` properties
    /// governing its topic. Brokers keep this registry in sync via
    /// `Broker::revoke_session_key`; auditors can also feed it from
    /// signed `SessionKeyRevoke` broadcasts on the audit topic.
    pub fn revoke_session_key(&self, key_id: u64) {
        self.inner.revoked_sessions.write().insert(key_id);
    }

    /// Whether `key_id` has been revoked on this monitor.
    pub fn is_session_revoked(&self, key_id: u64) -> bool {
        self.inner.revoked_sessions.read().contains(&key_id)
    }

    /// Installs the audit publisher. Until a sink is set, violations
    /// are only logged and counted.
    pub fn set_audit_sink(&self, sink: AuditSink) {
        *self.inner.audit.write() = Some(sink);
    }

    /// The monitor's certificate — auditors verify audit-message
    /// signatures against its public key.
    pub fn certificate(&self) -> &nb_crypto::Certificate {
        &self.inner.credential.certificate
    }

    /// Violations observed so far (clone of the log).
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.violations.lock().clone()
    }

    /// Number of violations observed so far.
    pub fn violation_count(&self) -> u64 {
        self.inner.metrics.violations.get()
    }

    /// Snapshot of the `monitor.*` metrics family.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.inner.metrics.registry.snapshot()
    }

    /// Whether any delivery property governs `topic`. The broker
    /// resolves this once per route-cache fill and stores the verdict
    /// in the entry, so steady-state traffic on unmonitored topics
    /// never reaches [`MonitorSet::on_delivery`] at all.
    pub fn monitors_topic(&self, hash: u64, topic: &TopicRef<'_>) -> bool {
        self.property_mask(hash, topic) != 0
    }

    /// Evaluates every matching delivery property against one routing
    /// decision. Called by the broker for each message it is about to
    /// deliver or forward on a topic that passed
    /// [`MonitorSet::monitors_topic`] (the slow path calls it for every
    /// delivery); cheap when nothing matches — one counter bump and one
    /// atomic prefilter probe.
    pub fn on_delivery(&self, ev: &DeliveryEvent<'_>) {
        let inner = &*self.inner;
        inner.metrics.events.inc();
        let mask = self.property_mask(ev.topic_hash, &ev.topic);
        if mask == 0 {
            // Unmonitored topic: the whole call cost one counter bump
            // and one prefilter probe.
            return;
        }
        // 1-in-64 sampled timing keeps the Instant syscalls off most
        // checked events while still populating monitor.check_ns.
        let sampled = inner.sample.fetch_add(1, Ordering::Relaxed) & 63 == 0;
        let t0 = sampled.then(Instant::now);
        for (i, spec) in inner.specs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                self.check_delivery(spec, ev);
            }
        }
        if let Some(t0) = t0 {
            inner
                .metrics
                .check_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Prefilter: which properties (bitmask) govern this topic.
    fn property_mask(&self, hash: u64, topic: &TopicRef<'_>) -> u64 {
        let inner = &*self.inner;
        let slot = &inner.prefilter[(hash as usize) & (PREFILTER_SLOTS - 1)];
        let tag = hash & !PREFILTER_MASK_BITS;
        let packed = slot.load(Ordering::Relaxed);
        if packed != 0 && (packed & !PREFILTER_MASK_BITS) == tag {
            return packed & PREFILTER_MASK_BITS;
        }
        // Miss: recompute from the patterns (allocation-free — both
        // TopicRef variants match filters in place) and publish the
        // result. Races just repeat the same idempotent computation.
        let mut mask = 0u64;
        for (i, spec) in inner.specs.iter().enumerate() {
            if spec.kind != PropertyKind::CausalVerdicts && topic.matches_filter(&spec.pattern) {
                mask |= 1 << i;
            }
        }
        slot.store(tag | mask, Ordering::Relaxed);
        mask
    }

    fn check_delivery(&self, spec: &PropertySpec, ev: &DeliveryEvent<'_>) {
        match spec.kind {
            PropertyKind::RequireToken => {
                // Session-tagged frames authenticate through the
                // broker's keyring (the MAC was verified before the
                // delivery was reported); their key state is audited
                // by `require-session`, so flagging the absent token
                // here would double-count one breach under two names.
                if ev.session.is_none() {
                    if let Some(detail) = self.token_verdict(&ev.token, ev.now_ms) {
                        self.flag(spec, ev.node, ev.topic.render(), detail, ev.now_ms);
                    }
                }
            }
            PropertyKind::SessionAuth => {
                if let Some(tag) = &ev.session {
                    if self.inner.revoked_sessions.read().contains(&tag.key_id) {
                        self.flag(
                            spec,
                            ev.node,
                            ev.topic.render(),
                            format!(
                                "delivery attempt under revoked session key {:#018x} (seq {})",
                                tag.key_id, tag.seq
                            ),
                            ev.now_ms,
                        );
                    }
                }
            }
            PropertyKind::MaxHops {
                bound,
                require_trace,
            } => match ev.hop {
                None if require_trace => self.flag(
                    spec,
                    ev.node,
                    ev.topic.render(),
                    "trace/TTL section missing from a channel that requires one".to_string(),
                    ev.now_ms,
                ),
                Some(h) if h > bound => self.flag(
                    spec,
                    ev.node,
                    ev.topic.render(),
                    format!("hop count {h} exceeds the bound of {bound}"),
                    ev.now_ms,
                ),
                _ => {}
            },
            PropertyKind::ExactlyOnce => {
                let key = (
                    ev.node.to_string(),
                    ev.sender.to_string(),
                    ev.msg_id,
                );
                if self.inner.dedup.lock().check_and_insert(key) {
                    self.flag(
                        spec,
                        ev.node,
                        ev.topic.render(),
                        format!(
                            "duplicate delivery of message {} from sender {:?}",
                            ev.msg_id, ev.sender
                        ),
                        ev.now_ms,
                    );
                }
            }
            PropertyKind::CausalVerdicts => {}
        }
    }

    /// `None` = token acceptable; `Some(detail)` = violation.
    fn token_verdict(&self, source: &TokenSource<'_>, now_ms: u64) -> Option<String> {
        let token = match source.resolve() {
            None => return Some("no authorization token attached".to_string()),
            Some(Err(e)) => return Some(format!("token flagged but frame would not decode: {e}")),
            Some(Ok(token)) => token,
        };
        self.token_detail(&token, now_ms)
    }

    fn token_detail(&self, token: &AuthorizationToken, now_ms: u64) -> Option<String> {
        let skew = self.inner.token_skew_ms;
        // Saturating on both sides: a token minted with a validity
        // bound near u64::MAX must read as "never expires", not wrap
        // into the past (mirrors `token_acceptable` in nb-broker).
        if now_ms.saturating_add(skew) < token.valid_from_ms
            || now_ms > token.valid_until_ms.saturating_add(skew)
        {
            return Some(format!(
                "token outside its validity window ({}..{} at {now_ms})",
                token.valid_from_ms, token.valid_until_ms
            ));
        }
        let keys = self.inner.owner_keys.read();
        match keys.get(&token.trace_topic) {
            Some(owner) => token
                .verify(owner, Rights::Publish, now_ms, skew)
                .err()
                .map(|e| format!("token failed owner-signature verification: {e}")),
            // Unknown owner: window-only, like a transit broker.
            None => None,
        }
    }

    /// Records that engine `node` pinged `entity` with sequence `seq`.
    pub fn on_ping_sent(&self, node: &str, entity: &str, seq: u64, _now_ms: u64) {
        self.inner.metrics.events.inc();
        let mut ledgers = self.inner.ledgers.lock();
        let ledger = ledgers
            .entry((node.to_string(), entity.to_string()))
            .or_default();
        if ledger.order.len() >= LEDGER_OUTSTANDING_CAP {
            if let Some(old) = ledger.order.pop_front() {
                ledger.outstanding.remove(&old);
            }
        }
        if ledger.outstanding.insert(seq) {
            ledger.order.push_back(seq);
        }
    }

    /// Records that `entity` answered ping `seq` on engine `node`.
    pub fn on_ping_answered(&self, node: &str, entity: &str, seq: u64, now_ms: u64) {
        self.inner.metrics.events.inc();
        let mut ledgers = self.inner.ledgers.lock();
        let ledger = ledgers
            .entry((node.to_string(), entity.to_string()))
            .or_default();
        if ledger.outstanding.remove(&seq) {
            ledger.order.retain(|&s| s != seq);
        }
        ledger.answered_ms = Some(now_ms);
    }

    /// Checks an availability verdict for causal consistency with the
    /// recorded ping traffic: failure verdicts need an outstanding
    /// unanswered ping, positive verdicts need a response observed
    /// since the last FAILED verdict.
    pub fn on_verdict(&self, node: &str, entity: &str, verdict: VerdictKind, now_ms: u64) {
        let inner = &*self.inner;
        inner.metrics.events.inc();
        if inner.verdict_specs.is_empty() {
            return;
        }
        // Verdict properties match on the synthetic per-entity topic.
        let Ok(entity_topic) = Topic::from_segments(["Entities", entity]) else {
            return;
        };
        let breach: Option<String> = {
            let mut ledgers = inner.ledgers.lock();
            let ledger = ledgers
                .entry((node.to_string(), entity.to_string()))
                .or_default();
            match verdict {
                VerdictKind::Suspect | VerdictKind::Failed => {
                    let ok = !ledger.outstanding.is_empty();
                    if verdict == VerdictKind::Failed {
                        ledger.last_fail_ms = Some(now_ms);
                    }
                    (!ok).then(|| {
                        format!(
                            "{} verdict for {entity:?} with no outstanding unanswered ping",
                            verdict.as_str()
                        )
                    })
                }
                VerdictKind::AllsWell => {
                    // Non-consuming: one answered ping legitimately
                    // yields both a recovery and a heartbeat verdict.
                    let supported = match (ledger.answered_ms, ledger.last_fail_ms) {
                        (Some(ans), Some(fail)) => ans >= fail,
                        (Some(_), None) => true,
                        (None, _) => false,
                    };
                    (!supported).then(|| {
                        format!(
                            "AllsWell verdict for {entity:?} without a supporting ping response"
                        )
                    })
                }
            }
        };
        if let Some(detail) = breach {
            for &i in &inner.verdict_specs {
                let spec = &inner.specs[i];
                if entity_topic.matches_filter(&spec.pattern) {
                    self.flag(spec, node, entity_topic.to_string(), detail.clone(), now_ms);
                }
            }
        }
    }

    /// Offline sweep over captured flight-recorder spans: re-checks
    /// the hop/TTL bound of every `max-hops`/`require-ttl` property
    /// against the hops recorded in the telemetry stream, and flags
    /// spans whose clocks run backwards. Returns the number of
    /// violations flagged.
    pub fn check_spans(&self, node: &str, spans: &[SpanEvent]) -> usize {
        let inner = &*self.inner;
        let bounds: Vec<&PropertySpec> = inner
            .specs
            .iter()
            .filter(|s| matches!(s.kind, PropertyKind::MaxHops { .. }))
            .collect();
        let mut flagged = 0;
        for span in spans {
            inner.metrics.events.inc();
            if span.end_ns < span.start_ns {
                for spec in &bounds {
                    self.flag(
                        spec,
                        node,
                        format!("trace:{:032x}", span.trace_id),
                        format!(
                            "span {:016x} ends {}ns before it starts",
                            span.span_id,
                            span.start_ns - span.end_ns
                        ),
                        0,
                    );
                    flagged += 1;
                }
                continue;
            }
            for spec in &bounds {
                if let PropertyKind::MaxHops { bound, .. } = spec.kind {
                    if span.hop > bound {
                        self.flag(
                            spec,
                            node,
                            format!("trace:{:032x}", span.trace_id),
                            format!(
                                "recorded span hop {} exceeds the bound of {bound}",
                                span.hop
                            ),
                            0,
                        );
                        flagged += 1;
                    }
                }
            }
        }
        flagged
    }

    /// Records one violation: log, metrics, and (when a sink is
    /// attached) a signed audit report.
    fn flag(&self, spec: &PropertySpec, node: &str, topic: String, detail: String, now_ms: u64) {
        let inner = &*self.inner;
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        inner.metrics.violations.inc();
        inner
            .metrics
            .registry
            .counter(&format!("monitor.violations.{}", spec.name))
            .inc();
        let violation = Violation {
            property: spec.name.clone(),
            node: node.to_string(),
            topic,
            detail,
            timestamp_ms: now_ms,
            seq,
        };
        inner.violations.lock().push(violation.clone());
        self.publish_audit(&violation);
    }

    fn publish_audit(&self, violation: &Violation) {
        let inner = &*self.inner;
        let sink = inner.audit.read().clone();
        let Some(sink) = sink else { return };
        let mut msg = Message::new(
            violation.seq + 1, // ids are per-sender; the monitor is its own sender
            audit_topic(),
            inner.credential.subject().to_string(),
            violation.timestamp_ms,
            Payload::Blob {
                data: violation.to_bytes(),
            },
        );
        if msg.sign(&inner.credential).is_ok() {
            sink(msg);
            inner.metrics.audit_published.inc();
        }
    }
}
