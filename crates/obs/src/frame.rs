//! The telemetry frame: one node's metric report, on the wire.

use nb_metrics::{HistogramSummary, Snapshot, SnapshotEntry, SnapshotValue};
use nb_wire::codec::{Reader, Writer};
use nb_wire::{Result, WireError};

/// Telemetry frame encoding version.
pub const FRAME_VERSION: u8 = 1;

const VALUE_COUNTER: u8 = 0;
const VALUE_GAUGE: u8 = 1;
const VALUE_HISTOGRAM: u8 = 2;

/// What kind of node produced a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A pub/sub broker (`broker.*` families).
    Broker,
    /// A tracing engine (`tracing.*` families).
    Engine,
    /// A topic-discovery node (`tdn.*` families).
    Tdn,
    /// Anything else reporting into the plane.
    Other,
}

impl NodeKind {
    fn tag(self) -> u8 {
        match self {
            NodeKind::Broker => 0,
            NodeKind::Engine => 1,
            NodeKind::Tdn => 2,
            NodeKind::Other => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => NodeKind::Broker,
            1 => NodeKind::Engine,
            2 => NodeKind::Tdn,
            3 => NodeKind::Other,
            _ => {
                return Err(WireError::UnknownTag {
                    what: "telemetry node kind",
                    tag,
                })
            }
        })
    }

    /// Lower-case label used in exposition output.
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Broker => "broker",
            NodeKind::Engine => "engine",
            NodeKind::Tdn => "tdn",
            NodeKind::Other => "node",
        }
    }
}

/// One periodic metric report from one node.
///
/// Entries carry **cumulative** values (the node's current counters),
/// not bare differences: a frame is interpretable on its own, so frame
/// loss thins the time series without corrupting totals. Non-keyframe
/// frames are *sparse* — they carry only the entries whose value
/// changed since the previous publish (found with
/// [`Snapshot::delta`]); every `full_every`-th frame (`full = true`)
/// carries the complete snapshot so an aggregator that missed sparse
/// frames resynchronizes exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFrame {
    /// Reporting node's identifier (broker id, `engine@b`, TDN id).
    pub node: String,
    /// Reporting node's role.
    pub kind: NodeKind,
    /// Heartbeat sequence number, starting at 0, one per publish.
    pub seq: u64,
    /// Publisher's clock (ms since epoch) when the frame was built.
    pub clock_ms: u64,
    /// Configured publish interval — lets any observer judge
    /// staleness without out-of-band configuration.
    pub interval_ms: u64,
    /// True when this frame carries the node's complete snapshot
    /// (keyframe); false when it carries only changed entries.
    pub full: bool,
    /// The reported entries (cumulative values).
    pub snapshot: Snapshot,
}

impl TelemetryFrame {
    /// Serializes the frame for a message payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(FRAME_VERSION);
        w.put_str(&self.node);
        w.put_u8(self.kind.tag());
        w.put_u64(self.seq);
        w.put_u64(self.clock_ms);
        w.put_varint(self.interval_ms);
        w.put_bool(self.full);
        w.put_seq(self.snapshot.entries(), |w, e| {
            w.put_str(&e.name);
            match &e.value {
                SnapshotValue::Counter(v) => {
                    w.put_u8(VALUE_COUNTER);
                    w.put_varint(*v);
                }
                SnapshotValue::Gauge(v) => {
                    w.put_u8(VALUE_GAUGE);
                    w.put_u64(*v as u64);
                }
                SnapshotValue::Histogram(h) => {
                    w.put_u8(VALUE_HISTOGRAM);
                    w.put_varint(h.count);
                    w.put_u64(h.sum);
                    w.put_varint(h.min);
                    w.put_varint(h.max);
                    // Sparse buckets: (index, count) pairs.
                    let nonzero: Vec<(u8, u64)> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(i, &n)| (i as u8, n))
                        .collect();
                    w.put_seq(&nonzero, |w, (i, n)| {
                        w.put_u8(*i);
                        w.put_varint(*n);
                    });
                }
            }
        });
        w.into_bytes()
    }

    /// Decodes a frame from a message payload.
    ///
    /// # Errors
    ///
    /// Returns the wire error when the bytes do not parse — including
    /// tampered frames whose structure no longer holds together.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let version = r.get_u8()?;
        if version != FRAME_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let node = r.get_str()?;
        let kind = NodeKind::from_tag(r.get_u8()?)?;
        let seq = r.get_u64()?;
        let clock_ms = r.get_u64()?;
        let interval_ms = r.get_varint()?;
        let full = r.get_bool()?;
        let entries = r.get_seq(|r| {
            let name = r.get_str()?;
            let value = match r.get_u8()? {
                VALUE_COUNTER => SnapshotValue::Counter(r.get_varint()?),
                VALUE_GAUGE => SnapshotValue::Gauge(r.get_u64()? as i64),
                VALUE_HISTOGRAM => {
                    let count = r.get_varint()?;
                    let sum = r.get_u64()?;
                    let min = r.get_varint()?;
                    let max = r.get_varint()?;
                    let mut h = HistogramSummary::empty();
                    h.count = count;
                    h.sum = sum;
                    h.min = min;
                    h.max = max;
                    let pairs = r.get_seq(|r| {
                        let idx = r.get_u8()?;
                        let n = r.get_varint()?;
                        Ok((idx, n))
                    })?;
                    for (idx, n) in pairs {
                        let slot = h.buckets.get_mut(idx as usize).ok_or(
                            WireError::LengthOverflow("telemetry histogram bucket index"),
                        )?;
                        *slot = n;
                    }
                    SnapshotValue::Histogram(h)
                }
                tag => {
                    return Err(WireError::UnknownTag {
                        what: "telemetry value kind",
                        tag,
                    })
                }
            };
            Ok(SnapshotEntry { name, value })
        })?;
        r.expect_end("telemetry frame")?;
        Ok(TelemetryFrame {
            node,
            kind,
            seq,
            clock_ms,
            interval_ms,
            full,
            snapshot: Snapshot::from_entries(entries),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_metrics::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("broker.publish.accepted").add(42);
        r.gauge("broker.clients").set(-3);
        let h = r.histogram("broker.route.ns");
        h.record(0);
        h.record(5);
        h.record(70_000);
        h.record(u64::MAX);
        r.snapshot()
    }

    #[test]
    fn frame_round_trips() {
        let frame = TelemetryFrame {
            node: "broker-1".into(),
            kind: NodeKind::Broker,
            seq: 7,
            clock_ms: 123_456,
            interval_ms: 250,
            full: true,
            snapshot: sample_snapshot(),
        };
        let decoded = TelemetryFrame::from_bytes(&frame.to_bytes()).unwrap();
        assert_eq!(decoded, frame);
        let h = decoded.snapshot.histogram("broker.route.ns").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn empty_frame_round_trips() {
        let frame = TelemetryFrame {
            node: "tdn-0".into(),
            kind: NodeKind::Tdn,
            seq: 0,
            clock_ms: 1,
            interval_ms: 1000,
            full: false,
            snapshot: Snapshot::default(),
        };
        assert_eq!(TelemetryFrame::from_bytes(&frame.to_bytes()).unwrap(), frame);
    }

    #[test]
    fn truncated_and_garbage_bytes_are_rejected() {
        let frame = TelemetryFrame {
            node: "b".into(),
            kind: NodeKind::Engine,
            seq: 1,
            clock_ms: 2,
            interval_ms: 3,
            full: true,
            snapshot: sample_snapshot(),
        };
        let bytes = frame.to_bytes();
        assert!(TelemetryFrame::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(TelemetryFrame::from_bytes(&[9, 9, 9]).is_err());
        let mut version_flip = bytes.clone();
        version_flip[0] = FRAME_VERSION + 1;
        assert!(TelemetryFrame::from_bytes(&version_flip).is_err());
    }

    #[test]
    fn bad_bucket_index_is_rejected() {
        let mut w = Writer::new();
        w.put_u8(FRAME_VERSION);
        w.put_str("n");
        w.put_u8(0); // broker
        w.put_u64(0);
        w.put_u64(0);
        w.put_varint(10);
        w.put_bool(false);
        w.put_varint(1); // one entry
        w.put_str("h");
        w.put_u8(VALUE_HISTOGRAM);
        w.put_varint(1); // count
        w.put_u64(1); // sum
        w.put_varint(1); // min
        w.put_varint(1); // max
        w.put_varint(1); // one bucket pair
        w.put_u8(200); // out-of-range bucket index
        w.put_varint(1);
        assert!(TelemetryFrame::from_bytes(&w.into_bytes()).is_err());
    }
}
