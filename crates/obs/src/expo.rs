//! Exposition: render the aggregator's view as Prometheus text or a
//! JSON document, for scrapers, scripts and CI.

use std::fmt::Write as _;
use std::time::Duration;

use nb_metrics::{HistogramSummary, Snapshot, SnapshotValue};

use crate::aggregator::{ClusterAggregator, HealthState};

/// Maps a dotted metric name to the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("obs_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Escapes a label value per the Prometheus text format.
fn prom_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn write_histogram(
    out: &mut String,
    name: &str,
    labels: &str,
    extra_comma: &str,
    h: &HistogramSummary,
) {
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count);
    let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum);
    for (q, v) in [
        (0.5, h.quantile(0.5)),
        (0.9, h.quantile(0.9)),
        (0.99, h.quantile(0.99)),
    ] {
        let _ = writeln!(out, "{name}{{{labels}{extra_comma}quantile=\"{q}\"}} {v}");
    }
}

fn write_snapshot(out: &mut String, snapshot: &Snapshot, labels: &str) {
    let extra_comma = if labels.is_empty() { "" } else { "," };
    for e in snapshot.entries() {
        let name = prom_name(&e.name);
        match &e.value {
            SnapshotValue::Counter(v) => {
                let _ = writeln!(out, "{name}{{{labels}}} {v}");
            }
            SnapshotValue::Gauge(v) => {
                let _ = writeln!(out, "{name}{{{labels}}} {v}");
            }
            SnapshotValue::Histogram(h) => {
                write_histogram(out, &name, labels, extra_comma, h);
            }
        }
    }
}

/// Renders the cluster view in the Prometheus text exposition format:
/// every node's metrics labelled `{node,kind}`, the cluster rollup
/// labelled `{scope="cluster"}`, and the health scoreboard as
/// `obs_node_health` (2 = up, 1 = degraded, 0 = down) plus
/// `obs_node_flaps` / `obs_node_seq`. `now_ms` must come from the same
/// clock domain the publishers stamp frames with.
pub fn prometheus_text(agg: &ClusterAggregator, now_ms: u64) -> String {
    let mut out = String::new();
    for health in agg.health_report(now_ms) {
        let labels = format!(
            "node=\"{}\",kind=\"{}\"",
            prom_label(&health.node),
            health.kind.label()
        );
        let score = match health.state {
            HealthState::Up => 2,
            HealthState::Degraded => 1,
            HealthState::Down => 0,
        };
        let _ = writeln!(out, "obs_node_health{{{labels}}} {score}");
        let _ = writeln!(out, "obs_node_flaps{{{labels}}} {}", health.flaps);
        let _ = writeln!(out, "obs_node_seq{{{labels}}} {}", health.seq);
        if let Some(total) = agg.node_total(&health.node) {
            write_snapshot(&mut out, &total, &labels);
        }
    }
    write_snapshot(&mut out, &agg.rollup(), "scope=\"cluster\"");
    write_snapshot(&mut out, &agg.metrics_snapshot(), "scope=\"aggregator\"");
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn json_snapshot(snapshot: &Snapshot) -> String {
    let mut parts = Vec::with_capacity(snapshot.len());
    for e in snapshot.entries() {
        let name = json_escape(&e.name);
        match &e.value {
            SnapshotValue::Counter(v) => parts.push(format!("\"{name}\": {v}")),
            SnapshotValue::Gauge(v) => parts.push(format!("\"{name}\": {v}")),
            SnapshotValue::Histogram(h) => parts.push(format!(
                "\"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.max
            )),
        }
    }
    format!("{{{}}}", parts.join(", "))
}

/// Renders the cluster view as one JSON document:
///
/// ```json
/// {
///   "now_ms": ...,
///   "nodes": [
///     {"node": "...", "kind": "broker", "health": "up", "seq": N,
///      "flaps": N, "frames": N, "last_heard_ms": N, "metrics": {...}},
///     ...
///   ],
///   "cluster": {...rollup...},
///   "aggregator": {...obs.* metrics...}
/// }
/// ```
///
/// Rates over `rate_window` are included per node as
/// `"rates": {"<counter>": per_second, ...}` once two samples exist.
pub fn json_export(agg: &ClusterAggregator, now_ms: u64, rate_window: Duration) -> String {
    let mut nodes = Vec::new();
    for health in agg.health_report(now_ms) {
        let metrics = agg
            .node_total(&health.node)
            .map(|t| json_snapshot(&t))
            .unwrap_or_else(|| "{}".to_string());
        let rates = agg
            .window_delta(&health.node, rate_window)
            .map(|w| {
                let mut parts = Vec::new();
                for e in w.delta.entries() {
                    if let SnapshotValue::Counter(_) = e.value {
                        if let Some(rate) = w.rate(&e.name) {
                            parts.push(format!("\"{}\": {rate:.1}", json_escape(&e.name)));
                        }
                    }
                }
                format!("{{{}}}", parts.join(", "))
            })
            .unwrap_or_else(|| "{}".to_string());
        nodes.push(format!(
            "{{\"node\": \"{}\", \"kind\": \"{}\", \"health\": \"{}\", \"seq\": {}, \"flaps\": {}, \"frames\": {}, \"last_heard_ms\": {}, \"metrics\": {metrics}, \"rates\": {rates}}}",
            json_escape(&health.node),
            health.kind.label(),
            health.state.label(),
            health.seq,
            health.flaps,
            health.frames,
            health.last_heard_ms,
        ));
    }
    format!(
        "{{\"now_ms\": {now_ms}, \"nodes\": [{}], \"cluster\": {}, \"aggregator\": {}}}",
        nodes.join(", "),
        json_snapshot(&agg.rollup()),
        json_snapshot(&agg.metrics_snapshot()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::AggregatorConfig;
    use crate::frame::{NodeKind, TelemetryFrame};
    use nb_metrics::Registry;

    fn seeded_aggregator() -> ClusterAggregator {
        let agg = ClusterAggregator::new(AggregatorConfig::default());
        let r = Registry::new();
        r.counter("broker.publish.accepted").add(10);
        r.gauge("broker.clients").set(2);
        r.histogram("broker.route.ns").record(512);
        for (node, seq, t) in [("b0", 0, 1_000), ("b0", 1, 2_000)] {
            agg.ingest_frame(TelemetryFrame {
                node: node.into(),
                kind: NodeKind::Broker,
                seq,
                clock_ms: t,
                interval_ms: 1_000,
                full: seq == 0,
                snapshot: r.snapshot(),
            });
        }
        agg
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let agg = seeded_aggregator();
        let text = prometheus_text(&agg, 2_100);
        assert!(text.contains("obs_node_health{node=\"b0\",kind=\"broker\"} 2"));
        assert!(text.contains("obs_broker_publish_accepted{node=\"b0\",kind=\"broker\"} 10"));
        assert!(text.contains("obs_broker_route_ns_count{node=\"b0\",kind=\"broker\"} 1"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("obs_broker_publish_accepted{scope=\"cluster\"} 10"));
        assert!(text.contains("obs_obs_frames_accepted{scope=\"aggregator\"} 2"));
        // Every line is `name{labels} value`.
        for line in text.lines() {
            assert!(line.contains('{') && line.contains("} "), "bad line: {line}");
        }
    }

    #[test]
    fn json_export_parses_structurally() {
        let agg = seeded_aggregator();
        let json = json_export(&agg, 2_100, Duration::from_secs(10));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"node\": \"b0\""));
        assert!(json.contains("\"health\": \"up\""));
        assert!(json.contains("\"cluster\": {"));
        assert!(json.contains("\"broker.publish.accepted\": 10"));
        // Balanced braces/brackets (hand-built JSON sanity).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
