//! # nb-obs — the cluster telemetry plane
//!
//! Every observability layer before this one (`nb-metrics` snapshots,
//! `nb-telemetry` spans, `nb-monitor` properties) is per-process:
//! `Deployment::metrics_snapshot()` only works when every broker lives
//! in one address space. This crate makes the metrics travel: each
//! node of a deployment — broker, tracing engine, TDN — runs a
//! [`TelemetryPublisher`] that periodically snapshots its registries,
//! computes the delta against its previous snapshot
//! ([`nb_metrics::Snapshot::delta`]), and publishes the changed
//! entries with a heartbeat sequence number on the constrained topic
//!
//! ```text
//! /Constrained/RealTime/Obs/Publish-Only/Disseminate/Telemetry
//! ```
//!
//! Publish-Only with constrainer `Obs` means only the telemetry
//! plane's own identity may publish there (nodes inject through their
//! broker's internal publisher; an ordinary client attempting it is
//! refused by the constraint layer and counted in
//! `broker.reject.constraint`), while any operator may subscribe.
//!
//! A [`ClusterAggregator`] subscribes anywhere in the mesh and
//! rebuilds the cluster view: per-node ring-buffered time series with
//! windowed rates, cluster rollups (sums/merges across nodes per
//! metric family), and a health scoreboard (up / degraded / down from
//! heartbeat staleness, with flap tracking). The view is exposed as a
//! Prometheus text page ([`prometheus_text`]), a JSON document
//! ([`json_export`]), the `obs_report` bench (`BENCH_obs.json`) and
//! the `cluster_top` example (a live terminal table).
//!
//! ## Frame model
//!
//! Frames are *self-describing and loss-tolerant*: every frame carries
//! cumulative values (not bare deltas) for the entries that changed
//! since the previous publish, and every `full_every`-th frame is a
//! keyframe carrying the complete snapshot. The aggregator
//! deduplicates by sequence number, detects gaps, and converges on the
//! exact per-node counters as soon as one keyframe lands after an
//! outage — which is what makes reconstruction exact through a flaky
//! link (proven in `crates/broker/tests/obs_plane.rs`).
//!
//! The publish cadence is driven by the injected clock
//! ([`nb_transport::clock::Ticker`]), so under a `MockClock` the whole
//! plane — sequence numbers, heartbeat staleness, rates — is
//! deterministic in tests.

mod aggregator;
mod expo;
mod frame;
mod publisher;

pub use aggregator::{
    AggregatorConfig, ClusterAggregator, HealthState, NodeHealth, WindowDelta,
};
pub use expo::{json_export, prometheus_text};
pub use frame::{NodeKind, TelemetryFrame, FRAME_VERSION};
pub use publisher::{ObsSink, PublisherConfig, SnapshotFn, TelemetryPublisher};

use nb_wire::{AllowedActions, ConstrainedTopic, Constrainer, Distribution, EventType, Topic};

/// The constrained topic telemetry frames are published on:
/// `/Constrained/RealTime/Obs/Publish-Only/Disseminate/Telemetry`.
///
/// Publish-Only with constrainer `Obs` restricts publishing to the
/// telemetry plane's own identity (nodes publish through their
/// broker's internal origin, which carries broker authority); any
/// operator may subscribe. `RealTime` keeps the family outside the
/// token-guarded `Traces` class — frames authenticate by message
/// signature against the plane's credential instead.
pub fn telemetry_topic() -> Topic {
    ConstrainedTopic::new(
        EventType::RealTime,
        Constrainer::Entity("Obs".to_string()),
        AllowedActions::PublishOnly,
        Distribution::Disseminate,
        vec!["Telemetry".to_string()],
    )
    .to_topic()
}
