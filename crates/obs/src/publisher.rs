//! [`TelemetryPublisher`]: one node's periodic metric reporter.

use std::sync::{Arc, Weak};
use std::time::Duration;

use nb_crypto::Credential;
use nb_metrics::{Snapshot, SnapshotValue};
use nb_transport::clock::{SharedClock, Ticker};
use nb_wire::{Message, Payload};
use parking_lot::Mutex;

use crate::frame::{NodeKind, TelemetryFrame};
use crate::telemetry_topic;

/// Callback a publisher hands encoded telemetry messages to —
/// typically `Broker::publish_internal` on the node's own broker.
pub type ObsSink = Arc<dyn Fn(Message) + Send + Sync>;

/// Source of the node's current metrics, called once per publish.
pub type SnapshotFn = Arc<dyn Fn() -> Snapshot + Send + Sync>;

/// Publish cadence and keyframe policy.
#[derive(Debug, Clone)]
pub struct PublisherConfig {
    /// Milliseconds between publishes (heartbeat period).
    pub interval_ms: u64,
    /// Every `full_every`-th frame is a keyframe carrying the complete
    /// snapshot (sequence 0 always is); the frames in between carry
    /// only changed entries. Clamped to ≥ 1 (1 = every frame full).
    pub full_every: u64,
}

impl Default for PublisherConfig {
    fn default() -> Self {
        PublisherConfig {
            interval_ms: 1_000,
            full_every: 8,
        }
    }
}

struct PublisherState {
    /// Snapshot as of the previous publish (delta baseline).
    last: Snapshot,
    /// Next heartbeat sequence number.
    seq: u64,
    /// Per-sender message ids (ids are scoped to the sender).
    msg_id: u64,
}

struct Inner {
    node: String,
    kind: NodeKind,
    source: SnapshotFn,
    sink: ObsSink,
    clock: SharedClock,
    ticker: Ticker,
    config: PublisherConfig,
    credential: Option<Credential>,
    state: Mutex<PublisherState>,
}

/// Periodically snapshots one node's registries and publishes the
/// changes on [`telemetry_topic`].
///
/// Cadence is polled, not threaded: [`tick`][Self::tick] consults the
/// injected clock through a [`Ticker`], so tests driving a `MockClock`
/// get deterministic sequence numbers, and production callers either
/// call `tick` from an existing maintenance loop or let
/// [`start`][Self::start] run a background pump. Frames carry
/// cumulative values for entries whose value changed since the last
/// publish (computed with [`Snapshot::delta`]); every
/// [`full_every`][PublisherConfig::full_every]-th frame is a keyframe
/// with the complete snapshot. A frame is published every interval
/// even when nothing changed — the empty frame is the heartbeat the
/// aggregator's health scoreboard feeds on.
#[derive(Clone)]
pub struct TelemetryPublisher {
    inner: Arc<Inner>,
}

impl TelemetryPublisher {
    /// Builds a publisher for `node`. `source` is called once per
    /// publish for the node's current metrics; `sink` receives the
    /// encoded messages (typically the broker's internal publisher).
    pub fn new(
        node: impl Into<String>,
        kind: NodeKind,
        source: SnapshotFn,
        sink: ObsSink,
        clock: SharedClock,
        config: PublisherConfig,
    ) -> Self {
        let config = PublisherConfig {
            interval_ms: config.interval_ms.max(1),
            full_every: config.full_every.max(1),
        };
        TelemetryPublisher {
            inner: Arc::new(Inner {
                node: node.into(),
                kind,
                source,
                sink,
                ticker: Ticker::new(clock.clone(), config.interval_ms),
                clock,
                config,
                credential: None,
                state: Mutex::new(PublisherState {
                    last: Snapshot::default(),
                    seq: 0,
                    msg_id: 1,
                }),
            }),
        }
    }

    /// Returns a copy of this publisher that signs every frame with
    /// `credential`, letting aggregators authenticate the stream.
    ///
    /// Call before the first publish — the returned publisher has
    /// fresh sequence state.
    #[must_use]
    pub fn signed(&self, credential: Credential) -> Self {
        let inner = &self.inner;
        TelemetryPublisher {
            inner: Arc::new(Inner {
                node: inner.node.clone(),
                kind: inner.kind,
                source: inner.source.clone(),
                sink: inner.sink.clone(),
                ticker: Ticker::new(inner.clock.clone(), inner.config.interval_ms),
                clock: inner.clock.clone(),
                config: inner.config.clone(),
                credential: Some(credential),
                state: Mutex::new(PublisherState {
                    last: Snapshot::default(),
                    seq: 0,
                    msg_id: 1,
                }),
            }),
        }
    }

    /// The node id frames are attributed to.
    pub fn node(&self) -> &str {
        &self.inner.node
    }

    /// The configured publish interval.
    pub fn interval_ms(&self) -> u64 {
        self.inner.config.interval_ms
    }

    /// Publishes now if a full interval elapsed on the injected clock;
    /// returns whether a frame went out. Cheap when not due (one
    /// atomic load), safe to call from any thread.
    pub fn tick(&self) -> bool {
        if !self.inner.ticker.due() {
            return false;
        }
        self.publish_now();
        true
    }

    /// Builds and publishes a frame unconditionally (used by `tick`,
    /// by tests, and to flush a final report before shutdown).
    pub fn publish_now(&self) {
        let inner = &*self.inner;
        let current = (inner.source)();
        let (frame, msg_id) = {
            let mut state = inner.state.lock();
            let seq = state.seq;
            let full = seq.is_multiple_of(inner.config.full_every);
            let snapshot = if full {
                current.clone()
            } else {
                sparse_changes(&current, &state.last)
            };
            state.last = current;
            state.seq += 1;
            let msg_id = state.msg_id;
            state.msg_id += 1;
            (
                TelemetryFrame {
                    node: inner.node.clone(),
                    kind: inner.kind,
                    seq,
                    clock_ms: inner.clock.now_ms(),
                    interval_ms: inner.config.interval_ms,
                    full,
                    snapshot,
                },
                msg_id,
            )
        };
        let mut msg = Message::new(
            msg_id,
            telemetry_topic(),
            inner.node.clone(),
            frame.clock_ms,
            Payload::Blob {
                data: frame.to_bytes(),
            },
        );
        if let Some(credential) = &inner.credential {
            if msg.sign(credential).is_err() {
                return;
            }
        }
        (inner.sink)(msg);
    }

    /// Spawns a background pump calling [`tick`][Self::tick] at a
    /// fraction of the interval, for deployments on the system clock.
    /// The thread holds only a weak handle and exits when the last
    /// publisher clone is dropped.
    pub fn start(&self) {
        let weak: Weak<Inner> = Arc::downgrade(&self.inner);
        let poll = Duration::from_millis((self.inner.config.interval_ms / 4).clamp(1, 250));
        std::thread::Builder::new()
            .name(format!("obs-publish-{}", self.inner.node))
            .spawn(move || loop {
                std::thread::sleep(poll);
                let Some(inner) = weak.upgrade() else { return };
                let publisher = TelemetryPublisher { inner };
                publisher.tick();
            })
            .expect("spawn telemetry publisher");
    }
}

/// The entries of `current` whose value differs from `last`, as
/// cumulative values (the sparse body of a non-keyframe).
fn sparse_changes(current: &Snapshot, last: &Snapshot) -> Snapshot {
    let delta = current.delta(last);
    let changed: Vec<_> = current
        .entries()
        .iter()
        .filter(|e| match delta.entries().iter().find(|d| d.name == e.name) {
            Some(d) => match (&d.value, &e.value) {
                (SnapshotValue::Counter(dc), _) => *dc > 0,
                (SnapshotValue::Histogram(dh), _) => dh.count > 0,
                // Gauges: the delta carries the current reading, so
                // compare against the previous snapshot directly.
                (SnapshotValue::Gauge(_), v) => last
                    .entries()
                    .iter()
                    .find(|p| p.name == e.name)
                    .is_none_or(|p| p.value != *v),
            },
            None => true,
        })
        .cloned()
        .collect();
    Snapshot::from_entries(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_metrics::Registry;
    use nb_transport::clock::MockClock;
    use nb_wire::Payload;

    fn harness() -> (Registry, MockClock, TelemetryPublisher, Arc<Mutex<Vec<Message>>>) {
        let registry = Registry::new();
        let out: Arc<Mutex<Vec<Message>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_out = out.clone();
        let source_registry = registry.clone();
        let clock = MockClock::new(1_000);
        let publisher = TelemetryPublisher::new(
            "broker-0",
            NodeKind::Broker,
            Arc::new(move || source_registry.snapshot()),
            Arc::new(move |msg| sink_out.lock().push(msg)),
            Arc::new(clock.clone()),
            PublisherConfig {
                interval_ms: 100,
                full_every: 4,
            },
        );
        (registry, clock, publisher, out)
    }

    fn decode(msg: &Message) -> TelemetryFrame {
        match &msg.payload {
            Payload::Blob { data } => TelemetryFrame::from_bytes(data).unwrap(),
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn tick_respects_the_mock_clock() {
        let (_registry, clock, publisher, out) = harness();
        assert!(!publisher.tick(), "not due yet");
        clock.advance(99);
        assert!(!publisher.tick());
        clock.advance(1);
        assert!(publisher.tick());
        assert!(!publisher.tick(), "edge-triggered");
        assert_eq!(out.lock().len(), 1);
    }

    #[test]
    fn keyframes_and_sparse_frames_alternate() {
        let (registry, _clock, publisher, out) = harness();
        let c = registry.counter("broker.publish.accepted");
        registry.counter("broker.deliver.local").add(5);

        c.add(1);
        publisher.publish_now(); // seq 0: keyframe
        publisher.publish_now(); // seq 1: nothing changed — empty heartbeat
        c.add(2);
        publisher.publish_now(); // seq 2: sparse, one changed counter

        let frames: Vec<TelemetryFrame> = out.lock().iter().map(decode).collect();
        assert_eq!(frames.len(), 3);
        assert!(frames[0].full);
        assert_eq!(frames[0].seq, 0);
        assert_eq!(frames[0].snapshot.len(), 2);
        assert!(!frames[1].full);
        assert!(frames[1].snapshot.is_empty(), "heartbeat only");
        assert!(!frames[2].full);
        assert_eq!(frames[2].snapshot.len(), 1);
        // Sparse entries are cumulative, not bare deltas.
        assert_eq!(frames[2].snapshot.counter("broker.publish.accepted"), Some(3));
    }

    #[test]
    fn every_nth_frame_is_full() {
        let (_registry, _clock, publisher, out) = harness();
        for _ in 0..9 {
            publisher.publish_now();
        }
        let fulls: Vec<bool> = out.lock().iter().map(|m| decode(m).full).collect();
        assert_eq!(
            fulls,
            vec![true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn gauge_changes_appear_in_sparse_frames() {
        let (registry, _clock, publisher, out) = harness();
        let g = registry.gauge("broker.clients");
        g.set(1);
        publisher.publish_now(); // keyframe
        g.set(2);
        publisher.publish_now(); // sparse with new gauge reading
        publisher.publish_now(); // unchanged — empty
        let frames: Vec<TelemetryFrame> = out.lock().iter().map(decode).collect();
        assert_eq!(frames[1].snapshot.gauge("broker.clients"), Some(2));
        assert!(frames[2].snapshot.is_empty());
    }

    #[test]
    fn signed_frames_verify_and_tampering_breaks_them() {
        use nb_crypto::cert::{CertificateAuthority, Validity};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(7);
        let mut ca = CertificateAuthority::new(
            "ca",
            512,
            Validity::starting_now(0, u64::MAX / 4),
            &mut rng,
        )
        .unwrap();
        let credential = ca
            .issue("Obs", Validity::starting_now(0, u64::MAX / 4), &mut rng)
            .unwrap();
        let key = credential.certificate.public_key.clone();

        let (_registry, _clock, publisher, out) = harness();
        let publisher = publisher.signed(credential);
        publisher.publish_now();
        let msg = out.lock().pop().unwrap();
        assert!(msg.verify_signature(&key).is_ok());

        let mut tampered = msg;
        if let Payload::Blob { data } = &mut tampered.payload {
            data[0] ^= 0xff;
        }
        assert!(tampered.verify_signature(&key).is_err());
    }
}
