//! [`ClusterAggregator`]: rebuilds the cluster-wide metrics view from
//! telemetry frames received anywhere in the mesh.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use nb_crypto::RsaPublicKey;
use nb_metrics::{Counter, Gauge, Registry, Snapshot, SnapshotEntry, SnapshotValue};
use nb_wire::{Message, Payload};
use parking_lot::{Mutex, RwLock};

use crate::frame::{NodeKind, TelemetryFrame};
use crate::telemetry_topic;

/// Health of one reporting node, judged by heartbeat staleness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Heartbeats arriving on schedule.
    Up,
    /// Missed a few intervals (default: > 3 intervals silent).
    Degraded,
    /// Considered gone (default: > 6 intervals silent).
    Down,
}

impl HealthState {
    /// Lower-case label used in exposition output.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Up => "up",
            HealthState::Degraded => "degraded",
            HealthState::Down => "down",
        }
    }
}

/// One row of the health scoreboard.
#[derive(Debug, Clone)]
pub struct NodeHealth {
    /// Node identifier.
    pub node: String,
    /// Node role.
    pub kind: NodeKind,
    /// Staleness judgement at the evaluation instant.
    pub state: HealthState,
    /// Highest heartbeat sequence number seen.
    pub seq: u64,
    /// Publisher-stamped clock of the freshest frame.
    pub last_heard_ms: u64,
    /// Completed Up → (Degraded|Down) → Up cycles.
    pub flaps: u64,
    /// Frames accepted from this node.
    pub frames: u64,
}

/// A windowed difference of one node's time series.
#[derive(Debug, Clone)]
pub struct WindowDelta {
    /// Counter/histogram changes over the window (gauges carry the
    /// newest reading).
    pub delta: Snapshot,
    /// Actual time spanned by the two samples the delta was taken
    /// between (≤ the requested window when the ring is short).
    pub span: Duration,
}

impl WindowDelta {
    /// Per-second rate of a counter over this window.
    pub fn rate(&self, name: &str) -> Option<f64> {
        self.delta.rate(name, self.span)
    }
}

/// Aggregator tuning.
#[derive(Debug, Clone)]
pub struct AggregatorConfig {
    /// Ring capacity of per-node cumulative samples (the time-series
    /// depth windowed rates are computed over).
    pub ring_capacity: usize,
    /// Heartbeat intervals of silence before a node is `Degraded`.
    pub degraded_after: u64,
    /// Heartbeat intervals of silence before a node is `Down`.
    pub down_after: u64,
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        AggregatorConfig {
            ring_capacity: 128,
            degraded_after: 3,
            down_after: 6,
        }
    }
}

struct NodeSeries {
    kind: NodeKind,
    last_seq: u64,
    interval_ms: u64,
    last_heard_ms: u64,
    frames: u64,
    flaps: u64,
    state: HealthState,
    /// Latest cumulative value per entry name (sparse frames overlay
    /// onto this; keyframes replace it).
    total: Snapshot,
    /// (publisher clock, cumulative snapshot) ring, newest at back.
    ring: VecDeque<(u64, Snapshot)>,
}

struct AggMetrics {
    registry: Registry,
    accepted: Counter,
    rejected: Counter,
    duplicate: Counter,
    gaps: Counter,
    flaps: Counter,
    nodes: Gauge,
}

impl AggMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        AggMetrics {
            accepted: registry.counter("obs.frames.accepted"),
            rejected: registry.counter("obs.frames.rejected"),
            duplicate: registry.counter("obs.frames.duplicate"),
            gaps: registry.counter("obs.frames.gap"),
            flaps: registry.counter("obs.node.flap"),
            nodes: registry.gauge("obs.nodes"),
            registry,
        }
    }
}

struct Inner {
    config: AggregatorConfig,
    trusted_key: RwLock<Option<RsaPublicKey>>,
    nodes: Mutex<BTreeMap<String, NodeSeries>>,
    metrics: AggMetrics,
}

/// Maintains per-node time series, cluster rollups and the health
/// scoreboard from a stream of telemetry messages.
///
/// Feed it with [`ingest`][Self::ingest] from wherever the frames
/// arrive — an internal broker subscription, an operator client, a
/// test. Clones share state, so one aggregator can be filled by a
/// drain thread and read by a renderer.
#[derive(Clone)]
pub struct ClusterAggregator {
    inner: Arc<Inner>,
}

impl Default for ClusterAggregator {
    fn default() -> Self {
        Self::new(AggregatorConfig::default())
    }
}

impl ClusterAggregator {
    /// Creates an empty aggregator.
    pub fn new(config: AggregatorConfig) -> Self {
        ClusterAggregator {
            inner: Arc::new(Inner {
                config: AggregatorConfig {
                    ring_capacity: config.ring_capacity.max(2),
                    degraded_after: config.degraded_after.max(1),
                    down_after: config.down_after.max(2),
                    },
                trusted_key: RwLock::new(None),
                nodes: Mutex::new(BTreeMap::new()),
                metrics: AggMetrics::new(),
            }),
        }
    }

    /// Requires every subsequent frame to carry a valid signature by
    /// `key` (the telemetry plane's credential). Unsigned or
    /// mis-signed frames are rejected and counted in
    /// `obs.frames.rejected`.
    pub fn require_signatures(&self, key: RsaPublicKey) {
        *self.inner.trusted_key.write() = Some(key);
    }

    /// Ingests one message from the telemetry topic. Returns `true`
    /// when the frame was accepted into the view; `false` for
    /// off-topic messages, undecodable/tampered frames and
    /// duplicates.
    pub fn ingest(&self, msg: &Message) -> bool {
        let inner = &*self.inner;
        if msg.topic != telemetry_topic() {
            return false;
        }
        if let Some(key) = &*inner.trusted_key.read() {
            if msg.verify_signature(key).is_err() {
                inner.metrics.rejected.inc();
                return false;
            }
        }
        let Payload::Blob { data } = &msg.payload else {
            inner.metrics.rejected.inc();
            return false;
        };
        let frame = match TelemetryFrame::from_bytes(data) {
            Ok(frame) => frame,
            Err(_) => {
                inner.metrics.rejected.inc();
                return false;
            }
        };
        self.ingest_frame(frame)
    }

    /// Ingests an already-decoded frame (the `ingest` tail; public for
    /// tests and in-process pipelines).
    pub fn ingest_frame(&self, frame: TelemetryFrame) -> bool {
        let inner = &*self.inner;
        let mut nodes = inner.nodes.lock();
        let series = nodes.entry(frame.node.clone()).or_insert_with(|| NodeSeries {
            kind: frame.kind,
            last_seq: 0,
            interval_ms: frame.interval_ms.max(1),
            last_heard_ms: 0,
            frames: 0,
            flaps: 0,
            state: HealthState::Up,
            total: Snapshot::default(),
            ring: VecDeque::new(),
        });
        if series.frames > 0 && frame.seq <= series.last_seq {
            inner.metrics.duplicate.inc();
            return false;
        }
        if series.frames > 0 && frame.seq > series.last_seq + 1 {
            inner.metrics.gaps.add(frame.seq - series.last_seq - 1);
        }
        if series.state != HealthState::Up {
            // The node had been judged Degraded/Down and is heard
            // again: one completed flap cycle.
            series.flaps += 1;
            inner.metrics.flaps.inc();
            series.state = HealthState::Up;
        }
        series.kind = frame.kind;
        series.last_seq = frame.seq;
        series.interval_ms = frame.interval_ms.max(1);
        series.last_heard_ms = series.last_heard_ms.max(frame.clock_ms);
        series.frames += 1;
        series.total = if frame.full {
            frame.snapshot
        } else {
            overlay(&series.total, &frame.snapshot)
        };
        series.ring.push_back((frame.clock_ms, series.total.clone()));
        while series.ring.len() > inner.config.ring_capacity {
            series.ring.pop_front();
        }
        inner.metrics.nodes.set(nodes.len() as i64);
        inner.metrics.accepted.inc();
        true
    }

    /// Ids of every node heard from, sorted.
    pub fn nodes(&self) -> Vec<String> {
        self.inner.nodes.lock().keys().cloned().collect()
    }

    /// Latest cumulative snapshot reconstructed for `node`.
    pub fn node_total(&self, node: &str) -> Option<Snapshot> {
        self.inner.nodes.lock().get(node).map(|s| s.total.clone())
    }

    /// Every node's cumulative snapshot, each prefixed by its node id
    /// — the distributed equivalent of a merged in-process
    /// `metrics_snapshot()`.
    pub fn per_node(&self) -> Snapshot {
        let nodes = self.inner.nodes.lock();
        let mut merged = Snapshot::default();
        for (id, series) in nodes.iter() {
            merged = merged.merge(series.total.clone().prefixed(id));
        }
        merged
    }

    /// Cluster rollup: entries summed across nodes per metric name
    /// (counters and gauges add, histograms merge bucket-wise).
    pub fn rollup(&self) -> Snapshot {
        let nodes = self.inner.nodes.lock();
        let mut acc: BTreeMap<String, SnapshotValue> = BTreeMap::new();
        for series in nodes.values() {
            for e in series.total.entries() {
                match acc.get_mut(&e.name) {
                    None => {
                        acc.insert(e.name.clone(), e.value.clone());
                    }
                    Some(existing) => {
                        *existing = match (&*existing, &e.value) {
                            (SnapshotValue::Counter(a), SnapshotValue::Counter(b)) => {
                                SnapshotValue::Counter(a.wrapping_add(*b))
                            }
                            (SnapshotValue::Gauge(a), SnapshotValue::Gauge(b)) => {
                                SnapshotValue::Gauge(a.wrapping_add(*b))
                            }
                            (SnapshotValue::Histogram(a), SnapshotValue::Histogram(b)) => {
                                SnapshotValue::Histogram(a.accumulate(b))
                            }
                            // Kind clash across nodes: keep the first.
                            (kept, _) => kept.clone(),
                        };
                    }
                }
            }
        }
        Snapshot::from_entries(
            acc.into_iter()
                .map(|(name, value)| SnapshotEntry { name, value })
                .collect(),
        )
    }

    /// The change in `node`'s series over (up to) `window`, ending at
    /// its freshest sample. `None` until two samples exist.
    pub fn window_delta(&self, node: &str, window: Duration) -> Option<WindowDelta> {
        let nodes = self.inner.nodes.lock();
        let series = nodes.get(node)?;
        let (newest_t, newest) = series.ring.back()?;
        let cutoff = newest_t.saturating_sub(window.as_millis() as u64);
        // Oldest retained sample at/after the cutoff, so the delta
        // spans at most the requested window.
        let (base_t, base) = series
            .ring
            .iter()
            .take(series.ring.len() - 1)
            .find(|(t, _)| *t >= cutoff)?;
        Some(WindowDelta {
            delta: newest.delta(base),
            span: Duration::from_millis((newest_t - base_t).max(1)),
        })
    }

    /// Evaluates the scoreboard at `now_ms` (same clock domain the
    /// publishers stamp frames with). Nodes silent for more than
    /// `degraded_after`/`down_after` intervals are marked accordingly;
    /// a completed departure-and-return is counted in `obs.node.flap`
    /// when the node is next heard.
    pub fn health_report(&self, now_ms: u64) -> Vec<NodeHealth> {
        let inner = &*self.inner;
        let mut nodes = inner.nodes.lock();
        nodes
            .iter_mut()
            .map(|(id, series)| {
                let silent_ms = now_ms.saturating_sub(series.last_heard_ms);
                let silent_intervals = silent_ms / series.interval_ms;
                let state = if silent_intervals >= inner.config.down_after {
                    HealthState::Down
                } else if silent_intervals >= inner.config.degraded_after {
                    HealthState::Degraded
                } else {
                    HealthState::Up
                };
                // Only ever degrade here; recovery (and the flap
                // count) happens on frame arrival, where it is
                // unambiguous.
                if state > series.state {
                    series.state = state;
                }
                NodeHealth {
                    node: id.clone(),
                    kind: series.kind,
                    state: series.state,
                    seq: series.last_seq,
                    last_heard_ms: series.last_heard_ms,
                    flaps: series.flaps,
                    frames: series.frames,
                }
            })
            .collect()
    }

    /// The aggregator's own `obs.*` metrics.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.inner.metrics.registry.snapshot()
    }
}

/// Overlays a sparse frame's entries (cumulative values) onto the
/// running total: matching names are replaced, new names inserted.
fn overlay(total: &Snapshot, sparse: &Snapshot) -> Snapshot {
    let mut entries: Vec<SnapshotEntry> = total.entries().to_vec();
    for s in sparse.entries() {
        match entries.iter_mut().find(|e| e.name == s.name) {
            Some(e) => e.value = s.value.clone(),
            None => entries.push(s.clone()),
        }
    }
    Snapshot::from_entries(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nb_metrics::Registry;

    fn frame(node: &str, seq: u64, clock_ms: u64, full: bool, snapshot: Snapshot) -> TelemetryFrame {
        TelemetryFrame {
            node: node.into(),
            kind: NodeKind::Broker,
            seq,
            clock_ms,
            interval_ms: 100,
            full,
            snapshot,
        }
    }

    fn counters(pairs: &[(&str, u64)]) -> Snapshot {
        let r = Registry::new();
        for (name, v) in pairs {
            r.counter(name).add(*v);
        }
        r.snapshot()
    }

    #[test]
    fn keyframe_then_sparse_overlay_reconstructs_totals() {
        let agg = ClusterAggregator::default();
        assert!(agg.ingest_frame(frame("b0", 0, 100, true, counters(&[("x", 5), ("y", 1)]))));
        assert!(agg.ingest_frame(frame("b0", 1, 200, false, counters(&[("x", 9)]))));
        let total = agg.node_total("b0").unwrap();
        assert_eq!(total.counter("x"), Some(9));
        assert_eq!(total.counter("y"), Some(1));
    }

    #[test]
    fn duplicates_and_regressions_are_dropped() {
        let agg = ClusterAggregator::default();
        assert!(agg.ingest_frame(frame("b0", 0, 100, true, counters(&[("x", 1)]))));
        assert!(agg.ingest_frame(frame("b0", 1, 200, false, counters(&[("x", 2)]))));
        assert!(!agg.ingest_frame(frame("b0", 1, 200, false, counters(&[("x", 2)]))));
        assert!(!agg.ingest_frame(frame("b0", 0, 100, true, counters(&[("x", 1)]))));
        assert_eq!(agg.node_total("b0").unwrap().counter("x"), Some(2));
        assert_eq!(agg.metrics_snapshot().counter("obs.frames.duplicate"), Some(2));
    }

    #[test]
    fn gaps_are_counted_and_keyframe_resynchronizes() {
        let agg = ClusterAggregator::default();
        assert!(agg.ingest_frame(frame("b0", 0, 100, true, counters(&[("x", 1)]))));
        // Frames 1..=3 lost; keyframe 4 lands.
        assert!(agg.ingest_frame(frame("b0", 4, 500, true, counters(&[("x", 40), ("z", 7)]))));
        assert_eq!(agg.metrics_snapshot().counter("obs.frames.gap"), Some(3));
        let total = agg.node_total("b0").unwrap();
        assert_eq!(total.counter("x"), Some(40));
        assert_eq!(total.counter("z"), Some(7));
    }

    #[test]
    fn rollup_sums_across_nodes() {
        let agg = ClusterAggregator::default();
        agg.ingest_frame(frame("b0", 0, 100, true, counters(&[("pub", 10)])));
        agg.ingest_frame(frame("b1", 0, 100, true, counters(&[("pub", 32)])));
        let rollup = agg.rollup();
        assert_eq!(rollup.counter("pub"), Some(42));
        let per_node = agg.per_node();
        assert_eq!(per_node.counter("b0.pub"), Some(10));
        assert_eq!(per_node.counter("b1.pub"), Some(32));
    }

    #[test]
    fn windowed_rate_uses_ring_samples() {
        let agg = ClusterAggregator::default();
        agg.ingest_frame(frame("b0", 0, 0, true, counters(&[("pub", 0)])));
        agg.ingest_frame(frame("b0", 1, 1_000, false, counters(&[("pub", 500)])));
        agg.ingest_frame(frame("b0", 2, 2_000, false, counters(&[("pub", 1_500)])));
        let w = agg.window_delta("b0", Duration::from_secs(10)).unwrap();
        assert_eq!(w.delta.counter("pub"), Some(1_500));
        assert_eq!(w.span, Duration::from_secs(2));
        assert_eq!(w.rate("pub"), Some(750.0));
        // Tight window: only the last hop.
        let w = agg.window_delta("b0", Duration::from_secs(1)).unwrap();
        assert_eq!(w.delta.counter("pub"), Some(1_000));
        assert_eq!(w.rate("pub"), Some(1_000.0));
    }

    #[test]
    fn health_transitions_and_flaps() {
        let config = AggregatorConfig::default(); // degraded 3, down 6
        let agg = ClusterAggregator::new(config);
        agg.ingest_frame(frame("b0", 0, 1_000, true, Snapshot::default()));

        // Fresh: up.
        assert_eq!(agg.health_report(1_050)[0].state, HealthState::Up);
        // 3 intervals silent (interval 100ms): degraded.
        assert_eq!(agg.health_report(1_350)[0].state, HealthState::Degraded);
        // 6 intervals: down.
        assert_eq!(agg.health_report(1_650)[0].state, HealthState::Down);
        // Health never un-degrades without a frame.
        assert_eq!(agg.health_report(1_050)[0].state, HealthState::Down);

        // Node returns: up again, one flap recorded.
        agg.ingest_frame(frame("b0", 1, 1_700, false, Snapshot::default()));
        let h = &agg.health_report(1_750)[0];
        assert_eq!(h.state, HealthState::Up);
        assert_eq!(h.flaps, 1);
        assert_eq!(agg.metrics_snapshot().counter("obs.node.flap"), Some(1));
    }

    #[test]
    fn off_topic_and_garbage_messages_are_ignored() {
        use nb_wire::{Message, Payload, Topic};
        let agg = ClusterAggregator::default();
        let off_topic = Message::new(
            1,
            Topic::parse("/Some/Other/Topic").unwrap(),
            "x",
            0,
            Payload::Blob { data: vec![1, 2, 3] },
        );
        assert!(!agg.ingest(&off_topic));
        let garbage = Message::new(
            2,
            crate::telemetry_topic(),
            "x",
            0,
            Payload::Blob { data: vec![1, 2, 3] },
        );
        assert!(!agg.ingest(&garbage));
        assert_eq!(agg.metrics_snapshot().counter("obs.frames.rejected"), Some(1));
        assert!(agg.nodes().is_empty());
    }
}
