//! Property-based tests on the arithmetic and primitive layers.

use nb_crypto::bigint::BigUint;
use nb_crypto::hmac::{hmac, verify_mac};
use nb_crypto::modes::{cbc_decrypt, cbc_encrypt, ctr_transform};
use nb_crypto::padding::{pkcs7_pad, pkcs7_unpad};
use nb_crypto::sha256::Sha256;
use nb_crypto::Digest;
use proptest::prelude::*;

/// Arbitrary BigUint up to ~256 bits, biased toward interesting
/// small values and limb boundaries.
fn arb_biguint() -> impl Strategy<Value = BigUint> {
    prop_oneof![
        2 => any::<u64>().prop_map(BigUint::from_u64),
        1 => Just(BigUint::zero()),
        1 => Just(BigUint::one()),
        1 => Just(BigUint::from_u64(u64::MAX)),
        4 => proptest::collection::vec(any::<u8>(), 0..32).prop_map(|b| BigUint::from_bytes_be(&b)),
    ]
}

fn arb_nonzero() -> impl Strategy<Value = BigUint> {
    arb_biguint().prop_filter("nonzero", |v| !v.is_zero())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_is_commutative(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_is_associative(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn add_then_sub_round_trips(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_is_commutative(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes_over_add(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn division_identity(a in arb_biguint(), d in arb_nonzero()) {
        let (q, r) = a.div_rem(&d).unwrap();
        prop_assert!(r < d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn shifts_match_mul_by_powers_of_two(a in arb_biguint(), bits in 0usize..130) {
        let shifted = a.shl(bits);
        let pow2 = BigUint::one().shl(bits);
        prop_assert_eq!(shifted.clone(), a.mul(&pow2));
        prop_assert_eq!(shifted.shr(bits), a);
    }

    #[test]
    fn byte_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = BigUint::from_bytes_be(&bytes);
        let back = v.to_bytes_be();
        // Canonical form strips leading zeros.
        let stripped: Vec<u8> = bytes.iter().copied()
            .skip_while(|&b| b == 0).collect();
        prop_assert_eq!(back, stripped);
    }

    #[test]
    fn hex_round_trip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn modpow_product_rule(a in arb_biguint(), x in 0u64..64, y in 0u64..64, m in arb_nonzero()) {
        // a^x * a^y ≡ a^(x+y) (mod m)
        prop_assume!(!m.is_one());
        let ax = a.modpow(&BigUint::from_u64(x), &m).unwrap();
        let ay = a.modpow(&BigUint::from_u64(y), &m).unwrap();
        let axy = a.modpow(&BigUint::from_u64(x + y), &m).unwrap();
        prop_assert_eq!(ax.mul_mod(&ay, &m).unwrap(), axy);
    }

    #[test]
    fn montgomery_agrees_with_generic(a in arb_biguint(), e in 0u64..1000, m in arb_nonzero()) {
        prop_assume!(m.is_odd() && !m.is_one());
        let exp = BigUint::from_u64(e);
        prop_assert_eq!(
            a.modpow(&exp, &m).unwrap(),
            a.modpow_generic(&exp, &m).unwrap()
        );
    }

    #[test]
    fn gcd_divides_both(a in arb_nonzero(), b in arb_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).unwrap().is_zero());
        prop_assert!(b.rem(&g).unwrap().is_zero());
    }

    #[test]
    fn mod_inverse_is_an_inverse(a in arb_nonzero(), m in arb_nonzero()) {
        prop_assume!(!m.is_one());
        if let Ok(inv) = a.mod_inverse(&m) {
            prop_assert_eq!(a.mul_mod(&inv, &m).unwrap(), BigUint::one());
        }
    }

    #[test]
    fn pkcs7_round_trip(data in proptest::collection::vec(any::<u8>(), 0..100)) {
        let padded = pkcs7_pad(&data, 16);
        prop_assert_eq!(padded.len() % 16, 0);
        prop_assert!(padded.len() > data.len());
        prop_assert_eq!(pkcs7_unpad(&padded, 16).unwrap(), data);
    }

    #[test]
    fn cbc_round_trip(
        key in proptest::collection::vec(any::<u8>(), 3..4).prop_map(|_| [0x42u8; 24].to_vec()),
        iv in proptest::array::uniform16(any::<u8>()),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let ct = cbc_encrypt(&key, &iv, &msg).unwrap();
        prop_assert_eq!(cbc_decrypt(&key, &iv, &ct).unwrap(), msg);
    }

    #[test]
    fn ctr_round_trip(
        nonce in proptest::array::uniform16(any::<u8>()),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let key = [7u8; 16];
        let ct = ctr_transform(&key, &nonce, &msg).unwrap();
        prop_assert_eq!(ctr_transform(&key, &nonce, &ct).unwrap(), msg);
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(msg in proptest::collection::vec(any::<u8>(), 1..100), flip in 0usize..800) {
        let h1 = Sha256::digest(&msg);
        prop_assert_eq!(h1.clone(), Sha256::digest(&msg));
        let bit = flip % (msg.len() * 8);
        let mut tampered = msg.clone();
        tampered[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(h1, Sha256::digest(&tampered));
    }

    #[test]
    fn hmac_verifies_only_with_same_key(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let mac = hmac::<Sha256>(&key, &msg);
        prop_assert!(verify_mac(&mac, &hmac::<Sha256>(&key, &msg)));
        let mut other_key = key.clone();
        other_key[0] ^= 0xff;
        prop_assert!(!verify_mac(&mac, &hmac::<Sha256>(&other_key, &msg)));
    }
}
