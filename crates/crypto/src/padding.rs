//! PKCS#7 block padding (the "padding scheme" negotiated alongside the
//! secret trace key in the paper's key-distribution payload, §5.1).

use crate::error::CryptoError;

/// Appends PKCS#7 padding so `data.len()` becomes a multiple of
/// `block_size`. A full block of padding is added when the input is
/// already aligned.
pub fn pkcs7_pad(data: &[u8], block_size: usize) -> Vec<u8> {
    assert!(
        (1..=255).contains(&block_size),
        "block size must be 1..=255"
    );
    let pad_len = block_size - (data.len() % block_size);
    let mut out = Vec::with_capacity(data.len() + pad_len);
    out.extend_from_slice(data);
    out.extend(std::iter::repeat_n(pad_len as u8, pad_len));
    out
}

/// Strips and validates PKCS#7 padding.
pub fn pkcs7_unpad(data: &[u8], block_size: usize) -> Result<Vec<u8>, CryptoError> {
    if data.is_empty() || !data.len().is_multiple_of(block_size) {
        return Err(CryptoError::BadPadding("length not a multiple of block"));
    }
    let pad_len = *data.last().unwrap() as usize;
    if pad_len == 0 || pad_len > block_size {
        return Err(CryptoError::BadPadding("pad byte out of range"));
    }
    let (body, pad) = data.split_at(data.len() - pad_len);
    if pad.iter().any(|&b| b as usize != pad_len) {
        return Err(CryptoError::BadPadding("inconsistent pad bytes"));
    }
    Ok(body.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pads_to_block_multiple() {
        let padded = pkcs7_pad(b"hello", 16);
        assert_eq!(padded.len(), 16);
        assert_eq!(&padded[..5], b"hello");
        assert!(padded[5..].iter().all(|&b| b == 11));
    }

    #[test]
    fn aligned_input_gets_full_block() {
        let padded = pkcs7_pad(&[7u8; 16], 16);
        assert_eq!(padded.len(), 32);
        assert!(padded[16..].iter().all(|&b| b == 16));
    }

    #[test]
    fn empty_input_pads_to_one_block() {
        let padded = pkcs7_pad(b"", 16);
        assert_eq!(padded, vec![16u8; 16]);
    }

    #[test]
    fn round_trip_all_lengths() {
        for len in 0..48 {
            let data: Vec<u8> = (0..len as u8).collect();
            let padded = pkcs7_pad(&data, 16);
            assert_eq!(pkcs7_unpad(&padded, 16).unwrap(), data, "len={len}");
        }
    }

    #[test]
    fn rejects_bad_padding() {
        assert!(pkcs7_unpad(&[], 16).is_err());
        assert!(pkcs7_unpad(&[1u8; 15], 16).is_err()); // not block aligned
        let mut block = vec![0u8; 16];
        block[15] = 0; // zero pad byte
        assert!(pkcs7_unpad(&block, 16).is_err());
        block[15] = 17; // exceeds block size
        assert!(pkcs7_unpad(&block, 16).is_err());
        block[15] = 3;
        block[14] = 3;
        block[13] = 4; // inconsistent
        assert!(pkcs7_unpad(&block, 16).is_err());
    }
}
