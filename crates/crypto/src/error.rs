//! Error type shared by all primitives in this crate.

use std::fmt;

/// Errors produced by the cryptographic primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A ciphertext, signature, or key had an invalid length.
    InvalidLength {
        /// What was being parsed or processed.
        what: &'static str,
        /// The length that was expected (or a lower bound).
        expected: usize,
        /// The length that was actually supplied.
        actual: usize,
    },
    /// PKCS#1 / PKCS#7 padding was malformed.
    BadPadding(&'static str),
    /// A signature failed verification.
    SignatureMismatch,
    /// The message is too large for the RSA modulus.
    MessageTooLarge,
    /// Division by zero in big-integer arithmetic.
    DivisionByZero,
    /// No modular inverse exists (operands not coprime).
    NotInvertible,
    /// Prime generation exhausted its attempt budget.
    PrimeGenerationFailed,
    /// A certificate failed validation.
    CertificateInvalid(&'static str),
    /// An unsupported algorithm identifier was encountered.
    UnsupportedAlgorithm(u8),
    /// Malformed serialized structure.
    Malformed(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidLength {
                what,
                expected,
                actual,
            } => write!(
                f,
                "invalid length for {what}: expected {expected}, got {actual}"
            ),
            CryptoError::BadPadding(why) => write!(f, "bad padding: {why}"),
            CryptoError::SignatureMismatch => write!(f, "signature verification failed"),
            CryptoError::MessageTooLarge => write!(f, "message too large for RSA modulus"),
            CryptoError::DivisionByZero => write!(f, "division by zero"),
            CryptoError::NotInvertible => write!(f, "no modular inverse exists"),
            CryptoError::PrimeGenerationFailed => write!(f, "prime generation failed"),
            CryptoError::CertificateInvalid(why) => write!(f, "certificate invalid: {why}"),
            CryptoError::UnsupportedAlgorithm(id) => write!(f, "unsupported algorithm id {id}"),
            CryptoError::Malformed(what) => write!(f, "malformed structure: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}
