//! SHA-1 (FIPS 180-4). The paper's signature benchmarks use
//! "1024-bit RSA with 160-bit SHA-1 and PKCS#1 padding".

use crate::digest::Digest;

const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

/// Streaming SHA-1 state.
#[derive(Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1 {
            h: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }
}

impl Sha1 {
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;

    fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            } else {
                // Buffer still partially filled and input exhausted.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            let block: &[u8; 64] = chunk.try_into().unwrap();
            self.compress(block);
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80, pad with zeros to 56 mod 64, append bit length.
        let mut pad = vec![0x80u8];
        let rem = (self.len as usize + 1) % 64;
        let zeros = if rem <= 56 { 56 - rem } else { 120 - rem };
        pad.extend(std::iter::repeat_n(0u8, zeros));
        pad.extend_from_slice(&bit_len.to_be_bytes());
        self.update(&pad);
        debug_assert_eq!(self.buf_len, 0);
        self.h.iter().flat_map(|w| w.to_be_bytes()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut d = Sha1::default();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            d.update(&chunk);
        }
        assert_eq!(
            hex(&d.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 500, 999, 1000] {
            let mut d = Sha1::default();
            d.update(&data[..split]);
            d.update(&data[split..]);
            assert_eq!(d.finalize(), Sha1::digest(&data), "split={split}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        // Inputs of exactly 55, 56, 63, 64 bytes exercise both padding
        // branches (one vs two final blocks).
        for len in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0xabu8; len];
            let h1 = Sha1::digest(&data);
            let mut d = Sha1::default();
            for b in &data {
                d.update(std::slice::from_ref(b));
            }
            assert_eq!(d.finalize(), h1, "len={len}");
        }
    }
}
