//! Session-key regime: amortizing RSA off the per-trace hot path.
//!
//! EXPERIMENTS.md §6.3 measures RSA signing at ~0.49 ms against
//! ~0.001 ms for HMAC-SHA256 — a ~500× gap that dominates per-trace
//! cost at scale. Following the trusted-channel shape (pay asymmetric
//! crypto once at session establishment, then authenticate every
//! frame symmetrically), an entity and its authorized tracker-set
//! negotiate a per-(entity, tracker-set) HMAC-SHA256 session key via
//! an RSA-signed, RSA-encrypted handshake; every subsequent trace
//! carries a cheap session MAC instead of relying on per-message RSA
//! verification.
//!
//! This module is the key store and MAC engine shared by that layer:
//!
//! * [`SessionKey`] — one negotiated key: a random 64-bit `key_id`,
//!   the 32-byte HMAC secret, the trace topic it is bound to, an
//!   expiry instant and a message budget (rotation after N messages /
//!   T ms);
//! * [`SessionKeyring`] — a concurrent map from `key_id` to key
//!   state, with installation, tagging (MAC issue + usage counting),
//!   verification, rotation-due detection and revocation.
//!
//! Expiry is **inclusive of the expiry instant**, exactly like
//! [`crate::cert::Validity::contains`] and the authorization-token
//! window checks: a key is accepted at `expires_at_ms` and rejected
//! one millisecond later, so no layer disagrees about the boundary.
//!
//! The MAC covers `key_id ‖ seq ‖ message-bytes`, binding the tag to
//! the key and the per-key sequence number so a tag cannot be grafted
//! onto another key's traffic. Verifiers additionally check the key's
//! topic binding: holding a valid key for entity A must not allow
//! forging traffic for entity B.

use crate::digest::Digest;
use crate::error::CryptoError;
use crate::hmac::{ct_eq, hmac_parts};
use crate::sha256::Sha256;
use crate::uuid::Uuid;
use rand::Rng;
use std::collections::HashMap;
use std::sync::RwLock;

/// Length of a session MAC (full HMAC-SHA256 output).
pub const SESSION_MAC_LEN: usize = 32;

/// One negotiated per-(entity, tracker-set) session key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SessionKey {
    /// Random 64-bit identifier carried in every tagged frame.
    pub key_id: u64,
    /// The trace topic this key is bound to (the entity's topic).
    pub topic: Uuid,
    /// The HMAC-SHA256 secret.
    pub secret: [u8; 32],
    /// When the key was negotiated (ms since epoch).
    pub established_ms: u64,
    /// Last instant at which the key is accepted (inclusive — see the
    /// module docs on boundary semantics).
    pub expires_at_ms: u64,
    /// Messages the issuer may tag before rotation is due.
    pub max_messages: u64,
}

impl SessionKey {
    /// Mints a fresh key bound to `topic`, valid for `lifetime_ms`
    /// with a budget of `max_messages` tags.
    pub fn mint(
        topic: Uuid,
        now_ms: u64,
        lifetime_ms: u64,
        max_messages: u64,
        rng: &mut dyn Rng,
    ) -> Self {
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        SessionKey {
            key_id: rng.next_u64(),
            topic,
            secret,
            established_ms: now_ms,
            expires_at_ms: now_ms.saturating_add(lifetime_ms),
            max_messages,
        }
    }

    /// Whether the key has lapsed at `now_ms` (inclusive boundary:
    /// still valid *at* `expires_at_ms`).
    pub fn is_expired(&self, now_ms: u64) -> bool {
        now_ms > self.expires_at_ms
    }

    /// Fixed-layout serialization (80 bytes) — this is what travels
    /// inside the RSA-sealed handshake envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(80);
        out.extend_from_slice(&self.key_id.to_be_bytes());
        out.extend_from_slice(self.topic.as_bytes());
        out.extend_from_slice(&self.secret);
        out.extend_from_slice(&self.established_ms.to_be_bytes());
        out.extend_from_slice(&self.expires_at_ms.to_be_bytes());
        out.extend_from_slice(&self.max_messages.to_be_bytes());
        out
    }

    /// Inverse of [`SessionKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != 80 {
            return Err(CryptoError::InvalidLength {
                what: "session key material",
                expected: 80,
                actual: bytes.len(),
            });
        }
        let u64_at = |off: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[off..off + 8]);
            u64::from_be_bytes(b)
        };
        let mut topic = [0u8; 16];
        topic.copy_from_slice(&bytes[8..24]);
        let mut secret = [0u8; 32];
        secret.copy_from_slice(&bytes[24..56]);
        Ok(SessionKey {
            key_id: u64_at(0),
            topic: Uuid::from_bytes(topic),
            secret,
            established_ms: u64_at(56),
            expires_at_ms: u64_at(64),
            max_messages: u64_at(72),
        })
    }

    /// Computes the session MAC for (`seq`, `parts`): HMAC-SHA256 over
    /// `key_id ‖ seq ‖ parts[0] ‖ parts[1] ‖ …`.
    pub fn mac(&self, seq: u64, parts: &[&[u8]]) -> [u8; SESSION_MAC_LEN] {
        let key_id = self.key_id.to_be_bytes();
        let seq = seq.to_be_bytes();
        let mut all: Vec<&[u8]> = Vec::with_capacity(parts.len() + 2);
        all.push(&key_id);
        all.push(&seq);
        all.extend_from_slice(parts);
        let digest = hmac_parts::<Sha256>(&self.secret, &all);
        let mut mac = [0u8; SESSION_MAC_LEN];
        mac.copy_from_slice(&digest);
        mac
    }
}

/// Why a session verification did not succeed — drives the receiver's
/// fallback policy (unknown/expired keys fall back to full RSA
/// verification; revoked keys and bad MACs are security events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionVerdict {
    /// MAC valid under a live key bound to the expected topic.
    Verified,
    /// No key with this id — receiver falls back to RSA verification.
    UnknownKey,
    /// Key known but past `expires_at_ms` — RSA fallback.
    Expired,
    /// Key was explicitly revoked — reject and report.
    Revoked,
    /// Key is bound to a different trace topic — reject.
    WrongTopic,
    /// MAC mismatch under the named key — reject.
    BadMac,
}

struct KeyState {
    key: SessionKey,
    used: u64,
    revoked: bool,
}

/// Concurrent store of live session keys, indexed by `key_id`.
///
/// Brokers hold one (shared with the hosting tracing engine), each
/// tracker holds its own, and entities hold one for the keys they
/// minted. All metrics go to the process-wide registry under
/// `crypto.session.*` (see `docs/OBSERVABILITY.md`).
#[derive(Default)]
pub struct SessionKeyring {
    keys: RwLock<HashMap<u64, KeyState>>,
}

impl SessionKeyring {
    /// An empty keyring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) a key.
    pub fn install(&self, key: SessionKey) {
        crate::instrument::SESSION_INSTALLED.inc();
        self.keys.write().expect("session keyring poisoned").insert(
            key.key_id,
            KeyState {
                key,
                used: 0,
                revoked: false,
            },
        );
    }

    /// Marks `key_id` revoked (it stays resident so verifiers can
    /// distinguish *revoked* from *unknown*). Returns whether the key
    /// existed and was live.
    pub fn revoke(&self, key_id: u64) -> bool {
        let mut keys = self.keys.write().expect("session keyring poisoned");
        match keys.get_mut(&key_id) {
            Some(state) if !state.revoked => {
                state.revoked = true;
                crate::instrument::SESSION_REVOKED.inc();
                true
            }
            _ => false,
        }
    }

    /// Whether any key is installed at all (lets hot paths skip the
    /// map lookup entirely when the session layer is unused).
    pub fn is_empty(&self) -> bool {
        self.keys.read().expect("session keyring poisoned").is_empty()
    }

    /// Whether a live (non-revoked, unexpired) key exists for `topic`.
    pub fn has_live_key_for(&self, topic: &Uuid, now_ms: u64) -> bool {
        self.keys
            .read()
            .expect("session keyring poisoned")
            .values()
            .any(|s| !s.revoked && !s.key.is_expired(now_ms) && &s.key.topic == topic)
    }

    /// A clone of the key record for `key_id`, if present.
    pub fn get(&self, key_id: u64) -> Option<SessionKey> {
        self.keys
            .read()
            .expect("session keyring poisoned")
            .get(&key_id)
            .map(|s| s.key.clone())
    }

    /// Tags a message: returns `(seq, mac)` under `key_id` and counts
    /// the use, or `None` when the key is missing, revoked, expired
    /// at `now_ms`, or out of message budget (callers should then
    /// rotate or fall back to RSA signatures).
    pub fn tag(
        &self,
        key_id: u64,
        now_ms: u64,
        parts: &[&[u8]],
    ) -> Option<(u64, [u8; SESSION_MAC_LEN])> {
        let mut keys = self.keys.write().expect("session keyring poisoned");
        let state = keys.get_mut(&key_id)?;
        if state.revoked || state.key.is_expired(now_ms) || state.used >= state.key.max_messages {
            return None;
        }
        let seq = state.used;
        state.used += 1;
        let mac = state.key.mac(seq, parts);
        crate::instrument::SESSION_TAGGED.inc();
        Some((seq, mac))
    }

    /// Whether the issuer should rotate `key_id` now: the message
    /// budget is spent, or three quarters of the key lifetime has
    /// elapsed (rotating *before* expiry keeps the tagged stream
    /// seamless).
    pub fn needs_rotation(&self, key_id: u64, now_ms: u64) -> bool {
        let keys = self.keys.read().expect("session keyring poisoned");
        let Some(state) = keys.get(&key_id) else {
            return true;
        };
        if state.revoked || state.used >= state.key.max_messages {
            return true;
        }
        let lifetime = state.key.expires_at_ms.saturating_sub(state.key.established_ms);
        now_ms.saturating_sub(state.key.established_ms) >= lifetime.saturating_mul(3) / 4
    }

    /// Verifies a session tag.
    ///
    /// `expected_topic` enforces the key↔topic binding when the caller
    /// knows which trace topic the frame claims to belong to (brokers
    /// resolve it from the route entry, trackers from their tracked
    /// entity); `None` skips that check.
    pub fn verify(
        &self,
        key_id: u64,
        seq: u64,
        expected_topic: Option<&Uuid>,
        now_ms: u64,
        parts: &[&[u8]],
        mac: &[u8],
    ) -> SessionVerdict {
        let keys = self.keys.read().expect("session keyring poisoned");
        let Some(state) = keys.get(&key_id) else {
            crate::instrument::SESSION_UNKNOWN.inc();
            return SessionVerdict::UnknownKey;
        };
        if state.revoked {
            crate::instrument::SESSION_REJECTED.inc();
            return SessionVerdict::Revoked;
        }
        if state.key.is_expired(now_ms) {
            crate::instrument::SESSION_EXPIRED.inc();
            return SessionVerdict::Expired;
        }
        if let Some(topic) = expected_topic {
            if &state.key.topic != topic {
                crate::instrument::SESSION_REJECTED.inc();
                return SessionVerdict::WrongTopic;
            }
        }
        let expected = state.key.mac(seq, parts);
        if ct_eq(&expected, mac) {
            crate::instrument::SESSION_VERIFIED.inc();
            SessionVerdict::Verified
        } else {
            crate::instrument::SESSION_REJECTED.inc();
            SessionVerdict::BadMac
        }
    }

    /// Drops keys expired before `now_ms` (revoked keys are kept so
    /// replayed traffic still reads as *revoked*, not *unknown*).
    pub fn sweep_expired(&self, now_ms: u64) {
        self.keys
            .write()
            .expect("session keyring poisoned")
            .retain(|_, s| s.revoked || !s.key.is_expired(now_ms));
    }

    /// Number of resident keys (live + revoked).
    pub fn len(&self) -> usize {
        self.keys.read().expect("session keyring poisoned").len()
    }
}

impl std::fmt::Debug for SessionKeyring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SessionKeyring({} keys)", self.len())
    }
}

/// HMAC-SHA256 digest helper used by receivers that want the raw
/// digest type without naming the generic machinery.
pub fn session_hmac(secret: &[u8], parts: &[&[u8]]) -> Vec<u8> {
    hmac_parts::<Sha256>(secret, parts)
}

/// Digest length sanity: HMAC-SHA256 output is [`SESSION_MAC_LEN`].
const _: () = assert!(Sha256::OUTPUT_LEN == SESSION_MAC_LEN);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const NOW: u64 = 1_700_000_000_000;

    fn key(rng: &mut StdRng) -> SessionKey {
        let topic = Uuid::new_v4(rng);
        SessionKey::mint(topic, NOW, 60_000, 100, rng)
    }

    #[test]
    fn serialization_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let k = key(&mut rng);
        let bytes = k.to_bytes();
        assert_eq!(bytes.len(), 80);
        assert_eq!(SessionKey::from_bytes(&bytes).unwrap(), k);
        assert!(SessionKey::from_bytes(&bytes[..79]).is_err());
    }

    #[test]
    fn tag_and_verify_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let k = key(&mut rng);
        let ring = SessionKeyring::new();
        ring.install(k.clone());
        let (seq, mac) = ring.tag(k.key_id, NOW, &[b"hello", b" world"]).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(
            ring.verify(k.key_id, seq, Some(&k.topic), NOW, &[b"hello world"], &mac),
            SessionVerdict::Verified
        );
        // Sequence numbers advance per tag.
        let (seq2, _) = ring.tag(k.key_id, NOW, &[b"x"]).unwrap();
        assert_eq!(seq2, 1);
    }

    #[test]
    fn verdicts_cover_every_failure_mode() {
        let mut rng = StdRng::seed_from_u64(3);
        let k = key(&mut rng);
        let other_topic = Uuid::new_v4(&mut rng);
        let ring = SessionKeyring::new();
        ring.install(k.clone());
        let (seq, mac) = ring.tag(k.key_id, NOW, &[b"m"]).unwrap();

        assert_eq!(
            ring.verify(k.key_id + 1, seq, None, NOW, &[b"m"], &mac),
            SessionVerdict::UnknownKey
        );
        assert_eq!(
            ring.verify(k.key_id, seq, Some(&other_topic), NOW, &[b"m"], &mac),
            SessionVerdict::WrongTopic
        );
        assert_eq!(
            ring.verify(k.key_id, seq, None, NOW, &[b"tampered"], &mac),
            SessionVerdict::BadMac
        );
        let mut bad = mac;
        bad[0] ^= 1;
        assert_eq!(
            ring.verify(k.key_id, seq, None, NOW, &[b"m"], &bad),
            SessionVerdict::BadMac
        );
        // Wrong seq under the right key is a MAC failure too.
        assert_eq!(
            ring.verify(k.key_id, seq + 1, None, NOW, &[b"m"], &mac),
            SessionVerdict::BadMac
        );
        assert!(ring.revoke(k.key_id));
        assert!(!ring.revoke(k.key_id), "double revoke reports false");
        assert_eq!(
            ring.verify(k.key_id, seq, None, NOW, &[b"m"], &mac),
            SessionVerdict::Revoked
        );
    }

    #[test]
    fn expiry_boundary_is_inclusive_like_every_other_layer() {
        // The cross-layer contract: certificates
        // (`Validity::contains`), authorization tokens and session
        // keys all accept at the exact expiry instant and reject one
        // millisecond later.
        let mut rng = StdRng::seed_from_u64(4);
        let k = key(&mut rng);
        let expiry = k.expires_at_ms;
        let ring = SessionKeyring::new();
        ring.install(k.clone());
        let (seq, mac) = ring.tag(k.key_id, NOW, &[b"m"]).unwrap();

        assert!(!k.is_expired(expiry));
        assert!(k.is_expired(expiry + 1));
        assert_eq!(
            ring.verify(k.key_id, seq, None, expiry, &[b"m"], &mac),
            SessionVerdict::Verified,
            "key must be accepted at the expiry instant"
        );
        assert_eq!(
            ring.verify(k.key_id, seq, None, expiry + 1, &[b"m"], &mac),
            SessionVerdict::Expired
        );
        // Tagging obeys the same boundary.
        assert!(ring.tag(k.key_id, expiry, &[b"m"]).is_some());
        assert!(ring.tag(k.key_id, expiry + 1, &[b"m"]).is_none());
    }

    #[test]
    fn rotation_due_after_budget_or_age() {
        let mut rng = StdRng::seed_from_u64(5);
        let topic = Uuid::new_v4(&mut rng);
        let k = SessionKey::mint(topic, NOW, 100_000, 3, &mut rng);
        let ring = SessionKeyring::new();
        ring.install(k.clone());
        assert!(!ring.needs_rotation(k.key_id, NOW));
        // Age: due at 3/4 of lifetime.
        assert!(!ring.needs_rotation(k.key_id, NOW + 74_999));
        assert!(ring.needs_rotation(k.key_id, NOW + 75_000));
        // Budget: due after max_messages tags; tag() then refuses.
        for _ in 0..3 {
            assert!(ring.tag(k.key_id, NOW, &[b"m"]).is_some());
        }
        assert!(ring.needs_rotation(k.key_id, NOW));
        assert!(ring.tag(k.key_id, NOW, &[b"m"]).is_none());
        // Unknown keys always rotate.
        assert!(ring.needs_rotation(999, NOW));
    }

    #[test]
    fn sweep_drops_expired_keeps_revoked() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = key(&mut rng);
        let b = key(&mut rng);
        let ring = SessionKeyring::new();
        ring.install(a.clone());
        ring.install(b.clone());
        ring.revoke(b.key_id);
        ring.sweep_expired(a.expires_at_ms + 1);
        assert!(ring.get(a.key_id).is_none(), "expired key swept");
        assert!(ring.get(b.key_id).is_some(), "revoked key retained");
        assert_eq!(
            ring.verify(b.key_id, 0, None, NOW, &[b"m"], &[0u8; 32]),
            SessionVerdict::Revoked,
            "replay after revocation must read revoked, not unknown"
        );
    }

    #[test]
    fn topic_binding_prevents_cross_entity_forgery() {
        // Holding a valid key for entity A must not authenticate
        // traffic claimed for entity B.
        let mut rng = StdRng::seed_from_u64(7);
        let key_a = key(&mut rng);
        let topic_b = Uuid::new_v4(&mut rng);
        let ring = SessionKeyring::new();
        ring.install(key_a.clone());
        let (seq, mac) = ring.tag(key_a.key_id, NOW, &[b"forged for B"]).unwrap();
        assert_eq!(
            ring.verify(key_a.key_id, seq, Some(&topic_b), NOW, &[b"forged for B"], &mac),
            SessionVerdict::WrongTopic
        );
    }
}
