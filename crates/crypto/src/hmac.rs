//! HMAC (RFC 2104), generic over any [`Digest`].
//!
//! Used by the tracing layer for keyed integrity on the
//! symmetric-key signing optimization (paper §6.3): once an entity and
//! its hosting broker share a secret key, per-message RSA signatures
//! are replaced by cheap symmetric authentication.

use crate::digest::Digest;

/// Computes `HMAC(key, message)` with digest `D`.
pub fn hmac<D: Digest>(key: &[u8], message: &[u8]) -> Vec<u8> {
    hmac_parts::<D>(key, &[message])
}

/// Computes `HMAC(key, parts[0] ‖ parts[1] ‖ …)` with digest `D` —
/// identical to [`hmac`] over the concatenation, without requiring the
/// caller to materialize it. The broker's zero-copy fast path feeds
/// the signable region of a frame as two borrowed slices.
pub fn hmac_parts<D: Digest>(key: &[u8], parts: &[&[u8]]) -> Vec<u8> {
    let mut key_block = vec![0u8; D::BLOCK_LEN];
    if key.len() > D::BLOCK_LEN {
        let hashed = D::digest(key);
        key_block[..hashed.len()].copy_from_slice(&hashed);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = D::default();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    for part in parts {
        inner.update(part);
    }
    let inner_hash = inner.finalize();

    let mut outer = D::default();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_hash);
    outer.finalize()
}

/// Constant-time byte-slice equality: length check, then an
/// XOR-accumulate pass with no early exit on content differences.
///
/// This is the single comparison routine for all secret-dependent
/// equality in the crate — MAC verification ([`verify_mac`]) and
/// RSA signature verification (`RsaPublicKey::verify` compares the
/// recovered encoded message through it) both route here, so neither
/// leaks match-prefix length through timing.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Constant-time byte-slice equality for MAC verification.
///
/// Returns `false` for length mismatches without early exit on
/// content differences.
pub fn verify_mac(expected: &[u8], actual: &[u8]) -> bool {
    ct_eq(expected, actual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc2202_hmac_sha1_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac::<Sha1>(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_hmac_sha1_case2() {
        assert_eq!(
            hex(&hmac::<Sha1>(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc4231_hmac_sha256_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac::<Sha256>(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_hmac_sha256_case2() {
        assert_eq!(
            hex(&hmac::<Sha256>(
                b"Jefe",
                b"what do ya want for nothing?"
            )),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_long_key_is_hashed_first() {
        // Test case 6: 131-byte key forces the key-hashing branch.
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac::<Sha256>(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_produce_different_macs() {
        let m1 = hmac::<Sha256>(b"key-a", b"payload");
        let m2 = hmac::<Sha256>(b"key-b", b"payload");
        assert_ne!(m1, m2);
    }

    #[test]
    fn verify_mac_semantics() {
        let mac = hmac::<Sha256>(b"k", b"m");
        assert!(verify_mac(&mac, &mac));
        let mut tampered = mac.clone();
        tampered[0] ^= 1;
        assert!(!verify_mac(&mac, &tampered));
        assert!(!verify_mac(&mac, &mac[..31]));
    }

    #[test]
    fn hmac_parts_equals_hmac_over_concatenation() {
        let key = b"session-secret";
        let whole = b"abcdef0123456789";
        let concat = hmac::<Sha256>(key, whole);
        for split in [0usize, 1, 7, whole.len()] {
            let (a, b) = whole.split_at(split);
            assert_eq!(hmac_parts::<Sha256>(key, &[a, b]), concat);
        }
        assert_eq!(
            hmac_parts::<Sha256>(key, &[&whole[..3], &whole[3..9], &whole[9..], b""]),
            concat
        );
        assert_eq!(hmac_parts::<Sha1>(key, &[whole]), hmac::<Sha1>(key, whole));
    }

    #[test]
    fn ct_eq_semantics() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        // Differences anywhere in the slice are caught (no early exit
        // to observe, but semantics must hold at every position).
        let base = [0u8; 64];
        for i in 0..64 {
            let mut other = base;
            other[i] = 1;
            assert!(!ct_eq(&base, &other));
        }
    }
}
