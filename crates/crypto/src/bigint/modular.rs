//! Modular arithmetic: Montgomery multiplication, modular
//! exponentiation, inverses, and GCD.

use super::BigUint;
use crate::error::CryptoError;

/// Precomputed context for Montgomery arithmetic modulo an odd `n`.
///
/// Montgomery representation maps `a` to `a * R mod n` where
/// `R = 2^(64k)` and `k` is the limb count of `n`. Multiplication in
/// this domain (CIOS method) avoids per-step long division, which is
/// what makes 1024-bit RSA exponentiation fast enough for the paper's
/// benchmark workloads.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod n`, used to enter the Montgomery domain.
    rr: Vec<u64>,
}

impl MontgomeryCtx {
    /// Builds a context for an odd modulus `n > 1`.
    pub fn new(n: &BigUint) -> Result<Self, CryptoError> {
        if n.is_zero() || n.is_one() {
            return Err(CryptoError::DivisionByZero);
        }
        if n.is_even() {
            return Err(CryptoError::Malformed("Montgomery modulus must be odd"));
        }
        let k = n.limbs.len();
        // Newton iteration for the inverse of n[0] modulo 2^64; six
        // doublings of precision from 1 bit covers all 64 bits.
        let x = n.limbs[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
        }
        debug_assert_eq!(x.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        // R^2 mod n via one long division of 2^(128k).
        let r2 = BigUint::one().shl(128 * k).rem(n)?;
        let mut rr = r2.limbs;
        rr.resize(k, 0);

        Ok(MontgomeryCtx {
            n: n.limbs.clone(),
            n0_inv,
            rr,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.n.clone())
    }

    fn k(&self) -> usize {
        self.n.len()
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^{-1} mod n`.
    /// Inputs are fixed-width `k`-limb slices; output is `k` limbs.
    #[allow(clippy::needless_range_loop)] // index math mirrors the CIOS paper
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        let n = &self.n;
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            // t += a[i] * b
            let ai = a[i] as u128;
            let mut carry = 0u64;
            for j in 0..k {
                let s = t[j] as u128 + ai * b[j] as u128 + carry as u128;
                t[j] = s as u64;
                carry = (s >> 64) as u64;
            }
            let s = t[k] as u128 + carry as u128;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // m = t[0] * (-n^-1) mod 2^64; then t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0_inv) as u128;
            let s = t[0] as u128 + m * n[0] as u128;
            debug_assert_eq!(s as u64, 0);
            let mut carry = (s >> 64) as u64;
            for j in 1..k {
                let s = t[j] as u128 + m * n[j] as u128 + carry as u128;
                t[j - 1] = s as u64;
                carry = (s >> 64) as u64;
            }
            let s = t[k] as u128 + carry as u128;
            t[k - 1] = s as u64;
            t[k] = t[k + 1] + ((s >> 64) as u64);
            t[k + 1] = 0;
        }
        // Conditional subtraction to bring the result below n.
        let needs_sub = t[k] != 0 || ge_slice(&t[..k], n);
        let mut out = t[..k].to_vec();
        if needs_sub {
            let mut borrow = 0u64;
            for j in 0..k {
                let (d1, b1) = out[j].overflowing_sub(n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
        }
        out
    }

    /// Converts a reduced value (`a < n`) into the Montgomery domain.
    fn to_mont(&self, a: &BigUint) -> Vec<u64> {
        let mut limbs = a.limbs.clone();
        limbs.resize(self.k(), 0);
        self.mont_mul(&limbs, &self.rr)
    }

    /// Leaves the Montgomery domain.
    #[allow(clippy::wrong_self_convention)] // "from the Montgomery domain", not a constructor
    fn from_mont(&self, a: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.k()];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(a, &one))
    }

    /// Modular multiplication `a * b mod n` for already-reduced inputs.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod n` via left-to-right
    /// square-and-multiply in the Montgomery domain.
    pub fn pow_mod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem(&self.modulus()).unwrap();
        }
        let base = if &self.modulus() <= base {
            base.rem(&self.modulus()).unwrap()
        } else {
            base.clone()
        };
        let base_m = self.to_mont(&base);
        let mut acc = base_m.clone();
        let bits = exp.bit_length();
        for i in (0..bits - 1).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        self.from_mont(&acc)
    }
}

fn ge_slice(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

impl BigUint {
    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery arithmetic when `m` is odd (the RSA case) and a
    /// division-based square-and-multiply fallback otherwise.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if m.is_one() {
            return Ok(BigUint::zero());
        }
        if m.is_odd() {
            let ctx = MontgomeryCtx::new(m)?;
            return Ok(ctx.pow_mod(self, exp));
        }
        self.modpow_generic(exp, m)
    }

    /// Square-and-multiply with full division-based reduction. Exposed
    /// for benchmarking the Montgomery speedup (DESIGN.md ablation).
    pub fn modpow_generic(&self, exp: &BigUint, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if m.is_one() {
            return Ok(BigUint::zero());
        }
        let mut result = BigUint::one();
        let mut base = self.rem(m)?;
        let bits = exp.bit_length();
        for i in 0..bits {
            if exp.bit(i) {
                result = result.mul(&base).rem(m)?;
            }
            if i + 1 < bits {
                base = base.mul(&base).rem(m)?;
            }
        }
        Ok(result)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Factor out common powers of two.
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl(shift)
    }

    /// Modular inverse: finds `x` with `self * x ≡ 1 (mod m)`.
    ///
    /// Returns [`CryptoError::NotInvertible`] when `gcd(self, m) != 1`.
    pub fn mod_inverse(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m.is_zero() || m.is_one() {
            return Err(CryptoError::NotInvertible);
        }
        let a = self.rem(m)?;
        if a.is_zero() {
            return Err(CryptoError::NotInvertible);
        }
        // Extended Euclid with sign-tracked coefficients.
        let (mut old_r, mut r) = (a, m.clone());
        let (mut old_s, mut s) = (Signed::pos(BigUint::one()), Signed::pos(BigUint::zero()));
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r)?;
            old_r = std::mem::replace(&mut r, rem);
            let qs = s.mul_mag(&q);
            let new_s = old_s.sub(&qs);
            old_s = std::mem::replace(&mut s, new_s);
        }
        if !old_r.is_one() {
            return Err(CryptoError::NotInvertible);
        }
        old_s.reduce_mod(m)
    }
}

/// Minimal signed wrapper used only by the extended Euclid above.
#[derive(Clone)]
struct Signed {
    neg: bool,
    mag: BigUint,
}

impl Signed {
    fn pos(mag: BigUint) -> Self {
        Signed { neg: false, mag }
    }

    fn mul_mag(&self, q: &BigUint) -> Signed {
        Signed {
            neg: self.neg,
            mag: self.mag.mul(q),
        }
    }

    fn sub(&self, other: &Signed) -> Signed {
        match (self.neg, other.neg) {
            // a - b with both non-negative.
            (false, false) | (true, true) => {
                if self.mag >= other.mag {
                    Signed {
                        neg: self.neg,
                        mag: self.mag.sub(&other.mag),
                    }
                } else {
                    Signed {
                        neg: !self.neg,
                        mag: other.mag.sub(&self.mag),
                    }
                }
            }
            // a - (-b) = a + b ; (-a) - b = -(a + b)
            (false, true) | (true, false) => Signed {
                neg: self.neg,
                mag: self.mag.add(&other.mag),
            },
        }
    }

    fn reduce_mod(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        let r = self.mag.rem(m)?;
        if self.neg && !r.is_zero() {
            Ok(m.sub(&r))
        } else {
            Ok(r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    fn h(s: &str) -> BigUint {
        BigUint::from_hex(s).unwrap()
    }

    #[test]
    fn montgomery_rejects_even_or_trivial_modulus() {
        assert!(MontgomeryCtx::new(&n(10)).is_err());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_err());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_err());
    }

    #[test]
    fn montgomery_mul_matches_naive() {
        let m = h("fedcba9876543211"); // odd
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let a = h("123456789abcdef0");
        let b = h("fedcba987654320f");
        let got = ctx.mul_mod(&a.rem(&m).unwrap(), &b.rem(&m).unwrap());
        let want = a.mul(&b).rem(&m).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn modpow_small_cases() {
        assert_eq!(n(2).modpow(&n(10), &n(1000)).unwrap(), n(24));
        assert_eq!(n(3).modpow(&n(0), &n(7)).unwrap(), n(1));
        assert_eq!(n(0).modpow(&n(5), &n(7)).unwrap(), n(0));
        assert_eq!(n(5).modpow(&n(3), &BigUint::one()).unwrap(), n(0));
    }

    #[test]
    fn modpow_fermat_little_theorem() {
        // a^(p-1) ≡ 1 mod p for prime p not dividing a.
        let p = n(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            assert_eq!(
                n(a).modpow(&n(1_000_000_006), &p).unwrap(),
                BigUint::one(),
                "a={a}"
            );
        }
    }

    #[test]
    fn modpow_matches_generic_fallback() {
        let m = h("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"); // odd
        let base = h("123456789abcdef0fedcba9876543210aabbccddeeff0011");
        let exp = h("10001");
        assert_eq!(
            base.modpow(&exp, &m).unwrap(),
            base.modpow_generic(&exp, &m).unwrap()
        );
    }

    #[test]
    fn modpow_even_modulus_uses_fallback() {
        let m = h("10000000000000000"); // 2^64, even
        assert_eq!(n(3).modpow(&n(64), &m).unwrap(), n(3).modpow_generic(&n(64), &m).unwrap());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(31)), n(1));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
        assert_eq!(n(48).gcd(&n(36)), n(12));
    }

    #[test]
    fn mod_inverse_round_trips() {
        let m = n(1_000_000_007);
        for a in [2u64, 3, 65537, 999_999_999] {
            let inv = n(a).mod_inverse(&m).unwrap();
            assert_eq!(n(a).mul_mod(&inv, &m).unwrap(), BigUint::one(), "a={a}");
        }
    }

    #[test]
    fn mod_inverse_not_coprime_fails() {
        assert_eq!(n(6).mod_inverse(&n(9)), Err(CryptoError::NotInvertible));
        assert_eq!(n(0).mod_inverse(&n(9)), Err(CryptoError::NotInvertible));
    }

    #[test]
    fn mod_inverse_large_operands() {
        let m = h("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"); // odd
        let a = h("123456789abcdef0123456789abcdef0");
        if a.gcd(&m).is_one() {
            let inv = a.mod_inverse(&m).unwrap();
            assert_eq!(a.mul_mod(&inv, &m).unwrap(), BigUint::one());
        }
    }

    #[test]
    fn rsa_shaped_round_trip() {
        // p, q small primes; e*d ≡ 1 mod (p-1)(q-1); m^(e*d) ≡ m mod n.
        let p = n(61);
        let q = n(53);
        let modulus = p.mul(&q); // 3233
        let e = n(17);
        let phi = n(60).mul(&n(52)); // 3120
        let d = e.mod_inverse(&phi).unwrap(); // 2753
        assert_eq!(d, n(2753));
        let msg = n(65);
        let c = msg.modpow(&e, &modulus).unwrap();
        assert_eq!(c, n(2790));
        let back = c.modpow(&d, &modulus).unwrap();
        assert_eq!(back, msg);
    }
}
