//! Multi-precision division (Knuth, TAOCP vol. 2, Algorithm D).

use super::BigUint;
use crate::error::CryptoError;

impl BigUint {
    /// Computes `(self / divisor, self % divisor)`.
    ///
    /// Uses single-limb short division when the divisor fits in one
    /// limb, and Knuth's Algorithm D otherwise.
    pub fn div_rem(&self, divisor: &BigUint) -> Result<(BigUint, BigUint), CryptoError> {
        if divisor.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if self < divisor {
            return Ok((BigUint::zero(), self.clone()));
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return Ok((q, BigUint::from_u64(r)));
        }
        Ok(self.div_rem_knuth(divisor))
    }

    /// Short division by a single non-zero limb.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut rem = 0u64;
        let mut q = vec![0u64; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = ((rem as u128) << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = (cur % d as u128) as u64;
        }
        (BigUint::from_limbs(q), rem)
    }

    /// Knuth Algorithm D for divisors of at least two limbs.
    ///
    /// Precondition: `self >= divisor` and `divisor.limbs.len() >= 2`.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let v = divisor.shl(shift);
        let mut u = self.shl(shift).limbs;
        let n = v.limbs.len();
        let m = u.len() - n;
        u.push(0); // u now has m + n + 1 limbs
        let v = &v.limbs;
        let v_top = v[n - 1];
        let v_next = v[n - 2];

        let mut q = vec![0u64; m + 1];

        // D2..D7: main loop over quotient digits, most significant first.
        for j in (0..=m).rev() {
            // D3: estimate q_hat from the top two limbs of u and top of v.
            let numer = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut q_hat = numer / v_top as u128;
            let mut r_hat = numer % v_top as u128;
            // Correct q_hat down while it is provably too large.
            while q_hat >> 64 != 0
                || q_hat * v_next as u128 > ((r_hat << 64) | u[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += v_top as u128;
                if r_hat >> 64 != 0 {
                    break;
                }
            }
            let mut q_hat = q_hat as u64;

            // D4: u[j..j+n+1] -= q_hat * v  (multiply-and-subtract).
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let prod = q_hat as u128 * v[i] as u128 + carry;
                carry = prod >> 64;
                let sub = u[j + i] as i128 - (prod as u64) as i128 + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = sub as u64;
            let went_negative = sub < 0;

            // D5/D6: if we overshot by one, add the divisor back.
            if went_negative {
                q_hat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let (s1, c1) = u[j + i].overflowing_add(v[i]);
                    let (s2, c2) = s1.overflowing_add(carry);
                    u[j + i] = s2;
                    carry = (c1 as u64) + (c2 as u64);
                }
                u[j + n] = u[j + n].wrapping_add(carry);
            }
            q[j] = q_hat;
        }

        // D8: denormalize the remainder.
        let rem = BigUint::from_limbs(u[..n].to_vec()).shr(shift);
        (BigUint::from_limbs(q), rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(s: &str) -> BigUint {
        BigUint::from_hex(s).unwrap()
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(
            BigUint::from_u64(5).div_rem(&BigUint::zero()),
            Err(CryptoError::DivisionByZero)
        );
    }

    #[test]
    fn small_divisions() {
        let (q, r) = BigUint::from_u64(17).div_rem(&BigUint::from_u64(5)).unwrap();
        assert_eq!(q, BigUint::from_u64(3));
        assert_eq!(r, BigUint::from_u64(2));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = BigUint::from_u64(3).div_rem(&BigUint::from_u64(7)).unwrap();
        assert!(q.is_zero());
        assert_eq!(r, BigUint::from_u64(3));
    }

    #[test]
    fn exact_division() {
        let a = h("100000000000000000000000000000000"); // 2^128
        let b = h("10000000000000000"); // 2^64
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    fn multi_limb_division_reconstructs() {
        let a = h("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
        let b = h("ba7816bf8f01cfea414140de5dae2223");
        let (q, r) = a.div_rem(&b).unwrap();
        assert!(r < b);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn knuth_add_back_case() {
        // Constructed to exercise the rare D6 add-back path: dividend
        // chosen so the first q_hat estimate overshoots.
        let a = BigUint::from_limbs(vec![0, 0, 0x8000000000000000, 0x7fffffffffffffff]);
        let b = BigUint::from_limbs(vec![1, 0, 0x8000000000000000]);
        let (q, r) = a.div_rem(&b).unwrap();
        assert!(r < b);
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn short_division_matches_long_path() {
        let a = h("123456789abcdef00fedcba987654321");
        let d = 0x1234567890abcdefu64;
        let (q1, r1) = a.div_rem_u64(d);
        let (q2, r2) = a.div_rem(&BigUint::from_u64(d)).unwrap();
        assert_eq!(q1, q2);
        assert_eq!(BigUint::from_u64(r1), r2);
        assert_eq!(q1.mul_u64(d).add(&BigUint::from_u64(r1)), a);
    }

    #[test]
    fn rem_alias() {
        let a = h("ffffffffffffffffffffffffffffffff");
        let m = h("fedcba9876543210");
        let r = a.rem(&m).unwrap();
        assert_eq!(r, a.div_rem(&m).unwrap().1);
    }

    #[test]
    fn division_identity_large_operands() {
        // (a * b + c) / b == a with remainder c, for c < b.
        let a = h("deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef");
        let b = h("123456789abcdef0123456789abcdef0123456789abcdef1");
        let c = h("42");
        let lhs = a.mul(&b).add(&c);
        let (q, r) = lhs.div_rem(&b).unwrap();
        assert_eq!(q, a);
        assert_eq!(r, c);
    }
}
