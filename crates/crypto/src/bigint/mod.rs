//! Arbitrary-precision unsigned integers.
//!
//! [`BigUint`] stores magnitude as little-endian `u64` limbs with no
//! trailing zero limbs (canonical form). The type implements the
//! arithmetic needed for RSA: addition, subtraction, schoolbook
//! multiplication, Knuth Algorithm D division, and modular
//! arithmetic including Montgomery exponentiation ([`MontgomeryCtx`]).

mod div;
mod modular;

pub use modular::MontgomeryCtx;

use crate::error::CryptoError;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// Internally a little-endian vector of 64-bit limbs in canonical form
/// (no trailing zero limbs; zero is the empty vector).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint {
            limbs: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// Constructs from raw little-endian limbs (normalizing).
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Parses a big-endian byte string (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to big-endian bytes with no leading zeros.
    ///
    /// Zero serializes to an empty vector; use
    /// [`BigUint::to_bytes_be_padded`] for fixed-width output.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zero bytes of the most significant limb.
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Serializes to big-endian bytes left-padded with zeros to `width`.
    ///
    /// Returns an error if the value does not fit in `width` bytes.
    pub fn to_bytes_be_padded(&self, width: usize) -> Result<Vec<u8>, CryptoError> {
        let raw = self.to_bytes_be();
        if raw.len() > width {
            return Err(CryptoError::InvalidLength {
                what: "big integer",
                expected: width,
                actual: raw.len(),
            });
        }
        let mut out = vec![0u8; width - raw.len()];
        out.extend_from_slice(&raw);
        Ok(out)
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Result<Self, CryptoError> {
        let s = s.trim();
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<u8> = s.bytes().collect();
        let mut idx = 0;
        // Odd-length strings get an implicit leading zero nibble.
        if chars.len() % 2 == 1 {
            bytes.push(hex_val(chars[0])?);
            idx = 1;
        }
        while idx + 1 < chars.len() + 1 && idx < chars.len() {
            let hi = hex_val(chars[idx])?;
            let lo = hex_val(chars[idx + 1])?;
            bytes.push((hi << 4) | lo);
            idx += 2;
        }
        Ok(Self::from_bytes_be(&bytes))
    }

    /// Formats as lowercase hexadecimal with no leading zeros (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let bytes = self.to_bytes_be();
        let mut s = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            s.push_str(&format!("{b:02x}"));
        }
        // Trim a single leading '0' nibble if present.
        if s.starts_with('0') {
            s.remove(0);
        }
        s
    }

    /// `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// `true` if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait, clippy::needless_range_loop)]
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// `self - other`; panics on underflow.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// Schoolbook multiplication `self * other`.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u64;
            let a = a as u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + a * b as u128 + carry as u128;
                out[i + j] = t as u64;
                carry = (t >> 64) as u64;
            }
            out[i + other.limbs.len()] = carry;
        }
        BigUint::from_limbs(out)
    }

    /// Multiplies by a single `u64`.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let m = m as u128;
        let mut carry = 0u64;
        for &a in &self.limbs {
            let t = a as u128 * m + carry as u128;
            out.push(t as u64);
            carry = (t >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
        }
        BigUint::from_limbs(out)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        Ok(self.div_rem(m)?.1)
    }

    /// Modular addition `(self + other) mod m`. Inputs need not be reduced.
    pub fn add_mod(&self, other: &BigUint, m: &BigUint) -> Result<BigUint, CryptoError> {
        self.add(other).rem(m)
    }

    /// Modular subtraction `(self - other) mod m`. Inputs must be `< m`.
    pub fn sub_mod(&self, other: &BigUint, m: &BigUint) -> Result<BigUint, CryptoError> {
        debug_assert!(self < m && other < m);
        if self >= other {
            Ok(self.sub(other))
        } else {
            Ok(self.add(m).sub(other))
        }
    }

    /// Modular multiplication `(self * other) mod m`.
    pub fn mul_mod(&self, other: &BigUint, m: &BigUint) -> Result<BigUint, CryptoError> {
        self.mul(other).rem(m)
    }
}

fn hex_val(c: u8) -> Result<u8, CryptoError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(CryptoError::Malformed("hex digit")),
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one_are_canonical() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert!(BigUint::zero().limbs.is_empty());
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::one();
        let sum = a.add(&b);
        assert_eq!(sum.limbs, vec![0, 1]);
        assert_eq!(sum.bit_length(), 65);
    }

    #[test]
    fn sub_with_borrow_across_limbs() {
        let a = BigUint::from_limbs(vec![0, 1]); // 2^64
        let b = BigUint::one();
        assert_eq!(a.sub(&b), BigUint::from_u64(u64::MAX));
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        assert!(n(3).checked_sub(&n(5)).is_none());
        assert_eq!(n(5).checked_sub(&n(3)), Some(n(2)));
    }

    #[test]
    fn mul_small_values() {
        assert_eq!(n(6).mul(&n(7)), n(42));
        assert_eq!(n(0).mul(&n(7)), BigUint::zero());
    }

    #[test]
    fn mul_crosses_limb_boundary() {
        let a = BigUint::from_u64(u64::MAX);
        let sq = a.mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expected = BigUint::one()
            .shl(128)
            .sub(&BigUint::one().shl(65))
            .add(&BigUint::one());
        assert_eq!(sq, expected);
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = BigUint::from_hex("ffeeddccbbaa99887766554433221100").unwrap();
        assert_eq!(a.mul_u64(12345), a.mul(&n(12345)));
    }

    #[test]
    fn shifts_round_trip() {
        let a = BigUint::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        for bits in [1, 7, 63, 64, 65, 127, 130] {
            assert_eq!(a.shl(bits).shr(bits), a, "bits={bits}");
        }
    }

    #[test]
    fn shr_past_end_is_zero() {
        assert_eq!(n(5).shr(64), BigUint::zero());
        assert_eq!(n(5).shr(3), BigUint::zero());
        assert_eq!(n(5).shr(2), n(1));
    }

    #[test]
    fn byte_round_trip_be() {
        let bytes = [0x01u8, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        let v = BigUint::from_bytes_be(&bytes);
        assert_eq!(v.to_bytes_be(), bytes);
    }

    #[test]
    fn leading_zero_bytes_are_ignored() {
        let v = BigUint::from_bytes_be(&[0, 0, 0, 0x12, 0x34]);
        assert_eq!(v, BigUint::from_u64(0x1234));
        assert_eq!(v.to_bytes_be(), vec![0x12, 0x34]);
    }

    #[test]
    fn padded_serialization() {
        let v = BigUint::from_u64(0x1234);
        assert_eq!(v.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0x12, 0x34]);
        assert!(v.to_bytes_be_padded(1).is_err());
    }

    #[test]
    fn hex_round_trip() {
        for s in ["1", "ff", "deadbeef", "123456789abcdef123456789abcdef"] {
            assert_eq!(BigUint::from_hex(s).unwrap().to_hex(), s);
        }
        assert_eq!(BigUint::from_hex("0").unwrap().to_hex(), "0");
        assert_eq!(BigUint::from_hex("00ff").unwrap().to_hex(), "ff");
        assert!(BigUint::from_hex("xyz").is_err());
    }

    #[test]
    fn bit_length_and_bit_access() {
        let v = BigUint::from_u64(0b1010);
        assert_eq!(v.bit_length(), 4);
        assert!(v.bit(1));
        assert!(!v.bit(0));
        assert!(v.bit(3));
        assert!(!v.bit(100));
        assert_eq!(BigUint::zero().bit_length(), 0);
        assert_eq!(BigUint::one().shl(512).bit_length(), 513);
    }

    #[test]
    fn ordering_compares_by_magnitude() {
        assert!(n(3) < n(5));
        assert!(BigUint::from_limbs(vec![0, 1]) > BigUint::from_u64(u64::MAX));
        assert_eq!(n(7).cmp(&n(7)), Ordering::Equal);
    }

    #[test]
    fn parity_checks() {
        assert!(BigUint::zero().is_even());
        assert!(n(2).is_even());
        assert!(n(3).is_odd());
        assert!(BigUint::from_limbs(vec![1, 5]).is_odd());
    }

    #[test]
    fn from_u128_splits_limbs() {
        let v = BigUint::from_u128((1u128 << 100) + 7);
        assert_eq!(v.bit_length(), 101);
        assert!(v.bit(100));
        assert!(v.bit(0) && v.bit(1) && v.bit(2));
    }

    #[test]
    fn sub_mod_wraps_correctly() {
        let m = n(17);
        assert_eq!(n(3).sub_mod(&n(5), &m).unwrap(), n(15));
        assert_eq!(n(5).sub_mod(&n(3), &m).unwrap(), n(2));
    }
}
