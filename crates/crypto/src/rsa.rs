//! RSA with PKCS#1 v1.5 signatures and encryption.
//!
//! The paper signs messages with "1024-bit RSA with 160-bit SHA-1 and
//! PKCS#1 padding" and encrypts registration responses / trace keys
//! with the recipient's public key. Both operations live here, plus
//! CRT-accelerated private-key operations.

use crate::bigint::BigUint;
use crate::digest::DigestAlgorithm;
use crate::error::CryptoError;
use crate::prime::{generate_prime, random_below};
use rand::Rng;

/// ASN.1 DigestInfo prefix for SHA-1 (RFC 8017 §9.2 note 1).
const SHA1_PREFIX: [u8; 15] = [
    0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04, 0x14,
];

/// ASN.1 DigestInfo prefix for SHA-256.
const SHA256_PREFIX: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01,
    0x05, 0x00, 0x04, 0x20,
];

fn digest_info_prefix(alg: DigestAlgorithm) -> &'static [u8] {
    match alg {
        DigestAlgorithm::Sha1 => &SHA1_PREFIX,
        DigestAlgorithm::Sha256 => &SHA256_PREFIX,
    }
}

/// RSA public key `(n, e)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// RSA private key with CRT parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    n: BigUint,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    d_p: BigUint,
    d_q: BigUint,
    q_inv: BigUint,
}

/// A matched public/private key pair.
#[derive(Clone)]
pub struct RsaKeyPair {
    /// The public half (freely distributable).
    pub public: RsaPublicKey,
    /// The private half.
    pub private: RsaPrivateKey,
}

impl RsaKeyPair {
    /// Generates a fresh key pair with an `bits`-bit modulus and
    /// public exponent 65537.
    ///
    /// The paper's benchmarks use `bits = 1024`.
    pub fn generate(bits: usize, rng: &mut dyn Rng) -> Result<Self, CryptoError> {
        assert!(bits >= 128, "modulus must be at least 128 bits");
        let started = std::time::Instant::now();
        let e = BigUint::from_u64(65537);
        loop {
            let p = generate_prime(bits / 2, rng)?;
            let q = generate_prime(bits - bits / 2, rng)?;
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_length() != bits {
                continue;
            }
            let one = BigUint::one();
            let p1 = p.sub(&one);
            let q1 = q.sub(&one);
            let phi = p1.mul(&q1);
            // e must be invertible modulo phi.
            let d = match e.mod_inverse(&phi) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let d_p = d.rem(&p1)?;
            let d_q = d.rem(&q1)?;
            let q_inv = q.mod_inverse(&p)?;
            crate::instrument::RSA_KEYGEN_MS.record(started.elapsed().as_millis() as u64);
            return Ok(RsaKeyPair {
                public: RsaPublicKey { n: n.clone(), e },
                private: RsaPrivateKey {
                    n,
                    d,
                    p,
                    q,
                    d_p,
                    d_q,
                    q_inv,
                },
            });
        }
    }
}

impl RsaPublicKey {
    /// Constructs a public key from its components.
    pub fn new(n: BigUint, e: BigUint) -> Self {
        RsaPublicKey { n, e }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Modulus length in whole bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bit_length().div_ceil(8)
    }

    /// Raw RSA public operation `m^e mod n`.
    fn raw(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m >= &self.n {
            return Err(CryptoError::MessageTooLarge);
        }
        m.modpow(&self.e, &self.n)
    }

    /// Verifies a PKCS#1 v1.5 signature over `message`.
    pub fn verify(
        &self,
        alg: DigestAlgorithm,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        let _t = crate::instrument::RSA_VERIFY_US.start_timer();
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(CryptoError::InvalidLength {
                what: "RSA signature",
                expected: k,
                actual: signature.len(),
            });
        }
        let s = BigUint::from_bytes_be(signature);
        let em = self.raw(&s)?.to_bytes_be_padded(k)?;
        let expected = emsa_pkcs1_v15(alg, message, k)?;
        // Constant-time comparison: `em == expected` would exit at the
        // first differing byte, leaking how much of the encoded
        // message an attacker-supplied signature recovered.
        if crate::hmac::ct_eq(&em, &expected) {
            Ok(())
        } else {
            Err(CryptoError::SignatureMismatch)
        }
    }

    /// Encrypts `plaintext` with EME-PKCS1-v1_5 random padding.
    ///
    /// The plaintext must be at most `modulus_len() - 11` bytes.
    pub fn encrypt(&self, plaintext: &[u8], rng: &mut dyn Rng) -> Result<Vec<u8>, CryptoError> {
        let _t = crate::instrument::RSA_ENCRYPT_US.start_timer();
        let k = self.modulus_len();
        if plaintext.len() + 11 > k {
            return Err(CryptoError::MessageTooLarge);
        }
        // EM = 0x00 || 0x02 || PS (nonzero random) || 0x00 || M
        //
        // Each `next_u32()` yields four uniform bytes; use all of them
        // (rejection-sampling only the zeros, which must not appear in
        // PS) instead of drawing one word per byte and discarding
        // three quarters of the entropy.
        let ps_len = k - plaintext.len() - 3;
        let mut em = Vec::with_capacity(k);
        em.push(0x00);
        em.push(0x02);
        let mut word = [0u8; 4];
        let mut avail = 0usize;
        while em.len() < 2 + ps_len {
            if avail == 0 {
                word = rng.next_u32().to_le_bytes();
                avail = 4;
            }
            let b = word[4 - avail];
            avail -= 1;
            if b != 0 {
                em.push(b);
            }
        }
        em.push(0x00);
        em.extend_from_slice(plaintext);
        let m = BigUint::from_bytes_be(&em);
        let c = self.raw(&m)?;
        c.to_bytes_be_padded(k)
    }

    /// Canonical byte encoding (length-prefixed n and e), used in
    /// certificates and wire messages.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(8 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u32).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u32).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Inverse of [`RsaPublicKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let (n, rest) = read_chunk(bytes)?;
        let (e, rest) = read_chunk(rest)?;
        if !rest.is_empty() {
            return Err(CryptoError::Malformed("trailing bytes in RSA public key"));
        }
        Ok(RsaPublicKey {
            n: BigUint::from_bytes_be(n),
            e: BigUint::from_bytes_be(e),
        })
    }
}

fn read_chunk(bytes: &[u8]) -> Result<(&[u8], &[u8]), CryptoError> {
    if bytes.len() < 4 {
        return Err(CryptoError::Malformed("truncated length prefix"));
    }
    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if bytes.len() < 4 + len {
        return Err(CryptoError::Malformed("truncated chunk"));
    }
    Ok((&bytes[4..4 + len], &bytes[4 + len..]))
}

impl RsaPrivateKey {
    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Modulus length in whole bytes.
    pub fn modulus_len(&self) -> usize {
        self.n.bit_length().div_ceil(8)
    }

    /// Raw RSA private operation `c^d mod n`, CRT-accelerated.
    fn raw(&self, c: &BigUint) -> Result<BigUint, CryptoError> {
        if c >= &self.n {
            return Err(CryptoError::MessageTooLarge);
        }
        // m1 = c^dP mod p ; m2 = c^dQ mod q
        let m1 = c.modpow(&self.d_p, &self.p)?;
        let m2 = c.modpow(&self.d_q, &self.q)?;
        // h = qInv * (m1 - m2) mod p ; m = m2 + h*q
        let diff = m1.sub_mod(&m2.rem(&self.p)?, &self.p)?;
        let h = self.q_inv.mul_mod(&diff, &self.p)?;
        Ok(m2.add(&h.mul(&self.q)))
    }

    /// Raw private operation without CRT acceleration. Exposed for
    /// the crypto_ops ablation bench (CRT vs plain exponentiation).
    pub fn raw_no_crt(&self, c: &BigUint) -> Result<BigUint, CryptoError> {
        if c >= &self.n {
            return Err(CryptoError::MessageTooLarge);
        }
        c.modpow(&self.d, &self.n)
    }

    /// Signs `message` with EMSA-PKCS1-v1_5 over digest `alg`.
    pub fn sign(&self, alg: DigestAlgorithm, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let _t = crate::instrument::RSA_SIGN_US.start_timer();
        let k = self.modulus_len();
        let em = emsa_pkcs1_v15(alg, message, k)?;
        let m = BigUint::from_bytes_be(&em);
        let s = self.raw(&m)?;
        s.to_bytes_be_padded(k)
    }

    /// Decrypts an EME-PKCS1-v1_5 ciphertext.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let _t = crate::instrument::RSA_DECRYPT_US.start_timer();
        let k = self.modulus_len();
        if ciphertext.len() != k {
            return Err(CryptoError::InvalidLength {
                what: "RSA ciphertext",
                expected: k,
                actual: ciphertext.len(),
            });
        }
        let c = BigUint::from_bytes_be(ciphertext);
        let em = self.raw(&c)?.to_bytes_be_padded(k)?;
        if em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::BadPadding("EME-PKCS1 header"));
        }
        // Find the 0x00 separator after at least 8 padding bytes.
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(CryptoError::BadPadding("missing separator"))?;
        if sep < 8 {
            return Err(CryptoError::BadPadding("padding string too short"));
        }
        Ok(em[2 + sep + 1..].to_vec())
    }

    /// The public key corresponding to this private key.
    pub fn public_key(&self) -> RsaPublicKey {
        // e is recoverable as d^-1 mod lcm(p-1,q-1); but we keep it
        // simple: e = 65537 is the only exponent this crate generates.
        RsaPublicKey {
            n: self.n.clone(),
            e: BigUint::from_u64(65537),
        }
    }

    /// Produces a blinded copy check value for tests: `m^(ed) mod n == m`.
    #[doc(hidden)]
    pub fn self_test(&self, rng: &mut dyn Rng) -> bool {
        let m = random_below(&self.n, rng);
        match self.raw(&m) {
            Ok(s) => matches!(self.public_key().raw(&s), Ok(back) if back == m),
            Err(_) => false,
        }
    }
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print private material.
        write!(f, "RsaPrivateKey({} bits)", self.n.bit_length())
    }
}

/// EMSA-PKCS1-v1_5 encoding: `0x00 01 FF..FF 00 || DigestInfo || hash`.
fn emsa_pkcs1_v15(
    alg: DigestAlgorithm,
    message: &[u8],
    k: usize,
) -> Result<Vec<u8>, CryptoError> {
    let hash = alg.digest(message);
    let prefix = digest_info_prefix(alg);
    let t_len = prefix.len() + hash.len();
    if k < t_len + 11 {
        return Err(CryptoError::MessageTooLarge);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.extend(std::iter::repeat_n(0xffu8, k - t_len - 3));
    em.push(0x00);
    em.extend_from_slice(prefix);
    em.extend_from_slice(&hash);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xc0ffee)
    }

    /// Key generation is the slowest part of the suite; share one
    /// 1024-bit pair across tests.
    fn keypair() -> &'static RsaKeyPair {
        static KP: OnceLock<RsaKeyPair> = OnceLock::new();
        KP.get_or_init(|| RsaKeyPair::generate(1024, &mut rng()).unwrap())
    }

    #[test]
    fn generated_modulus_has_requested_bits() {
        let kp = keypair();
        assert_eq!(kp.public.modulus().bit_length(), 1024);
        assert_eq!(kp.public.modulus_len(), 128);
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let kp = keypair();
        let mut r = rng();
        let m = random_below(kp.public.modulus(), &mut r);
        assert_eq!(kp.private.raw(&m).unwrap(), kp.private.raw_no_crt(&m).unwrap());
    }

    #[test]
    fn raw_private_public_inverse() {
        let kp = keypair();
        let mut r = rng();
        for _ in 0..3 {
            assert!(kp.private.self_test(&mut r));
        }
    }

    #[test]
    fn sign_verify_sha1_paper_configuration() {
        let kp = keypair();
        let msg = b"trace: entity-7 READY at t=1234";
        let sig = kp.private.sign(DigestAlgorithm::Sha1, msg).unwrap();
        assert_eq!(sig.len(), 128);
        kp.public.verify(DigestAlgorithm::Sha1, msg, &sig).unwrap();
    }

    #[test]
    fn sign_verify_sha256() {
        let kp = keypair();
        let msg = b"certificate tbs bytes";
        let sig = kp.private.sign(DigestAlgorithm::Sha256, msg).unwrap();
        kp.public
            .verify(DigestAlgorithm::Sha256, msg, &sig)
            .unwrap();
    }

    #[test]
    fn tampered_message_fails_verification() {
        let kp = keypair();
        let sig = kp.private.sign(DigestAlgorithm::Sha1, b"original").unwrap();
        assert_eq!(
            kp.public.verify(DigestAlgorithm::Sha1, b"tampered", &sig),
            Err(CryptoError::SignatureMismatch)
        );
    }

    #[test]
    fn tampered_signature_fails_verification() {
        let kp = keypair();
        let mut sig = kp.private.sign(DigestAlgorithm::Sha1, b"msg").unwrap();
        sig[64] ^= 0x01;
        assert!(kp.public.verify(DigestAlgorithm::Sha1, b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_digest_algorithm_fails() {
        let kp = keypair();
        let sig = kp.private.sign(DigestAlgorithm::Sha1, b"msg").unwrap();
        assert!(kp
            .public
            .verify(DigestAlgorithm::Sha256, b"msg", &sig)
            .is_err());
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let kp = keypair();
        let mut r = rng();
        let secret = b"192-bit AES trace key: 0123456789abcdef01234567";
        let ct = kp.public.encrypt(secret, &mut r).unwrap();
        assert_eq!(ct.len(), 128);
        assert_eq!(kp.private.decrypt(&ct).unwrap(), secret);
    }

    #[test]
    fn encryption_is_randomized() {
        let kp = keypair();
        let mut r = rng();
        let c1 = kp.public.encrypt(b"same message", &mut r).unwrap();
        let c2 = kp.public.encrypt(b"same message", &mut r).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn oversized_plaintext_rejected() {
        let kp = keypair();
        let mut r = rng();
        let too_big = vec![1u8; 128 - 10]; // needs 11 bytes of padding
        assert_eq!(
            kp.public.encrypt(&too_big, &mut r),
            Err(CryptoError::MessageTooLarge)
        );
    }

    #[test]
    fn corrupted_ciphertext_rejected() {
        let kp = keypair();
        let mut r = rng();
        let mut ct = kp.public.encrypt(b"secret", &mut r).unwrap();
        ct[5] ^= 0xff;
        assert!(kp.private.decrypt(&ct).is_err());
    }

    #[test]
    fn wrong_length_inputs_rejected() {
        let kp = keypair();
        assert!(kp.private.decrypt(&[0u8; 64]).is_err());
        assert!(kp
            .public
            .verify(DigestAlgorithm::Sha1, b"m", &[0u8; 64])
            .is_err());
    }

    #[test]
    fn public_key_byte_round_trip() {
        let kp = keypair();
        let bytes = kp.public.to_bytes();
        let back = RsaPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(back, kp.public);
        assert!(RsaPublicKey::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(RsaPublicKey::from_bytes(&[0, 0]).is_err());
    }

    #[test]
    fn public_key_from_private_matches() {
        let kp = keypair();
        assert_eq!(kp.private.public_key(), kp.public);
    }

    /// Recovers the encoded message `EM` from a ciphertext via the raw
    /// private operation (no padding strip), so tests can inspect the
    /// exact EME-PKCS1-v1_5 layout the encryptor produced.
    fn recover_em(kp: &RsaKeyPair, ct: &[u8]) -> Vec<u8> {
        let c = BigUint::from_bytes_be(ct);
        kp.private
            .raw(&c)
            .unwrap()
            .to_bytes_be_padded(kp.public.modulus_len())
            .unwrap()
    }

    /// Asserts `em` is exactly `00 02 || PS (nonzero) || 00 || msg`.
    fn assert_em_layout(em: &[u8], k: usize, msg: &[u8]) {
        assert_eq!(em.len(), k);
        assert_eq!(em[0], 0x00);
        assert_eq!(em[1], 0x02);
        let ps = &em[2..k - msg.len() - 1];
        assert!(ps.len() >= 8, "padding string shorter than 8 bytes");
        assert!(ps.iter().all(|&b| b != 0), "zero byte inside PS");
        assert_eq!(em[k - msg.len() - 1], 0x00);
        assert_eq!(&em[k - msg.len()..], msg);
    }

    #[test]
    fn deterministic_rng_preserves_em_layout() {
        // The batched four-bytes-per-draw padding must produce the
        // same EM *structure* as before: 00 02, all-nonzero PS, 00,
        // message — byte-exact under a deterministic RNG.
        let kp = keypair();
        let msg = b"layout probe";
        let mut r = StdRng::seed_from_u64(424242);
        let ct = kp.public.encrypt(msg, &mut r).unwrap();
        assert_em_layout(&recover_em(kp, &ct), kp.public.modulus_len(), msg);
        // Same seed, same ciphertext: the draw is deterministic.
        let mut r2 = StdRng::seed_from_u64(424242);
        assert_eq!(kp.public.encrypt(msg, &mut r2).unwrap(), ct);
        assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
    }

    /// An RNG whose words are riddled with zero bytes, forcing the
    /// padding loop through its rejection-sampling branch.
    struct ZeroHeavyRng {
        n: u64,
    }

    impl rand::RngCore for ZeroHeavyRng {
        fn raw_u64(&mut self) -> u64 {
            self.n = self.n.wrapping_add(1);
            // Low half zero → `next_u32` (the high half) alternates
            // between words with 0x00 bytes and fully nonzero words.
            if self.n.is_multiple_of(2) {
                0x00ab_00cd_0000_0000
            } else {
                0x1122_3344_0000_0000u64.wrapping_add(self.n << 32)
            }
        }
    }

    #[test]
    fn zero_bytes_are_rejection_sampled_not_emitted() {
        let kp = keypair();
        let msg = b"reject zeros";
        let mut r = ZeroHeavyRng { n: 0 };
        let ct = kp.public.encrypt(msg, &mut r).unwrap();
        assert_em_layout(&recover_em(kp, &ct), kp.public.modulus_len(), msg);
        assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn padding_consumes_four_bytes_per_word() {
        // A counting RNG with no zero bytes must be drawn exactly
        // ⌈ps_len/4⌉ times — the pre-fix code drew once per byte.
        struct CountingRng {
            draws: u64,
        }
        impl rand::RngCore for CountingRng {
            fn raw_u64(&mut self) -> u64 {
                self.draws += 1;
                0x0101_0101_0000_0000u64 // next_u32 → 0x01010101
            }
        }
        let kp = keypair();
        let msg = b"budget";
        let ps_len = kp.public.modulus_len() - msg.len() - 3;
        let mut r = CountingRng { draws: 0 };
        kp.public.encrypt(msg, &mut r).unwrap();
        assert_eq!(r.draws as usize, ps_len.div_ceil(4));
    }

    #[test]
    fn small_keys_work_for_fast_tests() {
        // 256-bit keys keep integration tests cheap; make sure the
        // pipeline supports them (max payload = 32 - 11 = 21 bytes).
        let kp = RsaKeyPair::generate(256, &mut rng()).unwrap();
        let msg = b"short secret!";
        let mut r = rng();
        let ct = kp.public.encrypt(msg, &mut r).unwrap();
        assert_eq!(kp.private.decrypt(&ct).unwrap(), msg);
    }
}
