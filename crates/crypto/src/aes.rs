//! AES block cipher (FIPS 197) with 128-, 192-, and 256-bit keys.
//!
//! The paper's security layer encrypts traces with **192-bit AES
//! keys**; this module provides the block primitive and
//! [`crate::modes`] supplies CBC/CTR on top of it.

use crate::error::CryptoError;
use std::sync::OnceLock;

/// Forward S-box (FIPS 197, figure 7).
#[rustfmt::skip]
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box, derived from [`SBOX`] at first use (avoids a second
/// hand-typed table that could silently disagree with the forward one).
fn inv_sbox() -> &'static [u8; 256] {
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

/// AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

/// Multiplication by `x` in GF(2^8) modulo the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// GF(2^8) multiplication (small, used only in InvMixColumns).
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// AES key size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds — the paper's trace-encryption choice.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Key length in bytes.
    pub fn key_len(self) -> usize {
        match self {
            KeySize::Aes128 => 16,
            KeySize::Aes192 => 24,
            KeySize::Aes256 => 32,
        }
    }

    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    /// Picks the key size matching a raw key length.
    pub fn for_key(key: &[u8]) -> Result<Self, CryptoError> {
        match key.len() {
            16 => Ok(KeySize::Aes128),
            24 => Ok(KeySize::Aes192),
            32 => Ok(KeySize::Aes256),
            other => Err(CryptoError::InvalidLength {
                what: "AES key",
                expected: 24,
                actual: other,
            }),
        }
    }
}

/// An expanded AES key, ready to encrypt/decrypt 16-byte blocks.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl Aes {
    /// Expands `key` (16, 24 or 32 bytes).
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let size = KeySize::for_key(key)?;
        let nk = key.len() / 4;
        let nr = size.rounds();
        let total_words = 4 * (nr + 1);
        let mut w = vec![[0u8; 4]; total_words];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon: u8 = 1;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (j, word) in c.iter().enumerate() {
                    rk[4 * j..4 * j + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Ok(Aes {
            round_keys,
            rounds: nr,
        })
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[self.rounds]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..self.rounds).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

// State layout: byte index = 4*col + row (matches the FIPS input order).

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    let inv = inv_sbox();
    for b in state.iter_mut() {
        *b = inv[*b as usize];
    }
}

/// Row `r` rotates left by `r` positions across the four columns.
fn shift_rows(state: &mut [u8; 16]) {
    let orig = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = orig[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let orig = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = orig[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let a0 = col[0];
        let a1 = col[1];
        let a2 = col[2];
        let a3 = col[3];
        let all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = a0 ^ all ^ xtime(a0 ^ a1);
        col[1] = a1 ^ all ^ xtime(a1 ^ a2);
        col[2] = a2 ^ all ^ xtime(a2 ^ a3);
        col[3] = a3 ^ all ^ xtime(a3 ^ a0);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let a0 = col[0];
        let a1 = col[1];
        let a2 = col[2];
        let a3 = col[3];
        col[0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09);
        col[1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d);
        col[2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b);
        col[3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn roundtrip(key_hex: &str, pt_hex: &str, ct_hex: &str) {
        let key = unhex(key_hex);
        let aes = Aes::new(&key).unwrap();
        let mut block: [u8; 16] = unhex(pt_hex).try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex(ct_hex), "encrypt mismatch");
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), unhex(pt_hex), "decrypt mismatch");
    }

    // FIPS 197, Appendix C known-answer vectors.
    #[test]
    fn fips197_aes128() {
        roundtrip(
            "000102030405060708090a0b0c0d0e0f",
            "00112233445566778899aabbccddeeff",
            "69c4e0d86a7b0430d8cdb78070b4c55a",
        );
    }

    #[test]
    fn fips197_aes192() {
        roundtrip(
            "000102030405060708090a0b0c0d0e0f1011121314151617",
            "00112233445566778899aabbccddeeff",
            "dda97ca4864cdfe06eaf70a0ec0d7191",
        );
    }

    #[test]
    fn fips197_aes256() {
        roundtrip(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
            "00112233445566778899aabbccddeeff",
            "8ea2b7ca516745bfeafc49904b496089",
        );
    }

    // SP 800-38A ECB single-block vectors (different key shape).
    #[test]
    fn sp800_38a_ecb_aes128_block1() {
        roundtrip(
            "2b7e151628aed2a6abf7158809cf4f3c",
            "6bc1bee22e409f96e93d7e117393172a",
            "3ad77bb40d7a3660a89ecaf32466ef97",
        );
    }

    #[test]
    fn invalid_key_length_rejected() {
        assert!(Aes::new(&[0u8; 15]).is_err());
        assert!(Aes::new(&[0u8; 17]).is_err());
        assert!(Aes::new(&[0u8; 0]).is_err());
    }

    #[test]
    fn key_size_selection() {
        assert_eq!(KeySize::for_key(&[0; 16]).unwrap(), KeySize::Aes128);
        assert_eq!(KeySize::for_key(&[0; 24]).unwrap(), KeySize::Aes192);
        assert_eq!(KeySize::for_key(&[0; 32]).unwrap(), KeySize::Aes256);
        assert_eq!(KeySize::Aes192.key_len(), 24);
    }

    #[test]
    fn shift_rows_inverse_property() {
        let mut state: [u8; 16] = (0u8..16).collect::<Vec<_>>().try_into().unwrap();
        let orig = state;
        shift_rows(&mut state);
        assert_ne!(state, orig);
        inv_shift_rows(&mut state);
        assert_eq!(state, orig);
    }

    #[test]
    fn mix_columns_inverse_property() {
        let mut state: [u8; 16] = (100u8..116).collect::<Vec<_>>().try_into().unwrap();
        let orig = state;
        mix_columns(&mut state);
        inv_mix_columns(&mut state);
        assert_eq!(state, orig);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &b in SBOX.iter() {
            assert!(!seen[b as usize]);
            seen[b as usize] = true;
        }
        let inv = inv_sbox();
        for i in 0..=255u8 {
            assert_eq!(inv[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn every_key_size_round_trips_random_blocks() {
        for len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(37).wrapping_add(11)).collect();
            let aes = Aes::new(&key).unwrap();
            let mut block = [0xa5u8; 16];
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig);
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }
}
