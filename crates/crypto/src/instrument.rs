//! Hot-path timing instrumentation.
//!
//! Every public RSA and AES operation records its wall-clock latency
//! into a histogram on the [`nb_metrics::global`] registry. Handles
//! are resolved once through `LazyLock`, so the per-operation overhead
//! is a few relaxed atomic increments — negligible next to a modular
//! exponentiation. Metric names are catalogued in
//! `docs/OBSERVABILITY.md` under the `crypto.*` family.

use std::sync::LazyLock;

use nb_metrics::{Counter, Histogram};

macro_rules! op_histogram {
    ($static_name:ident, $metric:literal) => {
        pub(crate) static $static_name: LazyLock<Histogram> =
            LazyLock::new(|| nb_metrics::global().histogram($metric));
    };
}

macro_rules! op_counter {
    ($static_name:ident, $metric:literal) => {
        pub(crate) static $static_name: LazyLock<Counter> =
            LazyLock::new(|| nb_metrics::global().counter($metric));
    };
}

op_histogram!(RSA_SIGN_US, "crypto.rsa.sign_us");
op_histogram!(RSA_VERIFY_US, "crypto.rsa.verify_us");
op_histogram!(RSA_ENCRYPT_US, "crypto.rsa.encrypt_us");
op_histogram!(RSA_DECRYPT_US, "crypto.rsa.decrypt_us");
op_histogram!(RSA_KEYGEN_MS, "crypto.rsa.keygen_ms");
op_histogram!(AES_ENCRYPT_US, "crypto.aes.encrypt_us");
op_histogram!(AES_DECRYPT_US, "crypto.aes.decrypt_us");
op_histogram!(AES_CTR_US, "crypto.aes.ctr_us");

op_counter!(SESSION_INSTALLED, "crypto.session.installed");
op_counter!(SESSION_REVOKED, "crypto.session.revoked");
op_counter!(SESSION_TAGGED, "crypto.session.tagged");
op_counter!(SESSION_VERIFIED, "crypto.session.verified");
op_counter!(SESSION_REJECTED, "crypto.session.rejected");
op_counter!(SESSION_UNKNOWN, "crypto.session.unknown_key");
op_counter!(SESSION_EXPIRED, "crypto.session.expired");
