//! # nb-crypto — cryptography substrate
//!
//! A from-scratch implementation of every cryptographic primitive the
//! IPPS 2007 entity-tracking scheme depends on:
//!
//! * arbitrary-precision unsigned integers ([`bigint::BigUint`]) with
//!   Montgomery modular exponentiation,
//! * Miller–Rabin probabilistic prime generation ([`prime`]),
//! * RSA key generation, PKCS#1 v1.5 signing and encryption ([`rsa`]),
//! * SHA-1 and SHA-256 digests ([`sha1`], [`sha256`]) behind a common
//!   [`digest::Digest`] trait, plus HMAC ([`hmac`]),
//! * AES-128/192/256 with CBC and CTR modes and PKCS#7 padding
//!   ([`aes`], [`modes`], [`padding`]),
//! * simplified X.509-style certificates and chains ([`cert`]),
//! * 128-bit version-4 UUIDs ([`uuid`]).
//!
//! The paper's experiments use 1024-bit RSA with SHA-1 and PKCS#1
//! padding for signatures, and 192-bit AES keys for symmetric
//! encryption; all of those configurations are first-class here.
//!
//! ## Design notes
//!
//! This crate exists because the reproduction may not rely on external
//! cryptography crates. It is *not* hardened against side channels and
//! must not be used outside this research context. Correctness is
//! established against FIPS-197, NIST SP 800-38A, RFC 2202/4231 and
//! NIST SHA test vectors (see the unit tests in each module) and by
//! property-based tests on the arithmetic core.

pub mod aes;
pub mod bigint;
mod instrument;
pub mod cert;
pub mod digest;
pub mod error;
pub mod hmac;
pub mod hybrid;
pub mod modes;
pub mod padding;
pub mod prime;
pub mod rsa;
pub mod session;
pub mod sha1;
pub mod sha256;
pub mod uuid;

pub use bigint::BigUint;
pub use cert::{Certificate, Credential, Validity};
pub use digest::{Digest, DigestAlgorithm};
pub use error::CryptoError;
pub use hybrid::SealedEnvelope;
pub use rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
pub use session::{SessionKey, SessionKeyring, SessionVerdict, SESSION_MAC_LEN};
pub use uuid::Uuid;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CryptoError>;
